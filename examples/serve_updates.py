#!/usr/bin/env python3
"""Serve view updates over HTTP: the serving tier end to end.

What ``python -m repro.serving`` runs as a long-lived daemon, this
example runs as a scripted session you can read in one sitting:

1. **warm start** -- a sibling process compiles the ABCD chain's state
   space into a shared SQLite artifact store
   (:func:`repro.serving.warmstart.sibling_warm_start`, the same path
   as ``--two-process-demo`` in ``update_service.py``); a sibling that
   dies before publishing is a typed error and a nonzero exit;
2. **serve** -- an :class:`~repro.serving.server.UpdateServer` starts
   on a free port, warm from the sibling's build;
3. **client traffic** -- the default service's sample requests go
   through :class:`~repro.serving.client.ServingClient`: an accepted
   update, an async ticket polled to completion, and a formally
   rejected update (the server's 200 carries the paper's verdict);
4. **drain** -- SIGTERM-style shutdown, printing the drain report.

Run:  python examples/serve_updates.py [--cold]

``--cold`` skips the sibling warm start so you can compare the
server's warm-up time against the warm path it normally takes.
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.engine.backends import SQLiteBackend
from repro.engine.engine import Engine
from repro.errors import WarmStartError
from repro.serving.client import ServingClient
from repro.serving.server import UpdateServer
from repro.serving.service import chain_service
from repro.serving.warmstart import sibling_warm_start


async def serve_and_exercise(engine: Engine | None) -> int:
    spec = chain_service()
    server = UpdateServer(spec, engine=engine)
    await server.start()
    print(f"serving {spec.name} on 127.0.0.1:{server.port}")

    loop = asyncio.get_running_loop()

    def client_session() -> None:
        client = ServingClient("127.0.0.1", server.port)
        health = client.healthz()
        print(f"healthz: {health.body['status']}")

        accepted, async_ticket, rejected = spec.sample_requests

        reply = client.submit(accepted, wait=True)
        outcome = reply.body["outcome"]
        print(
            f"{outcome['view']}: accepted={outcome['accepted']}"
            f" in {outcome['elapsed_ms']}ms"
        )

        ticket = client.submit(async_ticket, wait=False)
        print(f"queued ticket {ticket.body['id']}")
        while True:
            polled = client.get_outcome(ticket.body["id"])
            if polled.body.get("status") == "done":
                break
        outcome = polled.body["outcome"]
        print(
            f"{outcome['view']}: accepted={outcome['accepted']}"
            f" (polled via /get-outcome)"
        )

        reply = client.submit(rejected, wait=True)
        outcome = reply.body["outcome"]
        print(
            f"{outcome['view']}: accepted={outcome['accepted']}"
            f" reason={outcome['reason']!r} -- the paper's formal"
            " rejection, served as data"
        )

        stats = client.stats().body
        print(
            f"server warm-up took {stats['warmup_seconds']:.3f}s;"
            f" admission: {stats['admission']['completed']} completed,"
            f" {stats['admission']['shed_overload']} shed"
        )
        client.close()

    await loop.run_in_executor(None, client_session)

    server.request_drain()
    report = await server.drain()
    await server.stop()
    print(f"drain report: {json.dumps(report)[:120]}...")
    print(f"graceful={report['graceful']}, dropped="
          f"{report['dropped_inflight']}+{report['dropped_queued']}")
    return 0 if report["graceful"] else 1


def main(argv: list[str]) -> int:
    engine: Engine | None = None
    if "--cold" not in argv:
        scratch = tempfile.mkdtemp(prefix="repro-serve-")
        url = str(Path(scratch) / "artifacts.db")
        print(f"[warm start] sibling compiles into {url} ...")
        try:
            sibling_warm_start(url)
        except WarmStartError as exc:
            print(f"warm start failed: {exc}")
            return 3
        engine = Engine(backend=SQLiteBackend(url))
    return asyncio.run(serve_and_exercise(engine))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
