#!/usr/bin/env python3
"""The supplier-part-job saga: why view update is hard (paper Section 1).

Walks through the paper's motivating examples on the SPJ schemas:

1. Example 1.1.1 -- side effects and the surjectivity problem;
2. Example 1.2.1 -- extraneous reflections;
3. Example 1.2.5 -- requests with no minimal reflection;
4. Example 1.2.7 -- minimal-change reflection is not functorial;
5. Example 1.2.12 -- whether an update is allowed can depend on data
   the view user cannot see.

Run:  python examples/supplier_parts.py
"""

from repro.core.admissibility import find_functoriality_violation
from repro.core.constant_complement import ConstantComplementTranslator
from repro.relational.constraints import JoinDependency
from repro.strategies.exhaustive import SolutionEnumerator
from repro.strategies.minimal_change import MinimalChangeStrategy
from repro.workloads.scenarios import (
    spj_inverse_scenario,
    spj_mini_scenario,
    spj_paper_instance,
)


def show(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def side_effects() -> None:
    show("1. Side effects (Example 1.1.1)")
    scenario, instance = spj_paper_instance()
    view = scenario.join_view
    view_state = view.apply(instance, scenario.assignment)
    print("base R_SP:", instance.relation("R_SP").sorted_rows())
    print("base R_PJ:", instance.relation("R_PJ").sorted_rows())
    print("view R_SPJ:", view_state.relation("R_SPJ").sorted_rows())

    target = view_state.inserting("R_SPJ", ("s3", "p3", "j3"))
    jd = JoinDependency("R_SPJ", (("S", "P"), ("P", "J")))
    print("\nuser asks to insert (s3, p3, j3) into the view")
    print(
        "target view state satisfies the implied ⋈[SP, PJ]?",
        jd.holds(target, scenario.view_schema_with_jd, scenario.assignment),
    )
    naive = instance.inserting("R_SP", ("s3", "p3")).inserting(
        "R_PJ", ("p3", "j3")
    )
    achieved = view.apply(naive, scenario.assignment)
    extra = achieved.relation("R_SPJ").rows - target.relation("R_SPJ").rows
    print("naive base insertion side-effects:", sorted(extra, key=repr))
    print(
        "=> the view schema must carry the implied join dependency, and "
        "then this\n   target simply is not a legal view state (the "
        "surjectivity assumption)."
    )


def extraneous() -> None:
    show("2. Extraneous reflections (Example 1.2.1)")
    scenario, instance = spj_paper_instance()
    view = scenario.join_view
    target = view.apply(instance, scenario.assignment).deleting(
        "R_SPJ", ("s1", "p1", "j1")
    )
    lean = instance.deleting("R_PJ", ("p1", "j1"))
    fat = lean.deleting("R_PJ", ("p4", "j3"))
    print("delete (s1, p1, j1) from the view:")
    print("  reflection A: remove (p1, j1)              -> achieves it")
    print("  reflection B: remove (p1, j1) AND (p4, j3) -> also achieves it")
    print(
        "  B's change-set strictly contains A's:",
        instance.delta(lean).issubset(instance.delta(fat)),
    )
    print("  => B is an extraneous update and must be ruled out.")
    assert view.apply(lean, scenario.assignment) == target
    assert view.apply(fat, scenario.assignment) == target


def no_minimal() -> None:
    show("3. No minimal reflection (Example 1.2.5)")
    scenario = spj_inverse_scenario()
    enumerator = SolutionEnumerator(scenario.sp_view, scenario.space)
    current = scenario.initial
    target = scenario.sp_view.apply(
        current, scenario.assignment
    ).inserting("R_SP", ("s3", "p1"))
    report = enumerator.report(current, target)
    print("insert (s3, p1) into the SP projection of ⋈[SP,PJ]-closed R_SPJ:")
    print(f"  solutions: {len(report.solutions)}")
    print(f"  nonextraneous (pairwise incomparable): {len(report.nonextraneous)}")
    print(f"  minimal solution exists: {report.has_minimal}")
    print("  => 'always reflect minimally' is not even a total strategy.")


def not_functorial() -> None:
    show("4. Minimal change is not functorial (Example 1.2.7)")
    scenario = spj_mini_scenario()
    strategy = MinimalChangeStrategy(
        scenario.join_view, scenario.space, tie_break="pick"
    )
    violation = find_functoriality_violation(strategy)
    print("searching the 64-state universe for a composition-law violation...")
    print(f"  found: {violation is not None}")
    print(
        "  => performing an update and then reverting it can leave the "
        "base in a\n     different state than never having updated at all."
    )


def state_dependent() -> None:
    show("5. Allowance depends on invisible data (Example 1.2.12)")
    scenario = spj_inverse_scenario()
    translator = ConstantComplementTranslator(
        scenario.sp_view, scenario.pj_view, scenario.space
    )
    from repro.relational.instances import DatabaseInstance

    first = DatabaseInstance(
        {
            "R_SPJ": {
                ("s1", "p1", "j1"),
                ("s1", "p1", "j2"),
                ("s2", "p2", "j1"),
            }
        }
    )
    second = first.inserting("R_SPJ", ("s1", "p2", "j1"))
    for label, state in (("first", first), ("second", second)):
        view_state = scenario.sp_view.apply(state, scenario.assignment)
        target = view_state.deleting("R_SP", ("s2", "p2"))
        allowed = translator.defined(state, target)
        print(f"  {label} instance: delete (s2, p2) allowed = {allowed}")
    print(
        "  => same visible tuple, different verdicts; the paper's "
        "framework rules\n     this out for complementary (component) "
        "pairs."
    )


def main() -> None:
    side_effects()
    extraneous()
    no_minimal()
    not_functorial()
    state_dependent()
    print()


if __name__ == "__main__":
    main()
