#!/usr/bin/env python3
"""A multi-process fleet sharing one remote artifact server.

Walks the full lifecycle of the distributed artifact tier:

1. **boot** -- launch ``python -m repro.artifactd --port=0`` as a real
   subprocess and read its readiness line for the bound port;
2. **cold fleet** -- fork three workers that each compile the same
   session (state space, poset, component algebra, update procedure)
   against ``REPRO_STORE_BACKEND=remote``.  The server's lease
   endpoint serialises the builders, so the expensive derivations
   happen exactly once fleet-wide;
3. **warm start** -- a fourth session in this process is served
   entirely from the server's envelopes: zero local builds;
4. **outage** -- the server is killed and a client configured with a
   spill directory (``REPRO_REMOTE_SPILL_DIR``) keeps serving correct
   verdicts through its local spill tier, surfacing only a
   :class:`~repro.engine.backends.BackendDegradedWarning`.

Run:  python examples/remote_fleet.py
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from repro.decomposition.projections import projection_view
from repro.engine.backends import BackendDegradedWarning, RemoteBackend
from repro.engine.engine import Engine
from repro.typealgebra.algebra import NULL
from repro.workloads.scenarios import abcd_chain_small

WORKERS = 3


def show(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def launch_artifactd() -> tuple[subprocess.Popen, str]:
    """Start the artifact server; return (process, base URL)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.artifactd", "--port=0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    ready = json.loads(process.stdout.readline())
    url = f"http://{ready['host']}:{ready['port']}"
    print(f"artifactd serving at {url} (pid {process.pid})")
    return process, url


def run_session(backend: RemoteBackend) -> tuple[list, dict]:
    """One full session: compile, update through Γ_ABD, report stats."""
    chain = abcd_chain_small()
    engine = Engine(backend=backend)
    space = engine.space_from(chain)
    session = engine.session(chain.schema, chain.assignment, space)
    session.register_view(projection_view(chain, ("A", "B", "D")))
    session.build_component_algebra(chain.all_component_views())
    state = chain.state_from_edges(
        [{("a1", "b1")}, set(), {("c1", "d1")}]
    )
    view = session.view("Γ_ABD")
    view_state = view.apply(state, chain.assignment)
    target = view_state.deleting("R_ABD", ("a1", "b1", NULL))
    outcome = session.update("Γ_ABD", state, target)
    verdicts = [(outcome.accepted, outcome.reason)]
    return verdicts, engine.store.stats()


def _count_builds(stats: dict) -> int:
    return sum(
        kind.get("builds", 0) for kind in stats["memory"].values()
    )


def _fleet_worker(url: str, queue) -> None:
    backend = RemoteBackend(url)
    backend.open()
    verdicts, stats = run_session(backend)
    queue.put({"verdicts": verdicts, "builds": _count_builds(stats)})


def main() -> int:
    show("1. Boot: a real artifactd subprocess on an ephemeral port")
    server, url = launch_artifactd()
    try:
        show(f"2. Cold fleet: {WORKERS} forked workers, one server")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        processes = [
            ctx.Process(target=_fleet_worker, args=(url, queue))
            for _ in range(WORKERS)
        ]
        for process in processes:
            process.start()
        reports = [queue.get(timeout=120) for _ in processes]
        for process in processes:
            process.join(timeout=60)
        fleet_builds = sum(report["builds"] for report in reports)
        verdict_sets = {tuple(r["verdicts"][0]) for r in reports}
        print(f"fleet-wide builds: {fleet_builds}")
        print(f"distinct verdicts across workers: {len(verdict_sets)}")
        assert len(verdict_sets) == 1, "fleet verdicts diverged"

        show("3. Warm start: this process serves from the fleet's work")
        backend = RemoteBackend(url)
        backend.open()
        verdicts, stats = run_session(backend)
        print(f"local builds this session: {_count_builds(stats)}")
        print(f"remote hits: {backend.stats()['remote_hits']}")
        print(f"verdict: {verdicts[0]}")
    finally:
        show("4. Outage: the server dies; the spill tier carries on")
        server.terminate()
        server.wait(timeout=30)
        server.stdout.close()
    with tempfile.TemporaryDirectory(prefix="repro-spill-") as spill:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = RemoteBackend(url, io_attempts=1, spill_dir=spill)
            backend.open()
            degraded_verdicts, _ = run_session(backend)
        degradations = [
            w for w in caught
            if issubclass(w.category, BackendDegradedWarning)
        ]
        print(f"warnings surfaced: {len(degradations)} (degraded, typed)")
        print(f"spill puts: {backend.stats()['spill_puts']}")
        print(f"verdict under outage: {degraded_verdicts[0]}")
        assert degraded_verdicts == verdicts, "outage changed a verdict"
    print()
    print("Same verdicts cold, warm, and through an outage -- the")
    print("artifact tier accelerates sessions but never decides them.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
