#!/usr/bin/env python3
"""A miniature view-update service built on ViewUpdateSystem.

Simulates what a database front-end would do with this library: a base
schema administered centrally, several user views registered against
it, and a stream of view-level update requests serviced through the
canonical constant-component-complement procedure -- with full
explanations, including rejections.

Run:  python examples/update_service.py
"""

from repro import NULL, ViewUpdateSystem
from repro.decomposition.projections import projection_view
from repro.errors import UpdateRejected
from repro.workloads.scenarios import abcd_chain_small


def main() -> None:
    chain = abcd_chain_small()
    system = ViewUpdateSystem(
        chain.schema, chain.assignment, chain.state_space()
    )

    # Register user views: two components and one lossy projection.
    ab_view = system.register_view(chain.component_view([0]))
    bcd_view = system.register_view(chain.component_view([1, 2]))
    abd_view = system.register_view(
        projection_view(chain, ("A", "B", "D"))
    )
    system.build_component_algebra(chain.all_component_views())

    print("registered views:", ", ".join(v.name for v in system.views))
    for view in system.views:
        procedure = system.procedure_for(view.name)
        print(
            f"  {view.name}: constant complement {procedure.complement.name}"
        )
    print()

    # The administrator loads an initial database.
    state = chain.state_from_edges(
        [{("a1", "b1"), ("a2", "b1")}, {("b1", "c1")}, {("c1", "d1")}]
    )
    print("initial edges:", chain.edges_of(state))
    print()

    # A scripted day of view updates.  Each request edits the *current*
    # view state, exactly as an interactive user would.
    requests = [
        (
            "Γ°AB",
            lambda now: now.deleting("R_AB", ("a2", "b1")),
            "drop (a2, b1)",
        ),
        (
            "Γ°BCD",
            lambda now: now.inserting("R_BCD", (NULL, "c2", "d1")),
            "connect c2 to d1",
        ),
        (
            "Γ_ABD",
            lambda now: now.deleting("R_ABD", (NULL, NULL, "d1")),
            "try to drop (n, n, d1) -- entangled with the AB chain, so no legal view state results",
        ),
    ]

    for view_name, edit, description in requests:
        current_view_state = system.view(view_name).apply(
            state, chain.assignment
        )
        target = edit(current_view_state)
        print(f"--- {view_name}: {description} ---")
        try:
            new_state = system.update(view_name, state, target)
        except UpdateRejected as exc:
            print(f"REJECTED: {exc} (reason={exc.reason})")
            print()
            continue
        changes = state.change_summary(new_state)
        for relation, diff in sorted(changes.items()):
            for row in diff["inserted"]:
                print(f"  + {relation}{row}")
            for row in diff["deleted"]:
                print(f"  - {relation}{row}")
        # Global consistency: every other view is refreshed from the
        # new base state -- the constant complement is untouched.
        for other in system.views:
            if other.name == view_name:
                continue
            before = other.apply(state, chain.assignment)
            after = other.apply(new_state, chain.assignment)
            changed = "changed" if before != after else "unchanged"
            print(f"  (view {other.name}: {changed})")
        state = new_state
        print()

    print("final edges:", chain.edges_of(state))


if __name__ == "__main__":
    main()
