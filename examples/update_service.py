#!/usr/bin/env python3
"""A miniature view-update service built on ViewUpdateSystem.

Simulates what a database front-end would do with this library: a base
schema administered centrally, several user views registered against
it, and a stream of view-level update requests serviced through the
canonical constant-component-complement procedure -- with full
explanations, including rejections.

Run:  python examples/update_service.py

Persistence flags (the same selection the ``REPRO_STORE_BACKEND`` /
``REPRO_STORE_URL`` environment variables spell):

  --backend=local --store-url=/tmp/repro-cache
      serve artifacts through the pickle-directory backend;
  --backend=sqlite --store-url=/tmp/repro.db
      serve them through one shared SQLite database -- safe for many
      service processes on one file;
  --two-process-demo [--store-url=/tmp/repro.db]
      fork a sibling process that compiles the state space into a
      shared SQLite store, then serve this process's session entirely
      from the sibling's build (a warm start without ever enumerating).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import NULL, ViewUpdateSystem
from repro.decomposition.projections import projection_view
from repro.engine.backends import SQLiteBackend, create_backend
from repro.engine.engine import Engine
from repro.errors import BackendConfigError, UpdateRejected, WarmStartError
from repro.serving.warmstart import sibling_warm_start
from repro.workloads.scenarios import abcd_chain_small


def _flag_value(argv: list[str], name: str) -> str | None:
    prefix = f"--{name}="
    for arg in argv:
        if arg.startswith(prefix):
            return arg.split("=", 1)[1]
    return None


def _engine_from_flags(argv: list[str]) -> Engine | None:
    """An engine over the requested backend, or ``None`` (ambient)."""
    backend_name = _flag_value(argv, "backend")
    if backend_name is None:
        return None
    url = _flag_value(argv, "store-url") or ""
    return Engine(backend=create_backend(backend_name, url))


def two_process_demo(url: str | None) -> int:
    """Warm-start this process from a sibling's SQLite-backed build.

    The fork-and-wait lives in
    :func:`repro.serving.warmstart.sibling_warm_start` (the same path
    ``python -m repro.serving --warm-url=...`` uses).  A sibling that
    dies before publishing -- crash, kill, timeout, or a clean exit
    that left no store behind -- surfaces as a typed
    :class:`WarmStartError` and a nonzero exit, never a traceback.
    """
    if url is None:
        scratch = tempfile.mkdtemp(prefix="repro-demo-")
        url = str(Path(scratch) / "artifacts.db")
    print(f"shared SQLite artifact store: {url}")

    print("[1/2] sibling process compiles the state space ...")
    try:
        sibling_warm_start(url)
    except WarmStartError as exc:
        print(f"warm start failed: {exc}")
        return 3

    print("[2/2] this process serves updates from the sibling's build ...")
    engine = Engine(backend=SQLiteBackend(url))
    exit_code = run_service(engine)

    kinds = engine.stats()["artifacts"]["backend"]["kinds"]
    disk_hits = sum(counters["disk_hits"] for counters in kinds.values())
    builds = sum(
        counters["builds"]
        for counters in engine.stats()["artifacts"]["memory"].values()
        if counters
    )
    print(
        f"warm start: {disk_hits} artifact(s) loaded from the sibling's"
        f" build, {builds} built locally"
    )
    space_hits = kinds.get("space", {}).get("disk_hits", 0)
    print(
        "state space served from the shared store: "
        + ("yes" if space_hits else "no")
    )
    return exit_code


def run_service(engine: Engine | None) -> int:
    chain = abcd_chain_small()
    if engine is not None:
        space = engine.space_from(chain)
    else:
        space = chain.state_space()
    system = ViewUpdateSystem(
        chain.schema, chain.assignment, space, engine=engine
    )

    # Register user views: two components and one lossy projection.
    system.register_view(chain.component_view([0]))
    system.register_view(chain.component_view([1, 2]))
    system.register_view(projection_view(chain, ("A", "B", "D")))
    system.build_component_algebra(chain.all_component_views())

    print("registered views:", ", ".join(v.name for v in system.views))
    for view in system.views:
        procedure = system.procedure_for(view.name)
        print(
            f"  {view.name}: constant complement {procedure.complement.name}"
        )
    print()

    # The administrator loads an initial database.
    state = chain.state_from_edges(
        [{("a1", "b1"), ("a2", "b1")}, {("b1", "c1")}, {("c1", "d1")}]
    )
    print("initial edges:", chain.edges_of(state))
    print()

    # A scripted day of view updates.  Each request edits the *current*
    # view state, exactly as an interactive user would.
    requests = [
        (
            "Γ°AB",
            lambda now: now.deleting("R_AB", ("a2", "b1")),
            "drop (a2, b1)",
        ),
        (
            "Γ°BCD",
            lambda now: now.inserting("R_BCD", (NULL, "c2", "d1")),
            "connect c2 to d1",
        ),
        (
            "Γ_ABD",
            lambda now: now.deleting("R_ABD", (NULL, NULL, "d1")),
            "try to drop (n, n, d1) -- entangled with the AB chain, so no legal view state results",
        ),
    ]

    for view_name, edit, description in requests:
        current_view_state = system.view(view_name).apply(
            state, chain.assignment
        )
        target = edit(current_view_state)
        print(f"--- {view_name}: {description} ---")
        try:
            new_state = system.update(view_name, state, target)
        except UpdateRejected as exc:
            print(f"REJECTED: {exc} (reason={exc.reason})")
            print()
            continue
        changes = state.change_summary(new_state)
        for relation, diff in sorted(changes.items()):
            for row in diff["inserted"]:
                print(f"  + {relation}{row}")
            for row in diff["deleted"]:
                print(f"  - {relation}{row}")
        # Global consistency: every other view is refreshed from the
        # new base state -- the constant complement is untouched.
        for other in system.views:
            if other.name == view_name:
                continue
            before = other.apply(state, chain.assignment)
            after = other.apply(new_state, chain.assignment)
            changed = "changed" if before != after else "unchanged"
            print(f"  (view {other.name}: {changed})")
        state = new_state
        print()

    print("final edges:", chain.edges_of(state))
    return 0


def main(argv: list[str]) -> int:
    if "--two-process-demo" in argv:
        return two_process_demo(_flag_value(argv, "store-url"))
    try:
        engine = _engine_from_flags(argv)
    except BackendConfigError as exc:
        print(f"backend configuration error: {exc}")
        return 2
    return run_service(engine)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
