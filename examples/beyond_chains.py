#!/usr/bin/env python3
"""Beyond the paper's running example: trees, horizontal cells, scripts.

The paper develops its theory on the ABCD *chain*; its framework is
broader.  This example exercises the library's generalisations:

1. a **join tree** (a star: orders hub with customer, product, and
   carrier legs) and its component algebra;
2. a **horizontal decomposition** (accounts split by region through
   interacting types) with cell-wise components;
3. tuple-level **update scripts** reflected through the canonical
   procedure.

Run:  python examples/beyond_chains.py
"""

from repro.core import ComponentAlgebra, Insert, Delete, UpdateScript, run_view_script
from repro.core.system import ViewUpdateSystem
from repro.decomposition.horizontal import HorizontalSchema, HorizontalUpdater
from repro.decomposition.tree import TreeSchema
from repro.decomposition.updates import TreeComponentUpdater
from repro.harness.reporting import format_table
from repro.relational.instances import DatabaseInstance


def show(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def join_tree() -> None:
    show("1. A join tree: orders hub with three legs")
    star = TreeSchema(
        ("Customer", "Order", "Product", "Carrier"),
        {
            "Customer": ("carol", "dave"),
            "Order": ("o1", "o2"),
            "Product": ("widget",),
            "Carrier": ("ups",),
        },
        [("Customer", "Order"), ("Order", "Product"), ("Order", "Carrier")],
    )
    print(repr(star))
    state = star.state_from_edges(
        {
            (0, 1): {("carol", "o1")},
            (1, 2): {("o1", "widget")},
            (1, 3): {("o1", "ups")},
        }
    )
    print("objects in the base relation:")
    for row in state.relation("R").sorted_rows():
        print("   ", row)

    space = star.state_space()
    algebra = ComponentAlgebra.discover(space, star.all_component_views())
    print(f"\ncomponent algebra: {algebra!r} over {len(space)} states")
    rows = [(c.name, c.complement.name) for c in algebra]
    print(format_table(("component", "strong complement"), rows))

    updater = TreeComponentUpdater(star, [(0, 1)])
    new_part = star.state_from_edges({(0, 1): {("dave", "o1")}})
    target = updater.view.apply(new_part, star.assignment)
    solution = updater.apply(state, target)
    print("\nreassign order o1 to dave (customer leg, rest constant):")
    for edge, pairs in sorted(star.edges_of(solution).items()):
        print(f"   {star.edge_name(edge)}: {sorted(pairs)}")


def horizontal() -> None:
    show("2. Horizontal decomposition: accounts by region")
    accounts = HorizontalSchema(
        attributes=("Owner", "Region"),
        domains={"Owner": ("alice", "bob")},
        split_attribute="Region",
        cells={"eu": ("de", "fr"), "us": ("ny",)},
    )
    print(repr(accounts))
    state = DatabaseInstance(
        {"R": {("alice", "de"), ("alice", "ny"), ("bob", "fr")}}
    )
    for cell in accounts.cell_names:
        print(f"   {cell}: {sorted(accounts.cell_rows(state, cell))}")

    space = accounts.state_space()
    algebra = ComponentAlgebra.discover(
        space, accounts.all_component_views()
    )
    print(f"\ncomponent algebra: {algebra!r}")
    eu = algebra.named("σ[eu]")
    print(f"complement of σ[eu]: {algebra.complement_of(eu).name}")

    updater = HorizontalUpdater(accounts, ["eu"])
    target = DatabaseInstance({"R": {("bob", "de")}})
    solution = updater.apply(state, target)
    print("\nreplace the EU cell with {(bob, de)} (US cell constant):")
    print("   new rows:", solution.relation("R").sorted_rows())


def scripts() -> None:
    show("3. Tuple-level scripts through the canonical procedure")
    from repro.workloads.scenarios import abcd_chain_small

    chain = abcd_chain_small()
    system = ViewUpdateSystem(
        chain.schema, chain.assignment, chain.state_space()
    )
    system.register_view(chain.component_view([0]))
    system.build_component_algebra(chain.all_component_views())

    state = chain.state_from_edges(
        [{("a1", "b1")}, {("b1", "c1")}, {("c1", "d1")}]
    )
    script = UpdateScript(
        [Delete("R_AB", ("a1", "b1")), Insert("R_AB", ("a2", "b1"))]
    )
    print(f"script on Γ°AB: {script!r}")
    new_state = run_view_script(system, "Γ°AB", state, script)
    print("new edges:", chain.edges_of(new_state))
    undone = run_view_script(system, "Γ°AB", new_state, script.inverse())
    print("undo restores original:", undone == state)


def main() -> None:
    join_tree()
    horizontal()
    scripts()
    print()


if __name__ == "__main__":
    main()
