#!/usr/bin/env python3
"""Null-padded chain decomposition and the component algebra (Section 2).

Reproduces the heart of the paper on the ABCD chain of Example 2.1.1:

1. materialises the paper's exact instance via the structure theorem;
2. discovers the 8-element Boolean algebra of components (Example 2.3.4)
   and prints its complement table;
3. translates component updates in closed form (Theorem 3.1.1);
4. runs Update Procedure 3.2.3 on the non-strong view Γ_ABD
   (Example 3.2.4), showing both an accepted and a rejected request.

Run:  python examples/chain_decomposition.py
"""

from repro import NULL
from repro.core import (
    ComponentAlgebra,
    ComponentTranslator,
    UpdateProcedure,
    strong_join_complements,
)
from repro.decomposition.projections import projection_view
from repro.errors import UpdateRejected
from repro.harness.reporting import format_table
from repro.workloads.scenarios import (
    abcd_chain_paper,
    abcd_chain_small,
    paper_chain_instance,
)


def show(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def paper_instance() -> None:
    show("1. Example 2.1.1: the null-padded instance")
    chain = abcd_chain_paper()
    instance = paper_chain_instance(chain)
    print(f"schema: {chain!r}")
    print("R:")
    for row in instance.relation("R").sorted_rows():
        print("   ", row)
    print("legal:", chain.schema.is_legal(instance, chain.assignment))
    print(
        "edge sets (the free generators):",
    )
    for index, edges in enumerate(chain.edges_of(instance)):
        attrs = chain.interval_attributes((index, index + 1))
        print(f"    {''.join(attrs)}: {sorted(edges)}")


def component_algebra():
    show("2. Example 2.3.4: the Boolean algebra of components")
    chain = abcd_chain_small()
    space = chain.state_space()
    algebra = ComponentAlgebra.discover(space, chain.all_component_views())
    print(f"{algebra!r} over {len(space)} states")
    rows = [
        (component.name, component.complement.name)
        for component in algebra
    ]
    print(format_table(("component", "strong complement"), rows))
    print("Boolean (verified):", algebra.is_boolean())
    print("atoms:", ", ".join(c.name for c in algebra.atoms()))
    return chain, space, algebra


def component_updates(chain, space, algebra) -> None:
    show("3. Theorem 3.1.1: closed-form component updates")
    ab = algebra.named("Γ°AB")
    translator = ComponentTranslator.for_component(ab, space)
    state = chain.state_from_edges(
        [{("a1", "b1")}, {("b1", "c1")}, {("c1", "d1")}]
    )
    print("current edges:", chain.edges_of(state))
    target_state = chain.state_from_edges([{("a2", "b1")}, set(), set()])
    target = ab.view.apply(target_state, space.assignment)
    solution = translator.apply(state, target)
    print("replace the AB part with {(a2, b1)}, Γ°BCD constant:")
    print("new edges:    ", chain.edges_of(solution))
    print(
        "s2 = γ1#(t2) ∨ γ2^Θ(s1): the new AB part joined with the old "
        "BCD part."
    )


def update_procedure(chain, space, algebra) -> None:
    show("4. Example 3.2.4: Update Procedure 3.2.3 on Γ_ABD")
    gabd = projection_view(chain, ("A", "B", "D"))
    complements = strong_join_complements(gabd, algebra)
    print(
        "strong join complements of Γ_ABD:",
        ", ".join(c.name for c in complements),
    )
    procedure = UpdateProcedure(gabd, complements[0], space)
    print(f"using the smallest: {procedure.complement.name} "
          f"(filter through {procedure.filter_component.name})")

    state = chain.state_from_edges(
        [{("a1", "b1")}, set(), {("c1", "d1")}]
    )
    view_state = gabd.apply(state, space.assignment)
    print("\nview state:", view_state.relation("R_ABD").sorted_rows())

    target = view_state.deleting("R_ABD", ("a1", "b1", NULL))
    solution = procedure.apply(state, target)
    print("\ndelete (a1, b1, n): ACCEPTED")
    print("  new edges:", chain.edges_of(solution))

    target = view_state.deleting("R_ABD", (NULL, NULL, "d1"))
    try:
        procedure.apply(state, target)
    except UpdateRejected as exc:
        print(f"\ndelete (n, n, d1): REJECTED ({exc.reason})")
        print(
            "  the request maps to 'do nothing' through Γ°AB, so it "
            "cannot be\n  effected with Γ°BCD constant -- exactly the "
            "paper's verdict."
        )


def main() -> None:
    paper_instance()
    chain, space, algebra = component_algebra()
    component_updates(chain, space, algebra)
    update_procedure(chain, space, algebra)
    print()


if __name__ == "__main__":
    main()
