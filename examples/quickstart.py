#!/usr/bin/env python3
"""Quickstart: canonical view updates in five minutes.

Builds the two-relation universe of the paper's Example 1.3.6, shows
that complements of a view are *not* unique, discovers the component
algebra, and translates a view update with the canonical (component)
complement -- contrasting it against a badly chosen one.

Run:  python examples/quickstart.py
"""

from repro import ViewUpdateSystem
from repro.core import ComponentAlgebra, ConstantComplementTranslator
from repro.core.admissibility import analyze_admissibility
from repro.core.strong import analyze_view
from repro.harness.reporting import format_table
from repro.views.lattice import are_complementary
from repro.workloads.scenarios import two_unary_scenario


def main() -> None:
    scenario = two_unary_scenario()
    space = scenario.space
    print(f"base schema: two unary relations R, S over {space!r}\n")

    # 1. Complements are not unique (the problem).
    rows = []
    for left, right in (
        (scenario.gamma1, scenario.gamma2),
        (scenario.gamma1, scenario.gamma3),
        (scenario.gamma2, scenario.gamma3),
    ):
        rows.append(
            (
                f"{left.name}, {right.name}",
                are_complementary(left, right, space),
            )
        )
    print(format_table(("view pair", "complementary?"), rows))
    print()

    # 2. Strongness separates the good complements from the bad.
    rows = [
        (view.name, analyze_view(view, space).is_strong)
        for view in (scenario.gamma1, scenario.gamma2, scenario.gamma3)
    ]
    print(format_table(("view", "strong view?"), rows))
    print()

    # 3. The component algebra: the canonical complements.
    algebra = ComponentAlgebra.discover(
        space, [scenario.gamma1, scenario.gamma2, scenario.gamma3]
    )
    print(f"component algebra: {algebra!r}")
    print(
        "components:",
        ", ".join(
            f"{c.name} (complement {c.complement.name})" for c in algebra
        ),
    )
    print()

    # 4. Translate an update both ways and compare.
    state = scenario.initial
    target = scenario.gamma1.apply(state, scenario.assignment).inserting(
        "R", ("a4",)
    )
    print("update request on Γ1: insert a4 into R\n")
    for complement in (scenario.gamma2, scenario.gamma3):
        translator = ConstantComplementTranslator(
            scenario.gamma1, complement, space
        )
        solution = translator.apply(state, target)
        changes = state.change_summary(solution)
        print(f"with {complement.name} constant:")
        for relation, diff in sorted(changes.items()):
            for row in diff["inserted"]:
                print(f"  + {relation}{row}")
            for row in diff["deleted"]:
                print(f"  - {relation}{row}")
        report = analyze_admissibility(translator)
        print(f"  strategy admissible: {report.is_admissible}")
        if not report.is_admissible:
            failed = ", ".join(c.name for c in report.failures())
            print(f"  (fails: {failed})")
        print()

    # 5. Or let the façade pick the canonical complement for you.
    system = ViewUpdateSystem(scenario.schema, scenario.assignment, space)
    system.register_view(scenario.gamma1)
    system.build_component_algebra([scenario.gamma2])
    print(system.explain_update("Γ1", state, target))


if __name__ == "__main__":
    main()
