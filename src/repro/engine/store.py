"""The content-addressed artifact store behind the engine facade.

Every derived structure the library computes -- state spaces, ⊥-posets,
strong analyses, preimage indexes, component algebras, update
procedures -- is an *artifact*: a pure function of fingerprintable
inputs plus the active kernel mode.  :class:`ArtifactStore` memoizes
them under :class:`ArtifactKey`\\ s with

* an in-memory LRU (bounded by ``max_entries``),
* an optional on-disk cache (directory from the ``REPRO_CACHE_DIR``
  environment variable or the constructor), used only for artifacts
  whose inputs are content-addressed,
* dependency-aware invalidation (dropping a space drops the posets,
  analyses, algebras, and procedures derived from it -- in memory *and*
  on disk, so stale artifacts cannot resurrect), and
* per-kind counters (hits, misses, builds, corrupt entries, I/O
  retries, degradations, deadline hits) for the harness' ``--stats``
  report.

The disk format is hardened: each pickle is wrapped in a checksummed,
format-versioned envelope (magic + version + length + SHA-256), so
truncation, bit rot, and version skew are detected *before* bytes reach
the unpickler and count as silent misses; transient ``OSError``\\ s on
load/save are retried a bounded number of times with backoff.  A cache
must never be load-bearing: every failure mode degrades to a rebuild.

The store is deliberately ignorant of *what* it caches: builders are
supplied by the :class:`~repro.engine.engine.Engine`, which owns the
mapping from semantic operations to keys and dependencies.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Set

from repro.resilience.faults import fault_check, fault_corrupt

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_DIR_ENV_VAR",
    "ENVELOPE_VERSION",
    "KindStats",
]

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Magic prefix of every on-disk artifact (detects foreign files).
ENVELOPE_MAGIC = b"RPRO"

#: Bump on any incompatible change to the persisted representation;
#: entries with another version are silent misses, not unpickle crashes.
ENVELOPE_VERSION = 1

#: Header layout: magic, format version, payload length, SHA-256 digest.
_HEADER = struct.Struct(">4sHQ32s")


def _wrap_payload(payload: bytes) -> bytes:
    """Wrap pickled bytes in the checksummed envelope."""
    return (
        _HEADER.pack(
            ENVELOPE_MAGIC,
            ENVELOPE_VERSION,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        + payload
    )


def _unwrap_payload(blob: bytes) -> Optional[bytes]:
    """The payload of an enveloped blob, or ``None`` if damaged.

    Rejects short reads, foreign magic, version skew, truncated or
    over-long payloads, and checksum mismatches -- without relying on
    the unpickler to crash on garbage.
    """
    if len(blob) < _HEADER.size:
        return None
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC or version != ENVELOPE_VERSION:
        return None
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact.

    ``kind`` names the derivation ("space", "analysis", ...); the
    fingerprint hashes the inputs; ``kernel`` records the active
    computation mode, since bitset- and naive-built structures may
    differ representationally even when semantically equal.
    """

    kind: str
    fingerprint: str
    kernel: str

    def filename(self) -> str:
        """The on-disk cache filename for this key."""
        return f"{self.kind}-{self.kernel}-{self.fingerprint}.pkl"


@dataclass
class KindStats:
    """Counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    builds: int = 0
    build_seconds: float = 0.0
    evictions: int = 0
    persist_failures: int = 0
    #: Persisted entries rejected by the integrity envelope (or the
    #: unpickler) and rebuilt.
    corrupt_entries: int = 0
    #: Transient ``OSError`` retries on load/save.
    io_retries: int = 0
    #: Bitset-kernel derivations retried under the naive kernel.
    degradations: int = 0
    #: Derivations cancelled by an :class:`ExecutionGuard`.
    deadline_hits: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "build_seconds": round(self.build_seconds, 6),
            "evictions": self.evictions,
            "persist_failures": self.persist_failures,
            "corrupt_entries": self.corrupt_entries,
            "io_retries": self.io_retries,
            "degradations": self.degradations,
            "deadline_hits": self.deadline_hits,
        }


@dataclass
class _Entry:
    value: object
    dependencies: tuple = ()


@dataclass
class ArtifactStore:
    """LRU + optional disk cache of artifacts keyed by fingerprints."""

    max_entries: int = 256
    cache_dir: Optional[str] = None
    #: Bounded retry for transient ``OSError`` on disk load/save.
    io_attempts: int = 3
    #: Base backoff (seconds) between attempts; doubles per retry.
    io_backoff: float = 0.01
    _entries: "OrderedDict[ArtifactKey, _Entry]" = field(
        default_factory=OrderedDict, repr=False
    )
    _dependents: Dict[ArtifactKey, Set[ArtifactKey]] = field(
        default_factory=dict, repr=False
    )
    _stats: Dict[str, KindStats] = field(default_factory=dict, repr=False)

    #: Injectable for tests; module-level so backoff is patchable.
    _sleep = staticmethod(time.sleep)

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            self.cache_dir = os.environ.get(CACHE_DIR_ENV_VAR) or None
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")
        if self.io_attempts < 1:
            raise ValueError("io_attempts must be positive")

    # -- core protocol -----------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Iterable[ArtifactKey] = (),
        persist: bool = False,
    ) -> object:
        """The artifact for *key*, from memory, disk, or *builder*.

        *dependencies* are the keys this artifact was derived from:
        invalidating any of them invalidates this artifact too.
        *persist* opts the artifact into the on-disk cache; callers must
        only set it for content-addressed inputs (transient fingerprints
        are meaningless in other processes).
        """
        stats = self._stats.setdefault(key.kind, KindStats())
        entry = self._entries.get(key)
        if entry is not None:
            stats.hits += 1
            self._entries.move_to_end(key)
            return entry.value

        stats.misses += 1
        dependencies = tuple(dependencies)
        value = self._load_from_disk(key, stats) if persist else None
        if value is not None:
            stats.disk_hits += 1
        else:
            started = time.perf_counter()
            value = builder()
            stats.builds += 1
            stats.build_seconds += time.perf_counter() - started
            if persist:
                self._save_to_disk(key, value, stats)
        self._insert(key, _Entry(value, dependencies))
        return value

    def ensure(
        self,
        key: ArtifactKey,
        value: object,
        dependencies: Iterable[ArtifactKey] = (),
    ) -> object:
        """Register an already-built value without touching the counters.

        Used to anchor aliases (a space reached via enumeration
        parameters also lives under its canonical content key); returns
        the previously registered value if one exists.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry.value
        self._insert(key, _Entry(value, tuple(dependencies)))
        return value

    def peek(self, key: ArtifactKey) -> Optional[object]:
        """The cached value, without counting a hit or touching the LRU."""
        entry = self._entries.get(key)
        return None if entry is None else entry.value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, key: ArtifactKey) -> int:
        """Drop *key* and everything derived from it; return the count.

        Persisted files are deleted for every visited key -- including
        keys already evicted from memory -- so a stale artifact cannot
        resurrect from disk after its inputs were invalidated.
        """
        dropped = 0
        frontier = [key]
        while frontier:
            current = frontier.pop()
            if current in self._entries:
                del self._entries[current]
                dropped += 1
            self._delete_persisted(current)
            frontier.extend(self._dependents.pop(current, ()))
        return dropped

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is untouched)."""
        self._entries.clear()
        self._dependents.clear()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kind counters, keyed by artifact kind."""
        return {
            kind: stats.as_dict() for kind, stats in sorted(self._stats.items())
        }

    def reset_stats(self) -> None:
        self._stats.clear()

    def record_degradation(self, kind: str) -> None:
        """Count one bitset -> naive degradation for *kind*."""
        self._stats.setdefault(kind, KindStats()).degradations += 1

    def record_deadline_hit(self, kind: str) -> None:
        """Count one deadline/step-budget cancellation for *kind*."""
        self._stats.setdefault(kind, KindStats()).deadline_hits += 1

    # -- internals ---------------------------------------------------------------

    def _insert(self, key: ArtifactKey, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for dependency in entry.dependencies:
            self._dependents.setdefault(dependency, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._stats.setdefault(evicted.kind, KindStats()).evictions += 1

    def _disk_path(self, key: ArtifactKey) -> Optional[Path]:
        if not self.cache_dir:
            return None
        return Path(self.cache_dir) / key.filename()

    def _temp_path(self, path: Path) -> Path:
        """A per-process temp name next to *path*.

        ``path.with_suffix(".tmp")`` would let concurrent processes
        writing the same artifact clobber each other's half-written
        temp files; the pid makes the name unique per writer while the
        final ``replace`` stays atomic.
        """
        return path.parent / f"{path.name}.{os.getpid()}.tmp"

    def _delete_persisted(self, key: ArtifactKey) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.unlink(missing_ok=True)
        except OSError:
            # Best effort: an undeletable stale file is still rejected
            # by fingerprint mismatch only if inputs changed; nothing
            # more can be done here without making invalidation fail.
            pass

    def _load_from_disk(
        self, key: ArtifactKey, stats: KindStats
    ) -> Optional[object]:
        path = self._disk_path(key)
        if path is None:
            return None
        blob: Optional[bytes] = None
        for attempt in range(self.io_attempts):
            try:
                fault_check("store.load")
                blob = path.read_bytes()
                break
            except FileNotFoundError:
                return None
            except OSError:
                # Transient I/O failure: bounded retry with backoff,
                # then give up and rebuild -- never propagate.
                if attempt + 1 >= self.io_attempts:
                    return None
                stats.io_retries += 1
                self._sleep(self.io_backoff * (2**attempt))
            except Exception:
                # Anything else a filesystem could throw is still just
                # a miss: the cache is never load-bearing.
                return None
        if blob is None:
            return None
        blob = fault_corrupt("store.load", blob)
        payload = _unwrap_payload(blob)
        if payload is None:
            stats.corrupt_entries += 1
            self._delete_persisted(key)
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # A checksum-valid payload that still fails to unpickle
            # means version skew in the *pickled classes* (not the
            # envelope); same remedy -- silent miss and rebuild.
            stats.corrupt_entries += 1
            self._delete_persisted(key)
            return None

    def _save_to_disk(
        self, key: ArtifactKey, value: object, stats: KindStats
    ) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            # Persistence is best-effort; unpicklable artifacts simply
            # stay memory-only.
            stats.persist_failures += 1
            return
        blob = _wrap_payload(payload)
        tmp = self._temp_path(path)
        for attempt in range(self.io_attempts):
            try:
                fault_check("store.save")
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_bytes(blob)
                tmp.replace(path)
                return
            except OSError:
                if attempt + 1 >= self.io_attempts:
                    break
                stats.io_retries += 1
                self._sleep(self.io_backoff * (2**attempt))
            except Exception:
                # Persistence is best-effort under *any* failure mode.
                break
        stats.persist_failures += 1
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
