"""The content-addressed artifact store behind the engine facade.

Every derived structure the library computes -- state spaces, ⊥-posets,
strong analyses, preimage indexes, component algebras, update
procedures -- is an *artifact*: a pure function of fingerprintable
inputs plus the active kernel mode.  :class:`ArtifactStore` memoizes
them under :class:`ArtifactKey`\\ s with

* an in-memory LRU (bounded by ``max_entries``),
* an optional **persistence backend**
  (:mod:`repro.engine.backends`) -- the local pickle directory named
  by ``REPRO_CACHE_DIR``, or any :class:`ArtifactBackend` selected via
  ``REPRO_STORE_BACKEND``/``REPRO_STORE_URL`` or passed explicitly --
  used only for artifacts whose inputs are content-addressed,
* dependency-aware invalidation (dropping a space drops the posets,
  analyses, algebras, and procedures derived from it -- in memory *and*
  in the backend, so stale artifacts cannot resurrect), and
* per-kind counters (hits, misses, builds, corrupt entries, I/O
  retries, degradations, deadline hits, coalesced builds, lease
  contention) for the harness' ``--stats`` report.

The store is the *composition* layer: memoization policy, counters,
and concurrency control live here and are identical over every
backend.  Envelope integrity, atomic writes, transient-error retries,
and lease scoping live behind the backend seam, so a damaged entry in
a SQLite row and a damaged entry in a cache file read as the same
silent miss.  A backend that fails to **open** degrades the store to
memory-only operation -- counted, warned about
(:class:`~repro.engine.backends.base.BackendDegradedWarning`), and
never fatal: a cache must never be load-bearing.

The store is safe under concurrent use, across threads *and*
processes:

* one :class:`threading.RLock` guards the LRU, the dependency maps,
  and every counter; builders always run *outside* it (lock ordering:
  the store lock is innermost and never held across user code);
* an in-process **single-flight registry**: N threads requesting the
  same missing key trigger exactly one build -- the leader builds, the
  rest block on its result (or re-raise its typed error) and count as
  ``coalesced_builds``;
* a **cross-process advisory lease**
  (:class:`~repro.resilience.locks.FileLease`), scoped by the backend,
  around each persisted build, so a second process waits for the
  winner and then reads its envelope from the backend instead of
  rebuilding (``lease_waits`` / ``lease_takeovers`` /
  ``lease_timeouts`` counters); stale leases are taken over after
  ``REPRO_CACHE_LOCK_TTL_MS``, and backend ``open()`` sweeps dead
  writers' leftovers one-shot per path.

The store is deliberately ignorant of *what* it caches: builders are
supplied by the :class:`~repro.engine.engine.Engine`, which owns the
mapping from semantic operations to keys and dependencies.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.engine.backends import (
    ArtifactBackend,
    BackendDegradedWarning,
    resolve_backend,
)
from repro.engine.backends.envelope import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    HEADER as _HEADER,
    unwrap_payload as _unwrap_payload,
    wrap_payload as _wrap_payload,
)
from repro.engine.keys import ArtifactKey

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_DIR_ENV_VAR",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "KindStats",
    # Deprecated aliases of the envelope helpers, re-exported for one
    # PR while callers migrate to repro.engine.backends.envelope.
    "_HEADER",
    "_unwrap_payload",
    "_wrap_payload",
]

#: Environment variable naming the on-disk cache directory (the legacy
#: spelling of a local-dir backend; see :mod:`repro.engine.backends`).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


@dataclass
class KindStats:
    """Counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    builds: int = 0
    build_seconds: float = 0.0
    evictions: int = 0
    persist_failures: int = 0
    #: Persisted entries rejected by the integrity envelope (or the
    #: unpickler) and rebuilt.
    corrupt_entries: int = 0
    #: Transient I/O-error retries on backend load/save.
    io_retries: int = 0
    #: Bitset-kernel derivations retried under the naive kernel.
    degradations: int = 0
    #: Derivations cancelled by an :class:`ExecutionGuard`.
    deadline_hits: int = 0
    #: Requests that joined another thread's in-flight build instead of
    #: building (the single-flight registry at work).
    coalesced_builds: int = 0
    #: Lease acquisitions that had to wait behind another process.
    lease_waits: int = 0
    #: Stale leases (dead/expired holder) taken over.
    lease_takeovers: int = 0
    #: Lease waits that gave up (TTL) and built unleased.
    lease_timeouts: int = 0

    def memory_dict(self) -> Dict[str, float]:
        """The memoization-layer counters (LRU + single-flight)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_seconds": round(self.build_seconds, 6),
            "evictions": self.evictions,
            "coalesced_builds": self.coalesced_builds,
            "degradations": self.degradations,
            "deadline_hits": self.deadline_hits,
        }

    def backend_dict(self) -> Dict[str, float]:
        """The persistence-tier counters."""
        return {
            "disk_hits": self.disk_hits,
            "persist_failures": self.persist_failures,
            "corrupt_entries": self.corrupt_entries,
            "io_retries": self.io_retries,
        }

    def lease_dict(self) -> Dict[str, float]:
        """The cross-process lease-contention counters."""
        return {
            "lease_waits": self.lease_waits,
            "lease_takeovers": self.lease_takeovers,
            "lease_timeouts": self.lease_timeouts,
        }


@dataclass
class _Entry:
    value: object
    dependencies: Tuple["ArtifactKey", ...] = ()


class _InFlight:
    """One in-progress build: followers block on :attr:`event`."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


@dataclass
class ArtifactStore:
    """LRU + pluggable persistence backend, keyed by fingerprints."""

    max_entries: int = 256
    #: Legacy spelling of a local-dir backend; an explicit value here
    #: pins persistence to that directory regardless of the
    #: ``REPRO_STORE_BACKEND`` environment (hermeticity for tests and
    #: embedding callers).  ``backend`` wins over both.
    cache_dir: Optional[str] = None
    #: Bounded retry for transient I/O errors on backend load/save.
    io_attempts: int = 3
    #: Base backoff (seconds) between attempts; doubles per retry.  The
    #: cross-process lease reuses the same base for its waits.
    io_backoff: float = 0.01
    #: The persistence tier; ``None`` resolves from ``cache_dir`` and
    #: the environment (and stays ``None`` for memory-only stores).
    backend: Optional[ArtifactBackend] = None
    _entries: "OrderedDict[ArtifactKey, _Entry]" = field(
        default_factory=OrderedDict, repr=False
    )
    _dependents: Dict[ArtifactKey, Set[ArtifactKey]] = field(
        default_factory=dict, repr=False
    )
    _stats: Dict[str, KindStats] = field(default_factory=dict, repr=False)
    #: Keys currently being built, for in-process single-flight.
    _inflight: Dict[ArtifactKey, _InFlight] = field(
        default_factory=dict, repr=False
    )
    #: Guards ``_entries``/``_dependents``/``_stats``/``_inflight``.
    #: Innermost lock: never held while a builder or backend I/O runs.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False
    )
    #: Configured backends that failed to open (0 or 1; breaker-style
    #: typed warning counter surfaced in ``stats()["backend"]``).
    _backend_open_failures: int = field(default=0, repr=False)
    _backend_open_error: str = field(default="", repr=False)

    #: Injectable for tests; module-level so backoff is patchable.
    _sleep = staticmethod(time.sleep)

    def __post_init__(self) -> None:
        explicit_dir = self.cache_dir
        if self.cache_dir is None:
            self.cache_dir = os.environ.get(CACHE_DIR_ENV_VAR) or None
        if self.max_entries < 1:
            # reprolint: disable=RL001 -- argument validation on the public capacity knob; stdlib idiom
            raise ValueError("max_entries must be positive")
        if self.io_attempts < 1:
            # reprolint: disable=RL001 -- argument validation on the public capacity knob; stdlib idiom
            raise ValueError("io_attempts must be positive")
        if self.backend is None:
            # May raise BackendConfigError -- eagerly, on purpose: a
            # typo'd selection knob must not silently disable
            # persistence.
            self.backend = resolve_backend(
                cache_dir=explicit_dir,
                io_attempts=self.io_attempts,
                io_backoff=self.io_backoff,
                sleep=self._sleep,
            )
        if self.backend is not None:
            self._open_backend()

    def _open_backend(self) -> None:
        """Open the configured backend; degrade to memory-only on failure."""
        backend = self.backend
        if backend is None:  # pragma: no cover -- caller checked
            return
        try:
            backend.open()
        except Exception as exc:
            # Persistence is never load-bearing: a backend that cannot
            # open (unreachable file, corrupt database, injected
            # fault) downgrades the store to memory-only -- counted,
            # warned about, and typed; never fatal.
            self._backend_open_failures = 1
            self._backend_open_error = f"{type(exc).__name__}: {exc}"
            self.backend = None
            warnings.warn(
                f"artifact backend {backend.name!r} failed to open"
                f" ({self._backend_open_error}); continuing without"
                " persistence",
                BackendDegradedWarning,
                stacklevel=3,
            )

    @property
    def swept_temp_files(self) -> int:
        """Deprecated alias for the backend's ``sweep_reclaimed`` stat."""
        reclaimed = getattr(self.backend, "sweep_reclaimed", 0)
        return int(reclaimed) if reclaimed else 0

    # -- core protocol -----------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Iterable[ArtifactKey] = (),
        persist: bool = False,
    ) -> object:
        """The artifact for *key*, from memory, the backend, or *builder*.

        *dependencies* are the keys this artifact was derived from:
        invalidating any of them invalidates this artifact too.
        *persist* opts the artifact into the persistence backend;
        callers must only set it for content-addressed inputs
        (transient fingerprints are meaningless in other processes).

        Concurrent callers coalesce: the first thread to miss becomes
        the *leader* and builds; every other thread requesting the same
        key blocks until the leader finishes, then shares its value --
        or re-raises its (typed) error, so a failing build fails every
        waiter closed rather than retrying N times.
        """
        with self._lock:
            stats = self._stats.setdefault(key.kind, KindStats())
            entry = self._entries.get(key)
            if entry is not None:
                stats.hits += 1
                self._entries.move_to_end(key)
                return entry.value
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                stats.misses += 1
                leader = True
            else:
                stats.coalesced_builds += 1
                leader = False
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                # reprolint: disable=RL001 -- re-raise of the single-flight leader's recorded error, already typed at the build site
                raise flight.error
            return flight.value
        try:
            value = self._service_miss(
                key, builder, tuple(dependencies), persist, stats
            )
            flight.value = value
            return value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

    def _service_miss(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Tuple[ArtifactKey, ...],
        persist: bool,
        stats: KindStats,
    ) -> object:
        """Leader path: backend, then (leased) build; insert on success."""
        value = self._load_from_backend(key, stats) if persist else None
        if value is not None:
            with self._lock:
                stats.disk_hits += 1
        else:
            value = self._build(key, builder, persist, stats)
        with self._lock:
            self._insert(key, _Entry(value, dependencies))
        return value

    def _build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        persist: bool,
        stats: KindStats,
    ) -> object:
        """Run *builder*, under a cross-process lease when persisting.

        The lease makes a second *process* wait for the winner and read
        its envelope from the backend rather than duplicate the build;
        it is advisory, so every lease failure degrades to building
        unleased.
        """
        backend = self.backend if persist else None
        if backend is None:
            return self._timed_build(builder, stats)
        lease = backend.lease_for(key)
        if lease is None:
            value = self._timed_build(builder, stats)
            self._save_to_backend(key, value, stats)
            return value
        lease.acquire()
        try:
            with self._lock:
                if lease.waited:
                    stats.lease_waits += 1
                if lease.took_over:
                    stats.lease_takeovers += 1
                if lease.timed_out:
                    stats.lease_timeouts += 1
            # Decisive re-check *inside* the lease: a winner saves
            # before releasing, so a sibling that finished this very
            # build -- whether we waited behind it or arrived just
            # after its release -- is always seen here, and the build
            # below is exactly-once fleet-wide (lease failures aside).
            value = self._load_from_backend(key, stats)
            if value is not None:
                with self._lock:
                    stats.disk_hits += 1
                return value
            value = self._timed_build(builder, stats)
            self._save_to_backend(key, value, stats)
            return value
        finally:
            lease.release()

    def _timed_build(
        self, builder: Callable[[], object], stats: KindStats
    ) -> object:
        started = time.perf_counter()
        value = builder()
        elapsed = time.perf_counter() - started
        with self._lock:
            stats.builds += 1
            stats.build_seconds += elapsed
        return value

    def ensure(
        self,
        key: ArtifactKey,
        value: object,
        dependencies: Iterable[ArtifactKey] = (),
    ) -> object:
        """Register an already-built value without touching the counters.

        Used to anchor aliases (a space reached via enumeration
        parameters also lives under its canonical content key); returns
        the previously registered value if one exists.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry.value
            self._insert(key, _Entry(value, tuple(dependencies)))
            return value

    def peek(self, key: ArtifactKey) -> Optional[object]:
        """The cached value, without counting a hit or touching the LRU."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, key: ArtifactKey) -> int:
        """Drop *key* and everything derived from it; return the count.

        Persisted entries are deleted for every visited key -- including
        keys already evicted from memory -- so a stale artifact cannot
        resurrect from the backend after its inputs were invalidated.
        The store lock is held across the whole cascade walk, so a
        racing build cannot re-insert a dependent mid-invalidation and
        leave the dependency maps half-torn.
        """
        with self._lock:
            dropped = 0
            frontier = [key]
            while frontier:
                current = frontier.pop()
                if current in self._entries:
                    del self._entries[current]
                    dropped += 1
                self._delete_persisted(current)
                frontier.extend(self._dependents.pop(current, ()))
            return dropped

    def clear(self) -> None:
        """Drop every in-memory entry (the backend is untouched)."""
        with self._lock:
            self._entries.clear()
            self._dependents.clear()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, object]]:
        """A deep-copied, namespaced snapshot of the store's counters.

        Three namespaces, by layer::

            {"memory":  {kind: {hits, misses, builds, ...}},
             "backend": {"name": ..., "open_failures": ...,
                         "kinds": {kind: {disk_hits, corrupt_entries,
                                          io_retries, persist_failures}}},
             "leases":  {kind: {lease_waits, lease_takeovers,
                                lease_timeouts}}}

        (The pre-PR-7 flat per-kind aliases -- ``stats()["space"]`` and
        friends -- are gone; every reader addresses a namespace.)

        Taken under the store lock, so a concurrent reader sees a
        consistent point-in-time view -- never a half-updated counter
        set -- and mutating the returned dicts cannot corrupt the live
        statistics.
        """
        backend = self.backend
        backend_info: Dict[str, object] = (
            dict(backend.stats()) if backend is not None else {"name": "none"}
        )
        with self._lock:
            kinds = sorted(self._stats.items())
            backend_info["open_failures"] = self._backend_open_failures
            if self._backend_open_error:
                backend_info["open_error"] = self._backend_open_error
            backend_info["kinds"] = {
                kind: dict(stats.backend_dict()) for kind, stats in kinds
            }
            snapshot: Dict[str, Dict[str, object]] = {
                "memory": {
                    kind: dict(stats.memory_dict()) for kind, stats in kinds
                },
                "backend": backend_info,
                "leases": {
                    kind: dict(stats.lease_dict()) for kind, stats in kinds
                },
            }
            return snapshot

    def reset_stats(self) -> None:
        with self._lock:
            self._stats.clear()

    def record_degradation(self, kind: str) -> None:
        """Count one bitset -> naive degradation for *kind*."""
        with self._lock:
            self._stats.setdefault(kind, KindStats()).degradations += 1

    def record_deadline_hit(self, kind: str) -> None:
        """Count one deadline/step-budget cancellation for *kind*."""
        with self._lock:
            self._stats.setdefault(kind, KindStats()).deadline_hits += 1

    # -- the backend seam --------------------------------------------------------

    def _delete_persisted(self, key: ArtifactKey) -> None:
        backend = self.backend
        if backend is not None:
            backend.delete(key)  # best-effort by protocol contract

    def _load_from_backend(
        self, key: ArtifactKey, stats: KindStats
    ) -> Optional[object]:
        """The unpickled artifact from the backend, or ``None``.

        Every failure mode -- absent, torn, version-skewed, I/O-dead --
        is a silent miss; envelope damage is counted per kind and the
        damaged entry was already deleted by the backend.  A
        checksum-valid payload that still fails to *unpickle* means
        version skew in the pickled classes (not the envelope); same
        remedy -- count, delete, rebuild.
        """
        backend = self.backend
        if backend is None:
            return None
        result = backend.get(key)
        with self._lock:
            stats.io_retries += result.io_retries
            if result.corrupt:
                stats.corrupt_entries += 1
        if result.payload is None:
            return None
        try:
            return pickle.loads(result.payload)
        except Exception:
            with self._lock:
                stats.corrupt_entries += 1
            backend.delete(key)
            return None

    def _save_to_backend(
        self, key: ArtifactKey, value: object, stats: KindStats
    ) -> None:
        backend = self.backend
        if backend is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            # Persistence is best-effort; unpicklable artifacts simply
            # stay memory-only.
            with self._lock:
                stats.persist_failures += 1
            return
        result = backend.put(key, payload)
        with self._lock:
            stats.io_retries += result.io_retries
            if not result.persisted:
                stats.persist_failures += 1

    # -- internals ---------------------------------------------------------------

    # reprolint: holds-lock
    def _insert(self, key: ArtifactKey, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for dependency in entry.dependencies:
            self._dependents.setdefault(dependency, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._stats.setdefault(evicted.kind, KindStats()).evictions += 1
