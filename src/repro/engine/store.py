"""The content-addressed artifact store behind the engine facade.

Every derived structure the library computes -- state spaces, ⊥-posets,
strong analyses, preimage indexes, component algebras, update
procedures -- is an *artifact*: a pure function of fingerprintable
inputs plus the active kernel mode.  :class:`ArtifactStore` memoizes
them under :class:`ArtifactKey`\\ s with

* an in-memory LRU (bounded by ``max_entries``),
* an optional on-disk pickle cache (directory from the
  ``REPRO_CACHE_DIR`` environment variable or the constructor), used
  only for artifacts whose inputs are content-addressed,
* dependency-aware invalidation (dropping a space drops the posets,
  analyses, algebras, and procedures derived from it), and
* per-kind hit/miss/build-time counters for the harness' ``--stats``
  report.

The store is deliberately ignorant of *what* it caches: builders are
supplied by the :class:`~repro.engine.engine.Engine`, which owns the
mapping from semantic operations to keys and dependencies.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Set

__all__ = ["ArtifactKey", "ArtifactStore", "CACHE_DIR_ENV_VAR", "KindStats"]

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact.

    ``kind`` names the derivation ("space", "analysis", ...); the
    fingerprint hashes the inputs; ``kernel`` records the active
    computation mode, since bitset- and naive-built structures may
    differ representationally even when semantically equal.
    """

    kind: str
    fingerprint: str
    kernel: str

    def filename(self) -> str:
        """The on-disk cache filename for this key."""
        return f"{self.kind}-{self.kernel}-{self.fingerprint}.pkl"


@dataclass
class KindStats:
    """Counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    builds: int = 0
    build_seconds: float = 0.0
    evictions: int = 0
    persist_failures: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "build_seconds": round(self.build_seconds, 6),
            "evictions": self.evictions,
            "persist_failures": self.persist_failures,
        }


@dataclass
class _Entry:
    value: object
    dependencies: tuple = ()


@dataclass
class ArtifactStore:
    """LRU + optional disk cache of artifacts keyed by fingerprints."""

    max_entries: int = 256
    cache_dir: Optional[str] = None
    _entries: "OrderedDict[ArtifactKey, _Entry]" = field(
        default_factory=OrderedDict, repr=False
    )
    _dependents: Dict[ArtifactKey, Set[ArtifactKey]] = field(
        default_factory=dict, repr=False
    )
    _stats: Dict[str, KindStats] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            self.cache_dir = os.environ.get(CACHE_DIR_ENV_VAR) or None
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")

    # -- core protocol -----------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Iterable[ArtifactKey] = (),
        persist: bool = False,
    ) -> object:
        """The artifact for *key*, from memory, disk, or *builder*.

        *dependencies* are the keys this artifact was derived from:
        invalidating any of them invalidates this artifact too.
        *persist* opts the artifact into the on-disk cache; callers must
        only set it for content-addressed inputs (transient fingerprints
        are meaningless in other processes).
        """
        stats = self._stats.setdefault(key.kind, KindStats())
        entry = self._entries.get(key)
        if entry is not None:
            stats.hits += 1
            self._entries.move_to_end(key)
            return entry.value

        stats.misses += 1
        dependencies = tuple(dependencies)
        value = self._load_from_disk(key) if persist else None
        if value is not None:
            stats.disk_hits += 1
        else:
            started = time.perf_counter()
            value = builder()
            stats.builds += 1
            stats.build_seconds += time.perf_counter() - started
            if persist:
                self._save_to_disk(key, value, stats)
        self._insert(key, _Entry(value, dependencies))
        return value

    def ensure(
        self,
        key: ArtifactKey,
        value: object,
        dependencies: Iterable[ArtifactKey] = (),
    ) -> object:
        """Register an already-built value without touching the counters.

        Used to anchor aliases (a space reached via enumeration
        parameters also lives under its canonical content key); returns
        the previously registered value if one exists.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry.value
        self._insert(key, _Entry(value, tuple(dependencies)))
        return value

    def peek(self, key: ArtifactKey) -> Optional[object]:
        """The cached value, without counting a hit or touching the LRU."""
        entry = self._entries.get(key)
        return None if entry is None else entry.value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, key: ArtifactKey) -> int:
        """Drop *key* and everything derived from it; return the count."""
        dropped = 0
        frontier = [key]
        while frontier:
            current = frontier.pop()
            if current in self._entries:
                del self._entries[current]
                dropped += 1
            frontier.extend(self._dependents.pop(current, ()))
        return dropped

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is untouched)."""
        self._entries.clear()
        self._dependents.clear()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-kind counters, keyed by artifact kind."""
        return {
            kind: stats.as_dict() for kind, stats in sorted(self._stats.items())
        }

    def reset_stats(self) -> None:
        self._stats.clear()

    # -- internals ---------------------------------------------------------------

    def _insert(self, key: ArtifactKey, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for dependency in entry.dependencies:
            self._dependents.setdefault(dependency, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._stats.setdefault(evicted.kind, KindStats()).evictions += 1

    def _disk_path(self, key: ArtifactKey) -> Optional[Path]:
        if not self.cache_dir:
            return None
        return Path(self.cache_dir) / key.filename()

    def _load_from_disk(self, key: ArtifactKey) -> Optional[object]:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Missing or corrupt entry: rebuild (and overwrite) below.
            # Unpickling arbitrary bytes can raise nearly anything
            # (ValueError, KeyError, ImportError, ...), so the guard is
            # deliberately broad -- a cache must never be load-bearing.
            return None

    def _save_to_disk(
        self, key: ArtifactKey, value: object, stats: KindStats
    ) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)
        except (OSError, pickle.PickleError, TypeError, AttributeError):
            # Persistence is best-effort; unpicklable or unwritable
            # artifacts simply stay memory-only.
            stats.persist_failures += 1
