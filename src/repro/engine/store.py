"""The content-addressed artifact store behind the engine facade.

Every derived structure the library computes -- state spaces, ⊥-posets,
strong analyses, preimage indexes, component algebras, update
procedures -- is an *artifact*: a pure function of fingerprintable
inputs plus the active kernel mode.  :class:`ArtifactStore` memoizes
them under :class:`ArtifactKey`\\ s with

* an in-memory LRU (bounded by ``max_entries``),
* an optional on-disk cache (directory from the ``REPRO_CACHE_DIR``
  environment variable or the constructor), used only for artifacts
  whose inputs are content-addressed,
* dependency-aware invalidation (dropping a space drops the posets,
  analyses, algebras, and procedures derived from it -- in memory *and*
  on disk, so stale artifacts cannot resurrect), and
* per-kind counters (hits, misses, builds, corrupt entries, I/O
  retries, degradations, deadline hits, coalesced builds, lease
  contention) for the harness' ``--stats`` report.

The store is safe under concurrent use, across threads *and*
processes:

* one :class:`threading.RLock` guards the LRU, the dependency maps,
  and every counter; builders always run *outside* it (lock ordering:
  the store lock is innermost and never held across user code);
* an in-process **single-flight registry**: N threads requesting the
  same missing key trigger exactly one build -- the leader builds, the
  rest block on its result (or re-raise its typed error) and count as
  ``coalesced_builds``;
* a **cross-process advisory lease**
  (:class:`~repro.resilience.locks.FileLease`) around each persisted
  build, so a second process waits for the winner and then reads its
  envelope from disk instead of rebuilding (``lease_waits`` /
  ``lease_takeovers`` / ``lease_timeouts`` counters); stale leases are
  taken over after ``REPRO_CACHE_LOCK_TTL_MS``, and startup sweeps
  dead writers' per-pid temp files.

The disk format is hardened: each pickle is wrapped in a checksummed,
format-versioned envelope (magic + version + length + SHA-256), so
truncation, bit rot, and version skew are detected *before* bytes reach
the unpickler and count as silent misses; transient ``OSError``\\ s on
load/save are retried a bounded number of times with backoff.  A cache
must never be load-bearing: every failure mode degrades to a rebuild.

The store is deliberately ignorant of *what* it caches: builders are
supplied by the :class:`~repro.engine.engine.Engine`, which owns the
mapping from semantic operations to keys and dependencies.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.resilience.faults import fault_check, fault_corrupt
from repro.resilience.locks import FileLease, sweep_stale_temp_files

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_DIR_ENV_VAR",
    "ENVELOPE_VERSION",
    "KindStats",
]

#: Environment variable naming the on-disk cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Magic prefix of every on-disk artifact (detects foreign files).
ENVELOPE_MAGIC = b"RPRO"

#: Bump on any incompatible change to the persisted representation;
#: entries with another version are silent misses, not unpickle crashes.
ENVELOPE_VERSION = 1

#: Header layout: magic, format version, payload length, SHA-256 digest.
_HEADER = struct.Struct(">4sHQ32s")


def _wrap_payload(payload: bytes) -> bytes:
    """Wrap pickled bytes in the checksummed envelope."""
    return (
        _HEADER.pack(
            ENVELOPE_MAGIC,
            ENVELOPE_VERSION,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        + payload
    )


def _unwrap_payload(blob: bytes) -> Optional[bytes]:
    """The payload of an enveloped blob, or ``None`` if damaged.

    Rejects short reads, foreign magic, version skew, truncated or
    over-long payloads, and checksum mismatches -- without relying on
    the unpickler to crash on garbage.
    """
    if len(blob) < _HEADER.size:
        return None
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC or version != ENVELOPE_VERSION:
        return None
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact.

    ``kind`` names the derivation ("space", "analysis", ...); the
    fingerprint hashes the inputs; ``kernel`` records the active
    computation mode, since bitset- and naive-built structures may
    differ representationally even when semantically equal.
    """

    kind: str
    fingerprint: str
    kernel: str

    def filename(self) -> str:
        """The on-disk cache filename for this key."""
        return f"{self.kind}-{self.kernel}-{self.fingerprint}.pkl"


@dataclass
class KindStats:
    """Counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    builds: int = 0
    build_seconds: float = 0.0
    evictions: int = 0
    persist_failures: int = 0
    #: Persisted entries rejected by the integrity envelope (or the
    #: unpickler) and rebuilt.
    corrupt_entries: int = 0
    #: Transient ``OSError`` retries on load/save.
    io_retries: int = 0
    #: Bitset-kernel derivations retried under the naive kernel.
    degradations: int = 0
    #: Derivations cancelled by an :class:`ExecutionGuard`.
    deadline_hits: int = 0
    #: Requests that joined another thread's in-flight build instead of
    #: building (the single-flight registry at work).
    coalesced_builds: int = 0
    #: Lease acquisitions that had to wait behind another process.
    lease_waits: int = 0
    #: Stale leases (dead/expired holder) taken over.
    lease_takeovers: int = 0
    #: Lease waits that gave up (TTL) and built unleased.
    lease_timeouts: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "build_seconds": round(self.build_seconds, 6),
            "evictions": self.evictions,
            "persist_failures": self.persist_failures,
            "corrupt_entries": self.corrupt_entries,
            "io_retries": self.io_retries,
            "degradations": self.degradations,
            "deadline_hits": self.deadline_hits,
            "coalesced_builds": self.coalesced_builds,
            "lease_waits": self.lease_waits,
            "lease_takeovers": self.lease_takeovers,
            "lease_timeouts": self.lease_timeouts,
        }


@dataclass
class _Entry:
    value: object
    dependencies: Tuple["ArtifactKey", ...] = ()


class _InFlight:
    """One in-progress build: followers block on :attr:`event`."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


@dataclass
class ArtifactStore:
    """LRU + optional disk cache of artifacts keyed by fingerprints."""

    max_entries: int = 256
    cache_dir: Optional[str] = None
    #: Bounded retry for transient ``OSError`` on disk load/save.
    io_attempts: int = 3
    #: Base backoff (seconds) between attempts; doubles per retry.  The
    #: cross-process lease reuses the same base for its waits.
    io_backoff: float = 0.01
    _entries: "OrderedDict[ArtifactKey, _Entry]" = field(
        default_factory=OrderedDict, repr=False
    )
    _dependents: Dict[ArtifactKey, Set[ArtifactKey]] = field(
        default_factory=dict, repr=False
    )
    _stats: Dict[str, KindStats] = field(default_factory=dict, repr=False)
    #: Keys currently being built, for in-process single-flight.
    _inflight: Dict[ArtifactKey, _InFlight] = field(
        default_factory=dict, repr=False
    )
    #: Guards ``_entries``/``_dependents``/``_stats``/``_inflight``.
    #: Innermost lock: never held while a builder or disk I/O runs.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False
    )
    #: Stale temp files removed by the startup sweep (diagnostic).
    swept_temp_files: int = field(default=0, repr=False)

    #: Injectable for tests; module-level so backoff is patchable.
    _sleep = staticmethod(time.sleep)

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            self.cache_dir = os.environ.get(CACHE_DIR_ENV_VAR) or None
        if self.max_entries < 1:
            # reprolint: disable=RL001 -- argument validation on the public capacity knob; stdlib idiom
            raise ValueError("max_entries must be positive")
        if self.io_attempts < 1:
            # reprolint: disable=RL001 -- argument validation on the public capacity knob; stdlib idiom
            raise ValueError("io_attempts must be positive")
        if self.cache_dir:
            # Reclaim temp files leaked by writers that died mid-save.
            self.swept_temp_files = sweep_stale_temp_files(self.cache_dir)

    # -- core protocol -----------------------------------------------------------

    def get_or_build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Iterable[ArtifactKey] = (),
        persist: bool = False,
    ) -> object:
        """The artifact for *key*, from memory, disk, or *builder*.

        *dependencies* are the keys this artifact was derived from:
        invalidating any of them invalidates this artifact too.
        *persist* opts the artifact into the on-disk cache; callers must
        only set it for content-addressed inputs (transient fingerprints
        are meaningless in other processes).

        Concurrent callers coalesce: the first thread to miss becomes
        the *leader* and builds; every other thread requesting the same
        key blocks until the leader finishes, then shares its value --
        or re-raises its (typed) error, so a failing build fails every
        waiter closed rather than retrying N times.
        """
        with self._lock:
            stats = self._stats.setdefault(key.kind, KindStats())
            entry = self._entries.get(key)
            if entry is not None:
                stats.hits += 1
                self._entries.move_to_end(key)
                return entry.value
            flight = self._inflight.get(key)
            if flight is None:
                flight = _InFlight()
                self._inflight[key] = flight
                stats.misses += 1
                leader = True
            else:
                stats.coalesced_builds += 1
                leader = False
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                # reprolint: disable=RL001 -- re-raise of the single-flight leader's recorded error, already typed at the build site
                raise flight.error
            return flight.value
        try:
            value = self._service_miss(
                key, builder, tuple(dependencies), persist, stats
            )
            flight.value = value
            return value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()

    def _service_miss(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        dependencies: Tuple[ArtifactKey, ...],
        persist: bool,
        stats: KindStats,
    ) -> object:
        """Leader path: disk, then (leased) build; insert on success."""
        value = self._load_from_disk(key, stats) if persist else None
        if value is not None:
            with self._lock:
                stats.disk_hits += 1
        else:
            value = self._build(key, builder, persist, stats)
        with self._lock:
            self._insert(key, _Entry(value, dependencies))
        return value

    def _build(
        self,
        key: ArtifactKey,
        builder: Callable[[], object],
        persist: bool,
        stats: KindStats,
    ) -> object:
        """Run *builder*, under a cross-process lease when persisting.

        The lease makes a second *process* wait for the winner and read
        its envelope from disk rather than duplicate the build; it is
        advisory, so every lease failure degrades to building unleased.
        """
        path = self._disk_path(key) if persist else None
        if path is None:
            return self._timed_build(builder, stats)
        lease = FileLease(path, backoff=self.io_backoff, sleep=self._sleep)
        lease.acquire()
        try:
            with self._lock:
                if lease.waited:
                    stats.lease_waits += 1
                if lease.took_over:
                    stats.lease_takeovers += 1
                if lease.timed_out:
                    stats.lease_timeouts += 1
            if lease.waited or lease.took_over:
                # The previous holder may have finished this very
                # build while we waited; prefer its persisted result.
                value = self._load_from_disk(key, stats)
                if value is not None:
                    with self._lock:
                        stats.disk_hits += 1
                    return value
            value = self._timed_build(builder, stats)
            self._save_to_disk(key, value, stats)
            return value
        finally:
            lease.release()

    def _timed_build(
        self, builder: Callable[[], object], stats: KindStats
    ) -> object:
        started = time.perf_counter()
        value = builder()
        elapsed = time.perf_counter() - started
        with self._lock:
            stats.builds += 1
            stats.build_seconds += elapsed
        return value

    def ensure(
        self,
        key: ArtifactKey,
        value: object,
        dependencies: Iterable[ArtifactKey] = (),
    ) -> object:
        """Register an already-built value without touching the counters.

        Used to anchor aliases (a space reached via enumeration
        parameters also lives under its canonical content key); returns
        the previously registered value if one exists.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry.value
            self._insert(key, _Entry(value, tuple(dependencies)))
            return value

    def peek(self, key: ArtifactKey) -> Optional[object]:
        """The cached value, without counting a hit or touching the LRU."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    # -- invalidation ------------------------------------------------------------

    def invalidate(self, key: ArtifactKey) -> int:
        """Drop *key* and everything derived from it; return the count.

        Persisted files are deleted for every visited key -- including
        keys already evicted from memory -- so a stale artifact cannot
        resurrect from disk after its inputs were invalidated.  The
        store lock is held across the whole cascade walk, so a racing
        build cannot re-insert a dependent mid-invalidation and leave
        the dependency maps half-torn.
        """
        with self._lock:
            dropped = 0
            frontier = [key]
            while frontier:
                current = frontier.pop()
                if current in self._entries:
                    del self._entries[current]
                    dropped += 1
                self._delete_persisted(current)
                frontier.extend(self._dependents.pop(current, ()))
            return dropped

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is untouched)."""
        with self._lock:
            self._entries.clear()
            self._dependents.clear()

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """A deep-copied snapshot of per-kind counters.

        Taken under the store lock, so a concurrent reader sees a
        consistent point-in-time view -- never a half-updated counter
        set -- and mutating the returned dicts cannot corrupt the live
        statistics.
        """
        with self._lock:
            return {
                kind: stats.as_dict()
                for kind, stats in sorted(self._stats.items())
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._stats.clear()

    def record_degradation(self, kind: str) -> None:
        """Count one bitset -> naive degradation for *kind*."""
        with self._lock:
            self._stats.setdefault(kind, KindStats()).degradations += 1

    def record_deadline_hit(self, kind: str) -> None:
        """Count one deadline/step-budget cancellation for *kind*."""
        with self._lock:
            self._stats.setdefault(kind, KindStats()).deadline_hits += 1

    # -- internals ---------------------------------------------------------------

    # reprolint: holds-lock
    def _insert(self, key: ArtifactKey, entry: _Entry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        for dependency in entry.dependencies:
            self._dependents.setdefault(dependency, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._stats.setdefault(evicted.kind, KindStats()).evictions += 1

    def _disk_path(self, key: ArtifactKey) -> Optional[Path]:
        if not self.cache_dir:
            return None
        return Path(self.cache_dir) / key.filename()

    def _temp_path(self, path: Path) -> Path:
        """A per-process temp name next to *path*.

        ``path.with_suffix(".tmp")`` would let concurrent processes
        writing the same artifact clobber each other's half-written
        temp files; the pid makes the name unique per writer while the
        final ``replace`` stays atomic.
        """
        return path.parent / f"{path.name}.{os.getpid()}.tmp"

    def _delete_persisted(self, key: ArtifactKey) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.unlink(missing_ok=True)
        # reprolint: disable=RL008 -- cache-file cleanup is best-effort; the stale entry is rejected by checksum on read
        except OSError:
            # Best effort: an undeletable stale file is still rejected
            # by fingerprint mismatch only if inputs changed; nothing
            # more can be done here without making invalidation fail.
            pass

    def _load_from_disk(
        self, key: ArtifactKey, stats: KindStats
    ) -> Optional[object]:
        path = self._disk_path(key)
        if path is None:
            return None
        blob: Optional[bytes] = None
        for attempt in range(self.io_attempts):
            try:
                fault_check("store.load")
                blob = path.read_bytes()
                break
            except FileNotFoundError:
                return None
            except OSError:
                # Transient I/O failure: bounded retry with backoff,
                # then give up and rebuild -- never propagate.
                if attempt + 1 >= self.io_attempts:
                    return None
                with self._lock:
                    stats.io_retries += 1
                self._sleep(self.io_backoff * (2**attempt))
            except Exception:
                # Anything else a filesystem could throw is still just
                # a miss: the cache is never load-bearing.
                return None
        if blob is None:
            return None
        blob = fault_corrupt("store.load", blob)
        payload = _unwrap_payload(blob)
        if payload is None:
            with self._lock:
                stats.corrupt_entries += 1
            self._delete_persisted(key)
            return None
        try:
            return pickle.loads(payload)
        except Exception:
            # A checksum-valid payload that still fails to unpickle
            # means version skew in the *pickled classes* (not the
            # envelope); same remedy -- silent miss and rebuild.
            with self._lock:
                stats.corrupt_entries += 1
            self._delete_persisted(key)
            return None

    def _save_to_disk(
        self, key: ArtifactKey, value: object, stats: KindStats
    ) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            # Persistence is best-effort; unpicklable artifacts simply
            # stay memory-only.
            with self._lock:
                stats.persist_failures += 1
            return
        blob = _wrap_payload(payload)
        tmp = self._temp_path(path)
        for attempt in range(self.io_attempts):
            try:
                fault_check("store.save")
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_bytes(blob)
                tmp.replace(path)
                return
            except OSError:
                if attempt + 1 >= self.io_attempts:
                    break
                with self._lock:
                    stats.io_retries += 1
                self._sleep(self.io_backoff * (2**attempt))
            except Exception:
                # Persistence is best-effort under *any* failure mode.
                break
        with self._lock:
            stats.persist_failures += 1
        try:
            tmp.unlink(missing_ok=True)
        # reprolint: disable=RL008 -- temp-file cleanup after a failed persist; the cache is never load-bearing
        except OSError:
            pass
