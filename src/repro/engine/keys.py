"""Artifact identity: the key type shared by the store and backends.

Lives in its own leaf module so that
:mod:`repro.engine.store` (the composition layer) and
:mod:`repro.engine.backends` (the persistence tier) can both import it
without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArtifactKey"]


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one cached artifact.

    ``kind`` names the derivation ("space", "analysis", ...); the
    fingerprint hashes the inputs; ``kernel`` records the active
    computation mode, since bitset- and naive-built structures may
    differ representationally even when semantically equal.
    """

    kind: str
    fingerprint: str
    kernel: str

    def filename(self) -> str:
        """The on-disk cache filename for this key."""
        return f"{self.kind}-{self.kernel}-{self.fingerprint}.pkl"

    def shard(self) -> str:
        """The fingerprint-prefix shard a fleet-shared namespace uses.

        Two hex characters give 256 shards -- enough to keep any one
        bucket small for prefix scans and future partitioning, cheap
        enough to index.  Transient fingerprints shorter than the
        prefix shard under themselves.
        """
        return self.fingerprint[:2]
