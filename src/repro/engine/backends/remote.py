"""The HTTP backend: artifacts served by a shared ``artifactd``.

``REPRO_STORE_BACKEND=remote`` with ``REPRO_STORE_URL=http://host:port``
points the store at a :mod:`repro.artifactd` server, making build
sharing cross-*host*: any worker's compiled state space is every
worker's warm hit.  The network is the first genuinely unreliable
medium a backend has lived on, so this one carries its own weather
gear, layered strictly fail-open (the cache is never load-bearing):

1. **Per-op deadlines** -- every HTTP call gets a hard timeout
   (``REPRO_REMOTE_TIMEOUT_MS``); a hung server costs one deadline,
   never a hung session.
2. **Capped-exponential retry with full jitter** on transient
   transport failures (connection refused/reset, timeout, truncated
   response, 5xx): ``sleep ~ U(0, min(cap, base * 2**attempt))``, so a
   fleet thundering against a recovering server spreads out instead of
   re-synchronising.
3. **Envelope verification on read** -- bytes that fail the SHA-256
   envelope check (bit rot, truncation, proxy damage) are a silent
   miss, counted, and the damaged entry is deleted server-side
   best-effort so corruption is paid for once.
4. **A circuit breaker** -- after ``REPRO_REMOTE_BREAKER_THRESHOLD``
   *consecutive* exhausted operations the backend stops calling the
   server for ``REPRO_REMOTE_BREAKER_COOLDOWN_MS``, then lets one
   probe through (half-open); a dead server costs each worker a few
   timeouts, not a timeout per artifact.
5. **A write-behind spill tier** -- with ``REPRO_REMOTE_SPILL_DIR``
   set, everything the server cannot take lands in a local
   :class:`~repro.engine.backends.localdir.LocalDirBackend`; reads
   fall back to it, and a spill hit while the server is healthy is
   flushed back upstream (self-healing).  Without a spill dir the
   ladder ends at the store's own memory tier.

Leases are remote too: :class:`RemoteLease` speaks the server's
``/lease`` endpoint (TTL + holder token, last-writer-wins on expiry),
mirroring :class:`~repro.resilience.locks.FileLease` semantics so a
*cross-host* fleet still builds each contended artifact exactly once.
Like every lease in this codebase it is advisory: any failure --
breaker open, transport dead, fault injected at ``remote.lease`` --
degrades to building unleased, never to a failed build.

The ``remote.get`` / ``remote.put`` / ``remote.lease`` fault points
fire *inside* the retry loop, so an injected crash is
indistinguishable from a real transport failure and takes the same
ladder down.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import threading
import time
import urllib.error
import urllib.request
import uuid
import warnings
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import quote

from repro.engine.backends.base import (
    BackendDegradedWarning,
    GetResult,
    PutResult,
    RetryPolicy,
)
from repro.engine.backends.envelope import unwrap_payload, wrap_payload
from repro.engine.backends.localdir import LocalDirBackend
from repro.engine.keys import ArtifactKey
from repro.errors import BackendUnavailableError
from repro.resilience.faults import fault_check, fault_corrupt
from repro.resilience.locks import leases_enabled, lock_ttl_ms

__all__ = [
    "DEFAULT_REMOTE_TIMEOUT_MS",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_COOLDOWN_MS",
    "REMOTE_BREAKER_COOLDOWN_ENV_VAR",
    "REMOTE_BREAKER_THRESHOLD_ENV_VAR",
    "REMOTE_SPILL_ENV_VAR",
    "REMOTE_TIMEOUT_ENV_VAR",
    "RemoteBackend",
    "RemoteLease",
]

#: Environment variable bounding every HTTP call (milliseconds).
REMOTE_TIMEOUT_ENV_VAR = "REPRO_REMOTE_TIMEOUT_MS"

#: Environment variable locating the local write-behind spill tier.
REMOTE_SPILL_ENV_VAR = "REPRO_REMOTE_SPILL_DIR"

#: Environment variable: consecutive exhausted ops before the breaker
#: opens.
REMOTE_BREAKER_THRESHOLD_ENV_VAR = "REPRO_REMOTE_BREAKER_THRESHOLD"

#: Environment variable: how long an open breaker blocks the server
#: before the half-open probe (milliseconds).
REMOTE_BREAKER_COOLDOWN_ENV_VAR = "REPRO_REMOTE_BREAKER_COOLDOWN_MS"

DEFAULT_REMOTE_TIMEOUT_MS = 2_000.0
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN_MS = 5_000.0

#: Jitter ceiling per retry pause (seconds): past a few doublings the
#: pause is drawn from U(0, this) regardless of attempt number.
_MAX_BACKOFF_S = 0.25

# Internal op outcomes (the retry loop's verdict, pre-accounting).
_OK = "ok"
_MISS = "miss"
_FAIL = "fail"


def remote_timeout_ms(explicit: Optional[float] = None) -> float:
    """Per-op deadline in ms: explicit argument beats the environment.

    A malformed value raises ``ValueError`` eagerly -- a typo'd
    deadline must not silently mean "default deadline".
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get(REMOTE_TIMEOUT_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_REMOTE_TIMEOUT_MS
    return float(raw)


def remote_spill_dir(explicit: Optional[str] = None) -> Optional[str]:
    """The spill directory, or ``None`` (no local fallback tier)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(REMOTE_SPILL_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    return raw


def breaker_threshold(explicit: Optional[int] = None) -> int:
    """Consecutive exhausted ops before the breaker opens (>= 1)."""
    if explicit is not None:
        return max(1, explicit)
    raw = os.environ.get(REMOTE_BREAKER_THRESHOLD_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BREAKER_THRESHOLD
    return max(1, int(raw))


def breaker_cooldown_ms(explicit: Optional[float] = None) -> float:
    """How long an open breaker shields the server (milliseconds)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(REMOTE_BREAKER_COOLDOWN_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_BREAKER_COOLDOWN_MS
    return float(raw)


class _TransportBreaker:
    """Per-backend circuit breaker over *exhausted* operations.

    Individual attempt failures are the retry policy's business; the
    breaker counts operations that burned their whole attempt budget.
    After ``threshold`` consecutive exhaustions it opens: every
    :meth:`allow` answers ``False`` for ``cooldown_ms``, then exactly
    one caller gets a half-open probe -- its success closes the
    breaker, its failure re-arms the cooldown.
    """

    def __init__(self, threshold: int, cooldown_ms: float) -> None:
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.trips = 0

    def allow(self) -> bool:
        """Whether the caller may hit the network right now."""
        with self._lock:
            if self._opened_at is None:
                return True
            elapsed_ms = (time.monotonic() - self._opened_at) * 1e3
            if elapsed_ms < self.cooldown_ms:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._probing = False
            self._consecutive_failures += 1
            if self._opened_at is not None:
                # Failed half-open probe: re-arm the cooldown.
                self._opened_at = time.monotonic()
            elif self._consecutive_failures >= self.threshold:
                self._opened_at = time.monotonic()
                self.trips += 1

    def trip(self) -> None:
        """Open immediately (a failed health probe at ``open()``)."""
        with self._lock:
            self._consecutive_failures = self.threshold
            if self._opened_at is None:
                self._opened_at = time.monotonic()
                self.trips += 1

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            elapsed_ms = (time.monotonic() - self._opened_at) * 1e3
            return "half-open" if elapsed_ms >= self.cooldown_ms else "open"


class RemoteLease:
    """A TTL lease on one artifact, held at the artifact server.

    Satisfies the :class:`~repro.engine.backends.base.Lease` protocol:
    ``acquire`` polls the server's ``/lease`` endpoint with capped
    jittered backoff until granted, timed out behind a live holder, or
    dead transport-wise -- and every failure mode answers ``False``
    (build unleased), never raises.  The holder token is unique per
    lease instance, so a takeover by another worker cannot be released
    by us and vice versa.
    """

    def __init__(self, backend: "RemoteBackend", key: ArtifactKey) -> None:
        self._backend = backend
        self._key = key
        self.holder = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self.ttl_ms = lock_ttl_ms()
        #: Wait budget behind a live holder; one TTL, like FileLease.
        self.max_wait_ms = self.ttl_ms
        self.acquired = False
        self.waited = False
        self.took_over = False
        self.timed_out = False

    def acquire(self) -> bool:
        self.acquired = self.waited = False
        self.took_over = self.timed_out = False
        if self.ttl_ms <= 0 or not leases_enabled():
            return False
        deadline = time.monotonic() + self.max_wait_ms / 1e3
        attempt = 0
        transport_failures = 0
        while True:
            verdict = self._backend._lease_request(self._key, self.holder)
            if verdict is None:
                # Transport failure (or breaker open, or injected
                # fault): a bounded number of strikes, then build
                # unleased -- the lease is advisory.
                transport_failures += 1
                if transport_failures >= self._backend._retry.attempts:
                    return False
            elif verdict[0]:
                self.acquired = True
                self.took_over = verdict[1]
                return True
            elif time.monotonic() >= deadline:
                self.timed_out = True
                return False
            else:
                self.waited = True
            self._backend._jitter_pause(attempt)
            attempt += 1

    def release(self) -> None:
        if not self.acquired:
            return
        self.acquired = False
        self._backend._lease_release(self._key, self.holder)

    def __enter__(self) -> "RemoteLease":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class RemoteBackend:
    """Enveloped artifacts on a shared HTTP artifact server."""

    name = "remote"

    def __init__(
        self,
        url: str,
        io_attempts: int = 3,
        io_backoff: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
        timeout_ms: Optional[float] = None,
        spill_dir: Optional[str] = None,
        threshold: Optional[int] = None,
        cooldown_ms: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.url = str(url).rstrip("/")
        self._retry = RetryPolicy(io_attempts, io_backoff, sleep)
        self.timeout_ms = remote_timeout_ms(timeout_ms)
        self.spill_dir = remote_spill_dir(spill_dir)
        self._breaker = _TransportBreaker(
            breaker_threshold(threshold), breaker_cooldown_ms(cooldown_ms)
        )
        # Retry jitter only -- nothing fingerprint-relevant draws from
        # this, so an unseeded default is fine (tests inject a seeded
        # one for reproducible pause sequences).
        self._rng = rng if rng is not None else random.Random()
        self._spill: Optional[LocalDirBackend] = (
            LocalDirBackend(
                self.spill_dir,
                io_attempts=io_attempts,
                io_backoff=io_backoff,
                sleep=sleep,
            )
            if self.spill_dir
            else None
        )
        self._lock = threading.Lock()
        # -- counters (guarded by self._lock) --
        self._counters: Dict[str, int] = {
            "remote_gets": 0,
            "remote_hits": 0,
            "remote_puts": 0,
            "remote_deletes": 0,
            "transport_failures": 0,
            "transport_retries": 0,
            "corrupt_envelopes": 0,
            "breaker_rejections": 0,
            "spill_puts": 0,
            "spill_hits": 0,
            "spill_flushes": 0,
            "lease_grants": 0,
            "lease_denied": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> None:
        """Probe the server; degrade to the spill tier if it is down.

        With a spill directory configured, an unreachable server is a
        *degradation* (breaker opens, sessions run against the spill
        tier, a :class:`BackendDegradedWarning` is emitted) -- the
        store keeps a persistence tier and the fleet keeps working.
        Without one, it is the one failure ``open()`` may surface:
        :class:`~repro.errors.BackendUnavailableError`, and the store
        goes memory-only.
        """
        fault_check("backend.open")
        if not self.url.startswith(("http://", "https://")):
            raise BackendUnavailableError(
                f"remote artifact store URL {self.url!r} is not"
                " http(s)://"
            )
        if self._spill is not None:
            self._spill.open()
        try:
            status, _ = self._http(
                "GET", "/healthz", None, self.timeout_ms / 1e3
            )
        except Exception as exc:
            if self._spill is not None:
                self._breaker.trip()
                warnings.warn(
                    BackendDegradedWarning(
                        f"artifact server {self.url} is unreachable"
                        f" ({type(exc).__name__}); spilling to"
                        f" {self.spill_dir}"
                    ),
                    stacklevel=2,
                )
                return
            raise BackendUnavailableError(
                f"cannot reach artifact server at {self.url!r}:"
                f" {type(exc).__name__}: {exc}"
            ) from exc
        if status != 200:
            if self._spill is not None:
                self._breaker.trip()
                warnings.warn(
                    BackendDegradedWarning(
                        f"artifact server {self.url} answered"
                        f" {status} to the health probe; spilling to"
                        f" {self.spill_dir}"
                    ),
                    stacklevel=2,
                )
                return
            raise BackendUnavailableError(
                f"artifact server at {self.url!r} answered {status}"
                " to the health probe"
            )

    # -- protocol -------------------------------------------------------------

    def get(self, key: ArtifactKey) -> GetResult:
        with self._lock:
            self._counters["remote_gets"] += 1
        outcome, blob, retries = self._op(
            "GET",
            self._artifact_path(key),
            None,
            lambda: fault_check("remote.get"),
        )
        # Damaged bytes get re-fetched on the same attempt budget the
        # transport retries use: unlike a damaged *file*, a damaged
        # *response* is usually the wire's fault (a flaky proxy or
        # NIC) -- the HTTP framing survives a flipped payload bit, so
        # only the envelope checksum can see it, and only a fresh
        # round-trip can fix it.  Evicting the server's (likely fine)
        # copy is the last resort, not the first.
        fetch_round = 0
        while outcome == _OK and blob is not None:
            blob = fault_corrupt("remote.get", blob)
            payload = unwrap_payload(blob)
            if payload is not None:
                with self._lock:
                    self._counters["remote_hits"] += 1
                return GetResult(payload=payload, io_retries=retries)
            with self._lock:
                self._counters["corrupt_envelopes"] += 1
            fetch_round += 1
            if fetch_round >= self._retry.attempts:
                # Every round-trip delivered damage: treat the stored
                # envelope itself as bad.  Silent miss, and pay for
                # the corruption once by evicting the entry.
                self.delete(key)
                return GetResult(corrupt=True, io_retries=retries)
            self._jitter_pause(fetch_round - 1)
            outcome, blob, refetch_retries = self._op(
                "GET",
                self._artifact_path(key),
                None,
                lambda: fault_check("remote.get"),
            )
            retries += refetch_retries
        if self._spill is None:
            return GetResult(io_retries=retries)
        spilled = self._spill.get(key)
        if spilled.payload is not None:
            with self._lock:
                self._counters["spill_hits"] += 1
            if outcome == _MISS:
                # The server is healthy but never saw this artifact
                # (it spilled during an outage): flush it back so the
                # rest of the fleet stops missing.
                self._flush_to_remote(key, spilled.payload)
        return GetResult(
            payload=spilled.payload,
            corrupt=spilled.corrupt,
            io_retries=retries + spilled.io_retries,
        )

    def put(self, key: ArtifactKey, payload: bytes) -> PutResult:
        with self._lock:
            self._counters["remote_puts"] += 1
        blob = wrap_payload(payload)
        outcome, _, retries = self._op(
            "PUT",
            self._artifact_path(key),
            blob,
            lambda: fault_check("remote.put"),
        )
        if outcome == _OK:
            return PutResult(io_retries=retries)
        if self._spill is None:
            return PutResult(persisted=False, io_retries=retries)
        spilled = self._spill.put(key, payload)
        if spilled.persisted:
            with self._lock:
                self._counters["spill_puts"] += 1
        return PutResult(
            persisted=spilled.persisted,
            io_retries=retries + spilled.io_retries,
        )

    def delete(self, key: ArtifactKey) -> None:
        with self._lock:
            self._counters["remote_deletes"] += 1
        # Best-effort on both tiers; a survivor is re-rejected by
        # checksum (or dependency fingerprints) on its next read.
        self._op(
            "DELETE",
            self._artifact_path(key),
            None,
            lambda: fault_check("remote.put"),
        )
        if self._spill is not None:
            self._spill.delete(key)

    def sweep(self) -> int:
        reclaimed = 0
        outcome, body, _ = self._op(
            "POST", "/sweep", b"", lambda: fault_check("remote.put")
        )
        if outcome == _OK and body is not None:
            try:
                parsed = json.loads(body)
                if isinstance(parsed, dict):
                    value = parsed.get("reclaimed", 0)
                    if isinstance(value, int):
                        reclaimed += value
            # reprolint: disable=RL008 -- a malformed sweep reply only loses a counter, never correctness
            except ValueError:
                pass
        if self._spill is not None:
            reclaimed += self._spill.sweep()
        return reclaimed

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
        snapshot: Dict[str, object] = {
            "name": self.name,
            "url": self.url,
            "breaker_state": self._breaker.state,
            "breaker_trips": self._breaker.trips,
            **counters,
        }
        if self._spill is not None:
            snapshot["spill"] = self._spill.stats()
        return snapshot

    def lease_for(self, key: ArtifactKey) -> Optional[RemoteLease]:
        return RemoteLease(self, key)

    # -- lease plumbing (called by RemoteLease) -------------------------------

    def _lease_request(
        self, key: ArtifactKey, holder: str
    ) -> Optional[Tuple[bool, bool]]:
        """One acquire round-trip: ``(granted, took_over)``, ``None``
        on transport failure or an open breaker."""
        body = json.dumps(
            {"holder": holder, "ttl_ms": lock_ttl_ms()}
        ).encode("utf-8")
        outcome, reply, _ = self._op(
            "POST",
            self._lease_path(key),
            body,
            lambda: fault_check("remote.lease"),
        )
        if outcome == _FAIL or reply is None:
            return None
        try:
            parsed = json.loads(reply)
        except ValueError:
            return None
        if not isinstance(parsed, dict):
            return None
        granted = bool(parsed.get("granted"))
        with self._lock:
            if granted:
                self._counters["lease_grants"] += 1
            else:
                self._counters["lease_denied"] += 1
        return (granted, bool(parsed.get("took_over")))

    def _lease_release(self, key: ArtifactKey, holder: str) -> None:
        self._op(
            "DELETE",
            f"{self._lease_path(key)}?holder={quote(holder)}",
            None,
            lambda: fault_check("remote.lease"),
        )

    # -- transport ------------------------------------------------------------

    def _op(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        check: Callable[[], None],
    ) -> Tuple[str, Optional[bytes], int]:
        """One logical operation: retry loop + breaker accounting.

        Returns ``(outcome, body, io_retries)`` where outcome is
        ``"ok"`` (2xx), ``"miss"`` (404 -- a *successful* round-trip
        that found nothing), or ``"fail"`` (breaker open, or transport
        failures exhausted the attempt budget).  Lease conflicts (409)
        come back as ``"ok"`` with the conflict body -- the protocol
        speaks in JSON verdicts, not errors.
        """
        if not self._breaker.allow():
            with self._lock:
                self._counters["breaker_rejections"] += 1
            return (_FAIL, None, 0)
        retries = 0
        for attempt in range(self._retry.attempts):
            try:
                check()
                status, reply = self._http(
                    method, path, body, self.timeout_ms / 1e3
                )
            except Exception:
                # Connection refused/reset, timeout, truncated reply,
                # or an injected fault -- all the same transient to us.
                with self._lock:
                    self._counters["transport_failures"] += 1
                if attempt + 1 >= self._retry.attempts:
                    self._breaker.record_failure()
                    return (_FAIL, None, retries)
                retries += 1
                with self._lock:
                    self._counters["transport_retries"] += 1
                self._jitter_pause(attempt)
                continue
            if status >= 500:
                # Server-side trouble: retryable, same as transport.
                with self._lock:
                    self._counters["transport_failures"] += 1
                if attempt + 1 >= self._retry.attempts:
                    self._breaker.record_failure()
                    return (_FAIL, None, retries)
                retries += 1
                with self._lock:
                    self._counters["transport_retries"] += 1
                self._jitter_pause(attempt)
                continue
            self._breaker.record_success()
            if status == 404:
                return (_MISS, None, retries)
            if status == 400 and method == "PUT":
                # The server rejected the envelope's structural check:
                # our bytes were damaged *in flight* (we just wrapped
                # them).  Retry -- a clean connection will carry them.
                with self._lock:
                    self._counters["transport_failures"] += 1
                if attempt + 1 >= self._retry.attempts:
                    return (_FAIL, None, retries)
                retries += 1
                with self._lock:
                    self._counters["transport_retries"] += 1
                self._jitter_pause(attempt)
                continue
            return (_OK, reply, retries)
        return (_FAIL, None, retries)

    def _http(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        timeout_s: float,
    ) -> Tuple[int, Optional[bytes]]:
        """One HTTP round-trip; raises on any transport failure."""
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/octet-stream")
        try:
            with urllib.request.urlopen(
                request, timeout=timeout_s
            ) as response:
                return (response.status, response.read())
        except urllib.error.HTTPError as exc:
            # Non-2xx with a well-formed reply: a *successful*
            # round-trip carrying a verdict, not a transport failure.
            reply: Optional[bytes]
            try:
                reply = exc.read()
            except (OSError, http.client.HTTPException):
                reply = None
            return (exc.code, reply)

    def _jitter_pause(self, attempt: int) -> None:
        """Full-jitter backoff: ``U(0, min(cap, base * 2**attempt))``."""
        doublings = min(attempt, 16)
        ceiling = min(
            self._retry.backoff * (2**doublings), _MAX_BACKOFF_S
        )
        self._retry.sleep(self._rng.uniform(0.0, ceiling))

    def _flush_to_remote(self, key: ArtifactKey, payload: bytes) -> None:
        """Write-behind: push a spill hit back upstream, best-effort."""
        outcome, _, _ = self._op(
            "PUT",
            self._artifact_path(key),
            wrap_payload(payload),
            lambda: fault_check("remote.put"),
        )
        if outcome == _OK:
            with self._lock:
                self._counters["spill_flushes"] += 1

    # -- paths ----------------------------------------------------------------

    @staticmethod
    def _quoted(key: ArtifactKey) -> str:
        return (
            f"{quote(key.kind, safe='')}"
            f"/{quote(key.fingerprint, safe='')}"
            f"/{quote(key.kernel, safe='')}"
        )

    def _artifact_path(self, key: ArtifactKey) -> str:
        return f"/artifact/{self._quoted(key)}"

    def _lease_path(self, key: ArtifactKey) -> str:
        return f"/lease/{self._quoted(key)}"
