"""Pluggable persistence backends for the artifact store.

The :class:`~repro.engine.store.ArtifactStore` owns memoization policy
(LRU, single-flight, dependency cascades, counters); *where persisted
envelopes live* is delegated to an
:class:`~repro.engine.backends.base.ArtifactBackend`:

* :class:`~repro.engine.backends.localdir.LocalDirBackend` -- one
  enveloped pickle file per artifact in a directory
  (``REPRO_CACHE_DIR``, the original behaviour);
* :class:`~repro.engine.backends.sqlitedb.SQLiteBackend` -- one shared
  SQLite database (WAL mode, ``BEGIN IMMEDIATE`` writes,
  fingerprint-sharded namespace) safe for a fleet of processes on one
  file or NFS mount;
* :class:`~repro.engine.backends.remote.RemoteBackend` -- a shared
  :mod:`repro.artifactd` HTTP server, safe for a fleet of processes on
  *different hosts*, with deadlines, jittered retry, a circuit
  breaker, and a local write-behind spill tier for outages.

Selection: pass a backend to ``Engine(backend=...)`` /
``ArtifactStore(backend=...)``, or configure the environment --
``REPRO_STORE_BACKEND=local|sqlite|remote`` names the implementation
and ``REPRO_STORE_URL`` its location (a directory for ``local``, a
database file for ``sqlite``, an ``http(s)://`` URL for ``remote``).  Explicit constructor arguments beat
the environment; ``REPRO_CACHE_DIR`` keeps working as the legacy
spelling of a local backend.  A backend that fails to *open* degrades
the store to memory-only with a typed warning counter -- persistence
is never load-bearing.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.engine.backends.base import (
    ArtifactBackend,
    BackendDegradedWarning,
    GetResult,
    PutResult,
)
from repro.engine.backends.envelope import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    HEADER,
    unwrap_payload,
    wrap_payload,
)
from repro.engine.backends.localdir import LocalDirBackend
from repro.engine.backends.remote import RemoteBackend
from repro.engine.backends.sqlitedb import SQLiteBackend
from repro.errors import BackendConfigError

__all__ = [
    "ArtifactBackend",
    "BackendDegradedWarning",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "GetResult",
    "HEADER",
    "LocalDirBackend",
    "RemoteBackend",
    "SQLiteBackend",
    "STORE_BACKEND_ENV_VAR",
    "STORE_URL_ENV_VAR",
    "create_backend",
    "resolve_backend",
    "unwrap_payload",
    "wrap_payload",
]

#: Environment variable naming the backend implementation.
STORE_BACKEND_ENV_VAR = "REPRO_STORE_BACKEND"

#: Environment variable locating it (directory or database file).
STORE_URL_ENV_VAR = "REPRO_STORE_URL"

_BACKEND_NAMES = ("local", "sqlite", "remote")


def create_backend(
    name: str,
    url: str,
    io_attempts: int = 3,
    io_backoff: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
) -> ArtifactBackend:
    """Construct (but do not open) the backend called *name* at *url*.

    Raises :class:`~repro.errors.BackendConfigError` eagerly for an
    unknown name or a missing URL -- a typo'd selection must not
    silently mean "no persistence".
    """
    normalized = name.strip().lower()
    if normalized not in _BACKEND_NAMES:
        raise BackendConfigError(
            f"unknown artifact backend {name!r}; expected one of"
            f" {_BACKEND_NAMES}"
        )
    if not url:
        locations = {
            "local": " cache directory",
            "sqlite": " database file path",
            "remote": "n http(s):// artifact-server URL",
        }
        raise BackendConfigError(
            f"artifact backend {normalized!r} needs a location: set"
            f" {STORE_URL_ENV_VAR} (or pass a URL) to a"
            + locations[normalized]
        )
    if normalized == "local":
        return LocalDirBackend(
            url, io_attempts=io_attempts, io_backoff=io_backoff, sleep=sleep
        )
    if normalized == "remote":
        return RemoteBackend(
            url, io_attempts=io_attempts, io_backoff=io_backoff, sleep=sleep
        )
    return SQLiteBackend(
        url, io_attempts=io_attempts, io_backoff=io_backoff, sleep=sleep
    )


def resolve_backend(
    cache_dir: Optional[str] = None,
    io_attempts: int = 3,
    io_backoff: float = 0.01,
    sleep: Callable[[float], None] = time.sleep,
) -> Optional[ArtifactBackend]:
    """The backend the configuration asks for, or ``None`` (memory-only).

    Precedence: an explicit *cache_dir* (constructor argument) wins and
    means a local-dir backend -- tests and callers that pin a directory
    stay hermetic under any ambient environment -- then
    ``REPRO_STORE_BACKEND``/``REPRO_STORE_URL``, then the legacy
    ``REPRO_CACHE_DIR``.
    """
    if cache_dir:
        return LocalDirBackend(
            cache_dir,
            io_attempts=io_attempts,
            io_backoff=io_backoff,
            sleep=sleep,
        )
    name = os.environ.get(STORE_BACKEND_ENV_VAR)
    if name is not None and name.strip():
        url = os.environ.get(STORE_URL_ENV_VAR, "")
        if not url and name.strip().lower() == "local":
            url = os.environ.get("REPRO_CACHE_DIR", "")
        return create_backend(
            name,
            url,
            io_attempts=io_attempts,
            io_backoff=io_backoff,
            sleep=sleep,
        )
    legacy_dir = os.environ.get("REPRO_CACHE_DIR")
    if legacy_dir:
        return LocalDirBackend(
            legacy_dir,
            io_attempts=io_attempts,
            io_backoff=io_backoff,
            sleep=sleep,
        )
    return None
