"""The pickle-directory backend: one enveloped file per artifact.

This is the original ``ArtifactStore`` persistence path, extracted
verbatim behind the :class:`~repro.engine.backends.base.ArtifactBackend`
protocol: atomic per-pid temp-file writes, bounded retry on transient
``OSError``, envelope verification with damaged-entry deletion, and
:class:`~repro.resilience.locks.FileLease` scoped next to each artifact
file.

:meth:`LocalDirBackend.open` runs the dead-writer temp-file sweep that
used to fire on every store construction -- now **one-shot per
resolved path per process**: constructing fifty stores over one cache
directory sweeps it once, and the reclaimed count is surfaced as the
``sweep_reclaimed`` backend stat.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Set

from repro.engine.backends.base import GetResult, PutResult, RetryPolicy
from repro.engine.backends.envelope import unwrap_payload, wrap_payload
from repro.engine.keys import ArtifactKey
from repro.errors import BackendUnavailableError
from repro.resilience.faults import fault_check, fault_corrupt
from repro.resilience.locks import FileLease, sweep_stale_temp_files

__all__ = ["LocalDirBackend", "reset_sweep_registry"]

#: Cache-directory paths already swept by this process, so that the
#: dead-writer sweep is one-shot per path instead of per store.
_SWEPT_ROOTS: Set[str] = set()
_SWEPT_ROOTS_LOCK = threading.Lock()


def reset_sweep_registry() -> None:
    """Forget which paths were swept (tests of the one-shot contract)."""
    with _SWEPT_ROOTS_LOCK:
        _SWEPT_ROOTS.clear()


class LocalDirBackend:
    """Enveloped pickle files in one directory (the classic backend)."""

    name = "local"

    def __init__(
        self,
        root: str,
        io_attempts: int = 3,
        io_backoff: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.root = str(root)
        self._retry = RetryPolicy(io_attempts, io_backoff, sleep)
        #: Temp files reclaimed from dead writers by :meth:`open`.
        self.sweep_reclaimed = 0

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> None:
        """Create the root and run the one-shot dead-writer sweep.

        The root is created eagerly so that the very first build can
        take a cross-process lease (lockfiles live next to the
        artifacts); a root that *exists and is not a directory* is a
        configuration error worth failing loudly about -- the store
        will degrade to memory-only.
        """
        fault_check("backend.open")
        resolved = os.path.abspath(self.root)
        if os.path.exists(resolved) and not os.path.isdir(resolved):
            raise BackendUnavailableError(
                f"artifact cache root {self.root!r} exists and is not a"
                " directory"
            )
        try:
            os.makedirs(resolved, exist_ok=True)
        except OSError as exc:
            raise BackendUnavailableError(
                f"cannot create artifact cache root {self.root!r}:"
                f" {type(exc).__name__}: {exc}"
            ) from exc
        with _SWEPT_ROOTS_LOCK:
            first_opener = resolved not in _SWEPT_ROOTS
            _SWEPT_ROOTS.add(resolved)
        if first_opener:
            self.sweep_reclaimed += sweep_stale_temp_files(self.root)

    # -- protocol -------------------------------------------------------------

    def get(self, key: ArtifactKey) -> GetResult:
        path = self._path(key)
        blob: Optional[bytes] = None
        retries = 0
        for attempt in range(self._retry.attempts):
            try:
                fault_check("store.load")
                blob = path.read_bytes()
                break
            except FileNotFoundError:
                return GetResult(io_retries=retries)
            except OSError:
                # Transient I/O failure: bounded retry with backoff,
                # then give up and let the store rebuild -- never
                # propagate.
                if attempt + 1 >= self._retry.attempts:
                    return GetResult(io_retries=retries)
                retries += 1
                self._retry.pause(attempt)
            except Exception:
                # Anything else a filesystem could throw is still just
                # a miss: the cache is never load-bearing.
                return GetResult(io_retries=retries)
        if blob is None:
            return GetResult(io_retries=retries)
        blob = fault_corrupt("store.load", blob)
        payload = unwrap_payload(blob)
        if payload is None:
            self.delete(key)
            return GetResult(corrupt=True, io_retries=retries)
        return GetResult(payload=payload, io_retries=retries)

    def put(self, key: ArtifactKey, payload: bytes) -> PutResult:
        path = self._path(key)
        blob = wrap_payload(payload)
        tmp = self._temp_path(path)
        retries = 0
        for attempt in range(self._retry.attempts):
            try:
                fault_check("store.save")
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_bytes(blob)
                tmp.replace(path)
                return PutResult(io_retries=retries)
            except OSError:
                if attempt + 1 >= self._retry.attempts:
                    break
                retries += 1
                self._retry.pause(attempt)
            except Exception:
                # Persistence is best-effort under *any* failure mode.
                break
        try:
            tmp.unlink(missing_ok=True)
        # reprolint: disable=RL008 -- temp-file cleanup after a failed persist; the cache is never load-bearing
        except OSError:
            pass
        return PutResult(persisted=False, io_retries=retries)

    def delete(self, key: ArtifactKey) -> None:
        try:
            self._path(key).unlink(missing_ok=True)
        # reprolint: disable=RL008 -- cache-file cleanup is best-effort; a stale entry is rejected by checksum on read
        except OSError:
            pass

    def sweep(self) -> int:
        """Reclaim dead writers' temp files now, unconditionally."""
        reclaimed = sweep_stale_temp_files(self.root)
        self.sweep_reclaimed += reclaimed
        return reclaimed

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "root": self.root,
            "sweep_reclaimed": self.sweep_reclaimed,
        }

    def lease_for(self, key: ArtifactKey) -> Optional[FileLease]:
        return FileLease(
            self._path(key),
            backoff=self._retry.backoff,
            sleep=self._retry.sleep,
        )

    # -- paths ----------------------------------------------------------------

    def _path(self, key: ArtifactKey) -> Path:
        return Path(self.root) / key.filename()

    def _temp_path(self, path: Path) -> Path:
        """A per-process temp name next to *path*.

        ``path.with_suffix(".tmp")`` would let concurrent processes
        writing the same artifact clobber each other's half-written
        temp files; the pid makes the name unique per writer while the
        final ``replace`` stays atomic.
        """
        return path.parent / f"{path.name}.{os.getpid()}.tmp"
