"""The :class:`ArtifactBackend` protocol every storage tier implements.

:class:`~repro.engine.store.ArtifactStore` is the in-memory LRU +
single-flight + dependency-cascade layer; *where persisted envelopes
live* is the backend's business.  The seam is deliberately narrow --
``open``/``get``/``put``/``delete``/``sweep``/``stats`` plus a
backend-provided lease scope -- and deliberately *accounted*: ``get``
and ``put`` return structured results carrying the corruption and
retry events the store folds into its per-kind counters, so every
backend inherits the same observability without reaching into the
store's lock.

Contract, shared by all implementations:

* a backend is never load-bearing: ``get`` answers ``None``-payload
  results for *every* failure mode (missing, damaged, I/O-dead) and
  ``put`` reports ``persisted=False`` instead of raising -- the store
  rebuilds or stays memory-only;
* only :meth:`ArtifactBackend.open` may raise, and only
  :class:`~repro.errors.BackendUnavailableError`; the store answers it
  by degrading to memory-only operation, breaker-style, with a typed
  warning counter;
* payloads are pickled bytes; the backend wraps them in the shared
  checksummed envelope (:mod:`repro.engine.backends.envelope`) on
  ``put`` and verifies/unwraps on ``get``, deleting damaged entries so
  corruption is paid for once;
* :meth:`ArtifactBackend.lease_for` scopes the cross-process
  exactly-once machinery (:class:`~repro.resilience.locks.FileLease`)
  to whatever path namespace the backend owns, or returns ``None``
  when leasing is meaningless for the medium.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.engine.keys import ArtifactKey

__all__ = [
    "ArtifactBackend",
    "BackendDegradedWarning",
    "GetResult",
    "Lease",
    "PutResult",
]


class BackendDegradedWarning(UserWarning):
    """A configured backend failed to open; the store runs memory-only."""


@dataclass(frozen=True)
class GetResult:
    """Outcome of one backend read, with its accounting events.

    ``payload`` is the verified (post-envelope) pickled bytes, or
    ``None`` for any flavour of miss.  ``corrupt`` marks an entry that
    existed but failed envelope verification (it was deleted);
    ``io_retries`` counts transient-error retries spent on the way.
    """

    payload: Optional[bytes] = None
    corrupt: bool = False
    io_retries: int = 0


@dataclass(frozen=True)
class PutResult:
    """Outcome of one backend write: persisted or given up, and the
    transient-error retries spent getting there."""

    persisted: bool = True
    io_retries: int = 0


@runtime_checkable
class Lease(Protocol):
    """What the store needs from a cross-process lease, structurally.

    :class:`~repro.resilience.locks.FileLease` (file media) and
    :class:`~repro.engine.backends.remote.RemoteLease` (HTTP media)
    both satisfy this: ``acquire`` never raises and answers whether we
    are the builder, ``release`` is a best-effort no-op-on-failure, and
    the three flags tell the store what contention looked like so it
    can count it.  Every failure mode degrades to building unleased --
    a lease is advisory on any medium.
    """

    #: True if at least one backoff wait happened (contention).
    waited: bool
    #: True if a stale/expired holder's lease was taken over.
    took_over: bool
    #: True if the wait budget ran out behind a live holder.
    timed_out: bool

    def acquire(self) -> bool:
        """Try to take the lease; never raises, never waits past TTL."""

    def release(self) -> None:
        """Give the lease back (no-op unless held); never raises."""


@runtime_checkable
class ArtifactBackend(Protocol):
    """Pluggable persistence tier behind the artifact store."""

    #: Short machine-readable backend name ("local", "sqlite", ...).
    name: str

    def open(self) -> None:
        """One-shot initialisation (connect, migrate, sweep leftovers).

        The only protocol method allowed to fail: raises
        :class:`~repro.errors.BackendUnavailableError` when the medium
        cannot be used, and the store degrades to memory-only.
        """

    def get(self, key: ArtifactKey) -> GetResult:
        """The verified payload for *key*, as a :class:`GetResult`."""

    def put(self, key: ArtifactKey, payload: bytes) -> PutResult:
        """Persist *payload* (pickled bytes) under *key*, enveloped."""

    def delete(self, key: ArtifactKey) -> None:
        """Best-effort removal of *key*'s persisted entry."""

    def sweep(self) -> int:
        """Reclaim leftovers of dead writers; returns the count."""

    def stats(self) -> Dict[str, object]:
        """Backend-level counters and identity for the stats snapshot."""

    def lease_for(self, key: ArtifactKey) -> Optional[Lease]:
        """A cross-process lease scoped to *key*, or ``None``."""


class RetryPolicy:
    """Bounded retry-with-backoff shared by the concrete backends.

    Not part of the protocol -- a convenience the bundled backends
    compose so that transient-error handling (attempt budget, doubling
    backoff, injectable sleep) stays identical across media.
    """

    def __init__(
        self,
        attempts: int = 3,
        backoff: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            # reprolint: disable=RL001 -- argument validation on the public retry knob; stdlib idiom
            raise ValueError("attempts must be positive")
        self.attempts = attempts
        self.backoff = backoff
        self.sleep = sleep

    def pause(self, attempt: int) -> None:
        """Back off after failed *attempt* (0-based), doubling each time."""
        self.sleep(self.backoff * (2**attempt))
