"""The shared-file SQLite backend: one database, a fleet of workers.

Where :class:`~repro.engine.backends.localdir.LocalDirBackend` is one
file per artifact, this backend is one SQLite database for *all* of
them -- safe for many processes sharing a file on local disk or an NFS
mount:

* **WAL journal mode** keeps readers un-blocked by the single writer;
* every write runs inside a ``BEGIN IMMEDIATE`` transaction, taking
  the write lock up front so two processes upserting the same artifact
  serialise instead of deadlocking mid-transaction;
* rows are keyed by the fingerprint-sharded namespace
  ``(kind, shard, fingerprint, kernel)`` with ``shard =
  fingerprint[:2]`` -- 256 buckets that keep prefix scans cheap and
  leave room for future partitioning across files;
* blobs are the same checksummed RPRO envelopes the local-dir backend
  writes, so artifacts are byte-portable between backends and damage
  inside the database (torn blob, version skew) reads as a silent
  miss, exactly like a damaged file;
* cross-process exactly-once builds reuse the
  :class:`~repro.resilience.locks.FileLease` machinery, scoped to a
  ``<database>.leases/`` directory next to the database file.

One connection per backend instance, guarded by a mutex: artifact
reads/writes are tiny and the store's single-flight already serialises
per-key work, so a shared connection beats per-thread connection
churn.  A backend instance must not be shared across ``fork()`` --
each worker process opens its own (SQLite connections are not
fork-safe); the multi-process benchmark and tests construct theirs
inside the child.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Set

from repro.engine.backends.base import GetResult, PutResult, RetryPolicy
from repro.engine.backends.envelope import unwrap_payload, wrap_payload
from repro.engine.keys import ArtifactKey
from repro.errors import BackendUnavailableError
from repro.resilience.faults import fault_check, fault_corrupt
from repro.resilience.locks import FileLease, sweep_stale_lockfiles

__all__ = ["SQLiteBackend", "reset_lease_sweep_registry"]

#: Lease directories already swept by this process, so the open-time
#: dead-holder sweep is one-shot per database instead of per instance.
#: Re-sweeping on every ``open()`` is not just wasted I/O: a fleet of
#: forked workers opening the same database concurrently races its
#: sweeps against siblings' fresh lease acquisitions over the same
#: lockfile paths (the double-delete race the payload re-read guard in
#: :func:`~repro.resilience.locks.sweep_stale_lockfiles` narrows).
#: One-shot-per-path removes the systematic trigger; the explicit
#: :meth:`SQLiteBackend.sweep` stays unconditional for callers that
#: want an eager reclaim.
_SWEPT_LEASE_DIRS: Set[str] = set()
_SWEPT_LEASE_DIRS_LOCK = threading.Lock()


def reset_lease_sweep_registry() -> None:
    """Forget which lease dirs were swept (tests of the contract)."""
    with _SWEPT_LEASE_DIRS_LOCK:
        _SWEPT_LEASE_DIRS.clear()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifacts (
    kind        TEXT NOT NULL,
    shard       TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    kernel      TEXT NOT NULL,
    blob        BLOB NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (kind, shard, fingerprint, kernel)
)
"""

#: How long one SQLite operation may spin on a contended write lock
#: before surfacing ``SQLITE_BUSY`` (which the retry policy then
#: absorbs).  Milliseconds.
_BUSY_TIMEOUT_MS = 2_000


class SQLiteBackend:
    """Enveloped artifact blobs in one shared SQLite database."""

    name = "sqlite"

    def __init__(
        self,
        url: str,
        io_attempts: int = 3,
        io_backoff: float = 0.01,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.url = str(url)
        self._retry = RetryPolicy(io_attempts, io_backoff, sleep)
        self._conn: Optional[sqlite3.Connection] = None
        self._conn_lock = threading.Lock()
        #: Stale lease lockfiles reclaimed by :meth:`open`/:meth:`sweep`.
        self.sweep_reclaimed = 0

    # -- lifecycle ------------------------------------------------------------

    def open(self) -> None:
        """Connect, migrate the schema, and sweep dead holders' leases.

        The lease sweep runs once per database path per process (see
        :data:`_SWEPT_LEASE_DIRS`); later opens of the same database
        skip it.  Any failure -- unreachable path, corrupt database, injected
        fault -- surfaces as the one typed error the protocol allows,
        :class:`~repro.errors.BackendUnavailableError`; the store
        degrades to memory-only.
        """
        try:
            fault_check("backend.open")
            path = Path(self.url)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.url,
                timeout=_BUSY_TIMEOUT_MS / 1e3,
                check_same_thread=False,
            )
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
                conn.execute(_SCHEMA)
                conn.commit()
            except Exception:
                # The connection exists but the database is unusable
                # (corrupt file, locked WAL, injected fault): close it
                # before degrading, or every failed open leaks a
                # descriptor for the life of the process.
                conn.close()
                raise
        except BackendUnavailableError:
            raise
        except Exception as exc:
            raise BackendUnavailableError(
                f"cannot open SQLite artifact store at {self.url!r}:"
                f" {type(exc).__name__}: {exc}"
            ) from exc
        self._conn = conn
        lease_dir = str(self._lease_dir())
        with _SWEPT_LEASE_DIRS_LOCK:
            first_opener = lease_dir not in _SWEPT_LEASE_DIRS
            _SWEPT_LEASE_DIRS.add(lease_dir)
        if first_opener:
            self.sweep_reclaimed += sweep_stale_lockfiles(lease_dir)

    def close(self) -> None:
        """Release the connection (idempotent; mostly for tests)."""
        with self._conn_lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            # reprolint: disable=RL008 -- releasing a connection is best-effort teardown; nothing depends on it succeeding
            except sqlite3.Error:
                pass

    # -- protocol -------------------------------------------------------------

    def get(self, key: ArtifactKey) -> GetResult:
        retries = 0
        blob: Optional[bytes] = None
        for attempt in range(self._retry.attempts):
            try:
                fault_check("store.load")
                with self._conn_lock:
                    row = self._connection().execute(
                        "SELECT blob FROM artifacts WHERE kind=? AND"
                        " shard=? AND fingerprint=? AND kernel=?",
                        self._key_tuple(key),
                    ).fetchone()
                blob = None if row is None else bytes(row[0])
                break
            except (sqlite3.OperationalError, OSError):
                # SQLITE_BUSY, a locked WAL, transient filesystem
                # trouble: bounded retry, then give up as a miss.
                if attempt + 1 >= self._retry.attempts:
                    return GetResult(io_retries=retries)
                retries += 1
                self._retry.pause(attempt)
            except Exception:
                # Any other database failure is still just a miss: the
                # cache is never load-bearing.
                return GetResult(io_retries=retries)
        if blob is None:
            return GetResult(io_retries=retries)
        blob = fault_corrupt("store.load", blob)
        payload = unwrap_payload(blob)
        if payload is None:
            self.delete(key)
            return GetResult(corrupt=True, io_retries=retries)
        return GetResult(payload=payload, io_retries=retries)

    def put(self, key: ArtifactKey, payload: bytes) -> PutResult:
        blob = wrap_payload(payload)
        retries = 0
        for attempt in range(self._retry.attempts):
            try:
                fault_check("store.save")
                with self._conn_lock:
                    conn = self._connection()
                    conn.execute("BEGIN IMMEDIATE")
                    try:
                        conn.execute(
                            "INSERT OR REPLACE INTO artifacts"
                            " (kind, shard, fingerprint, kernel, blob,"
                            " created_at) VALUES (?, ?, ?, ?, ?, ?)",
                            (*self._key_tuple(key), blob, time.time()),
                        )
                        conn.commit()
                    except BaseException:
                        conn.rollback()
                        raise
                return PutResult(io_retries=retries)
            except (sqlite3.OperationalError, OSError):
                if attempt + 1 >= self._retry.attempts:
                    break
                retries += 1
                self._retry.pause(attempt)
            except Exception:
                # Persistence is best-effort under *any* failure mode.
                break
        return PutResult(persisted=False, io_retries=retries)

    def delete(self, key: ArtifactKey) -> None:
        try:
            with self._conn_lock:
                conn = self._connection()
                conn.execute(
                    "DELETE FROM artifacts WHERE kind=? AND shard=? AND"
                    " fingerprint=? AND kernel=?",
                    self._key_tuple(key),
                )
                conn.commit()
        # reprolint: disable=RL008 -- row cleanup is best-effort; a stale entry is rejected by checksum on read
        except Exception:
            pass

    def sweep(self) -> int:
        """Reclaim lease lockfiles left behind by dead holders."""
        reclaimed = sweep_stale_lockfiles(str(self._lease_dir()))
        self.sweep_reclaimed += reclaimed
        return reclaimed

    def stats(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "url": self.url,
            "sweep_reclaimed": self.sweep_reclaimed,
        }

    def lease_for(self, key: ArtifactKey) -> Optional[FileLease]:
        """A lease under ``<database>.leases/``, shared fleet-wide.

        Every process pointing at one database file resolves the same
        lease directory, so the exactly-once guarantee spans the fleet
        exactly as it does for a shared cache directory.
        """
        lease_dir = self._lease_dir()
        try:
            lease_dir.mkdir(parents=True, exist_ok=True)
        # reprolint: disable=RL008 -- the lease is advisory; an uncreatable lease dir means building unleased, never failing
        except OSError:
            pass
        return FileLease(
            lease_dir / key.filename(),
            backoff=self._retry.backoff,
            sleep=self._retry.sleep,
        )

    # -- internals ------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        conn = self._conn
        if conn is None:
            # reprolint: disable=RL001 -- programming-error guard: protocol methods require open() first; BackendError is typed
            raise BackendUnavailableError(
                f"SQLite backend at {self.url!r} is not open"
            )
        return conn

    def _lease_dir(self) -> Path:
        return Path(f"{self.url}.leases")

    @staticmethod
    def _key_tuple(key: ArtifactKey) -> "tuple[str, str, str, str]":
        return (key.kind, key.shard(), key.fingerprint, key.kernel)

    def __del__(self) -> None:
        self.close()
