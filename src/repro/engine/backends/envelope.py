"""The checksummed on-disk/on-wire envelope shared by every backend.

Whatever medium a backend persists to -- files, SQLite blobs, an HTTP
artifact server -- the bytes it stores are one *envelope*: a fixed
header (magic, format version, payload length, SHA-256 digest) followed
by the pickled payload.  Damage of any kind -- truncation, bit rot,
version skew, foreign files -- is detected *before* bytes reach the
unpickler, and reads as a silent miss, never an exception.  Keeping the
format here, outside any one backend, is what makes artifacts
byte-portable between backends: an envelope written by
:class:`~repro.engine.backends.localdir.LocalDirBackend` is readable
verbatim from a
:class:`~repro.engine.backends.sqlitedb.SQLiteBackend` row.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

__all__ = [
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "HEADER",
    "unwrap_payload",
    "validate_envelope_structure",
    "wrap_payload",
]

#: Magic prefix of every persisted artifact (detects foreign blobs).
ENVELOPE_MAGIC = b"RPRO"

#: Bump on any incompatible change to the persisted representation;
#: entries with another version are silent misses, not unpickle crashes.
ENVELOPE_VERSION = 1

#: Header layout: magic, format version, payload length, SHA-256 digest.
HEADER = struct.Struct(">4sHQ32s")


def wrap_payload(payload: bytes) -> bytes:
    """Wrap pickled bytes in the checksummed envelope."""
    return (
        HEADER.pack(
            ENVELOPE_MAGIC,
            ENVELOPE_VERSION,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        + payload
    )


def unwrap_payload(blob: bytes) -> Optional[bytes]:
    """The payload of an enveloped blob, or ``None`` if damaged.

    Rejects short reads, foreign magic, version skew, truncated or
    over-long payloads, and checksum mismatches -- without relying on
    the unpickler to crash on garbage.
    """
    if len(blob) < HEADER.size:
        return None
    magic, version, length, digest = HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC or version != ENVELOPE_VERSION:
        return None
    payload = blob[HEADER.size :]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


def validate_envelope_structure(blob: bytes) -> bool:
    """Whether *blob* is structurally a sound envelope, version aside.

    The artifact server gates uploads on this check: magic, payload
    length, and checksum must hold so a torn upload cannot poison the
    store -- but the *version* byte is deliberately not compared, so a
    mixed-version fleet can share one server.  Version skew stays the
    reading client's call (:func:`unwrap_payload` treats it as a silent
    miss).
    """
    if len(blob) < HEADER.size:
        return False
    magic, _version, length, digest = HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC:
        return False
    payload = blob[HEADER.size :]
    if len(payload) != length:
        return False
    return hashlib.sha256(payload).digest() == digest
