"""The compiled engine layer: fingerprints, artifacts, sessions.

Everything Update Procedure 3.2.3 needs -- the state space ``LDB(D)``,
per-view strong analyses (Definition 2.2/§2.3), the component algebra
of Theorem 2.3.4, and per-view update procedures -- is derived data.
This package turns those derivations into *compiled, cached, shared
artifacts* behind one facade:

* :mod:`repro.engine.fingerprint` -- stable content hashes keying every
  artifact (the ``fingerprint()`` protocol);
* :mod:`repro.engine.store` -- the content-addressed
  :class:`~repro.engine.store.ArtifactStore` (in-memory LRU,
  single-flight coalescing, dependency-aware invalidation,
  hit/miss/build-time counters) composing a persistence backend;
* :mod:`repro.engine.backends` -- the
  :class:`~repro.engine.backends.ArtifactBackend` protocol and its
  implementations (pickle directory, SQLite database, remote HTTP
  artifact server), selected by
  ``REPRO_STORE_BACKEND``/``REPRO_STORE_URL`` or the legacy
  ``REPRO_CACHE_DIR``;
* :mod:`repro.engine.engine` -- the :class:`~repro.engine.engine.Engine`
  facade and its :class:`~repro.engine.engine.Session` handles, whose
  :meth:`~repro.engine.engine.Session.update` services view updates and
  returns structured :class:`~repro.engine.engine.UpdateOutcome` values.

Submodules other than :mod:`~repro.engine.fingerprint` are loaded
lazily (PEP 562): the fingerprint module is a leaf that the relational
and view layers import, so eagerly importing the engine facade here
would create an import cycle.
"""

from __future__ import annotations

from repro.engine.fingerprint import (
    FingerprintError,
    canonical_token,
    contains_transient,
    dataclass_token,
    is_content_addressed,
    stable_fingerprint,
    transient_token,
)

__all__ = [
    "FingerprintError",
    "canonical_token",
    "contains_transient",
    "dataclass_token",
    "is_content_addressed",
    "stable_fingerprint",
    "transient_token",
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_DIR_ENV_VAR",
    "ArtifactBackend",
    "BackendDegradedWarning",
    "LocalDirBackend",
    "RemoteBackend",
    "SQLiteBackend",
    "STORE_BACKEND_ENV_VAR",
    "STORE_URL_ENV_VAR",
    "create_backend",
    "resolve_backend",
    "Engine",
    "Session",
    "UpdateOutcome",
    "current_engine",
    "default_engine",
    "set_default_engine",
]

_STORE_EXPORTS = {"ArtifactKey", "ArtifactStore", "CACHE_DIR_ENV_VAR"}
_BACKEND_EXPORTS = {
    "ArtifactBackend",
    "BackendDegradedWarning",
    "LocalDirBackend",
    "RemoteBackend",
    "SQLiteBackend",
    "STORE_BACKEND_ENV_VAR",
    "STORE_URL_ENV_VAR",
    "create_backend",
    "resolve_backend",
}
_ENGINE_EXPORTS = {
    "Engine",
    "Session",
    "UpdateOutcome",
    "current_engine",
    "default_engine",
    "set_default_engine",
}


def __getattr__(name: str) -> object:
    if name in _STORE_EXPORTS:
        from repro.engine import store

        return getattr(store, name)
    if name in _BACKEND_EXPORTS:
        from repro.engine import backends

        return getattr(backends, name)
    if name in _ENGINE_EXPORTS:
        from repro.engine import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
