"""Content fingerprints: stable hashes of the engine's cache keys.

Every artifact the engine layer memoizes -- state spaces, posets,
strong analyses, component algebras, update procedures -- is keyed by
the *fingerprints* of the objects it was derived from.  A fingerprint
is the SHA-256 digest of a canonical token tree built from an object's
semantic content, so that two independently constructed but equal
schemas (or assignments, views, ...) share every derived artifact.

Objects participate in one of two regimes:

* **content-addressed** -- the fingerprint is a pure function of the
  object's declarative content (relation schemas, constraints, query
  trees, domain extensions).  Such fingerprints are stable across
  processes, which is what makes the optional on-disk artifact cache
  (``REPRO_CACHE_DIR``) sound.
* **transient** -- objects wrapping arbitrary Python callables (e.g.
  :class:`~repro.views.mappings.FunctionMapping`) cannot be content
  hashed.  They receive a unique per-process token instead: caching
  still works within the process (two *uses* of the same object hit),
  but two *constructions* never collide, and artifacts derived from
  them are never persisted to disk.

This module is a leaf: it imports only the standard library and
:mod:`repro.errors`, so every layer (relational, typealgebra, views)
can adopt the ``fingerprint()`` protocol without import cycles.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import fields, is_dataclass
from typing import Hashable, Mapping

from repro.errors import ReproError

__all__ = [
    "FingerprintError",
    "canonical_token",
    "contains_transient",
    "dataclass_token",
    "stable_fingerprint",
    "transient_token",
    "is_content_addressed",
]


class FingerprintError(ReproError):
    """An object could not be canonically tokenized."""


_TRANSIENT_COUNTER = itertools.count(1)

#: Marker prefix of per-process (non-content-addressed) tokens.
TRANSIENT_PREFIX = "transient"


def transient_token(obj: object) -> str:
    """A unique per-process identity token, memoized on the object.

    Used by objects (arbitrary function mappings) that have no stable
    content hash: equal within the process by identity, never equal
    across processes, and never eligible for the on-disk cache.
    """
    token = getattr(obj, "_transient_token", None)
    if token is None:
        token = (
            f"{TRANSIENT_PREFIX}:{type(obj).__qualname__}:"
            f"{next(_TRANSIENT_COUNTER)}"
        )
        try:
            object.__setattr__(obj, "_transient_token", token)
        except (AttributeError, TypeError):
            raise FingerprintError(
                f"cannot attach a transient token to {type(obj).__name__} "
                "(add a '_transient_token' slot or implement fingerprint())"
            ) from None
    return token


def canonical_token(obj: object) -> Hashable:
    """A deterministic, hashable token tree for *obj*.

    Resolution order: primitives pass through; objects implementing the
    ``fingerprint()`` protocol delegate to it; containers recurse with
    deterministic ordering; dataclasses tokenize their compared fields;
    anything else with a custom (address-free) ``__repr__`` falls back
    to it.  Raises :class:`FingerprintError` for opaque objects.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    fingerprint = getattr(obj, "fingerprint", None)
    if callable(fingerprint) and not isinstance(obj, type):
        return ("#", fingerprint())
    if callable(obj) and not isinstance(obj, type):
        return ("callable", transient_token(obj))
    if isinstance(obj, (tuple, list)):
        return ("seq",) + tuple(canonical_token(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set",) + tuple(
            sorted((canonical_token(item) for item in obj), key=repr)
        )
    if isinstance(obj, Mapping):
        return ("map",) + tuple(
            sorted(
                (
                    (canonical_token(key), canonical_token(value))
                    for key, value in obj.items()
                ),
                key=repr,
            )
        )
    if is_dataclass(obj):
        return dataclass_token(obj)
    if type(obj).__repr__ is not object.__repr__:
        return (type(obj).__qualname__, repr(obj))
    raise FingerprintError(
        f"cannot build a canonical token for {type(obj).__name__!r}; "
        "implement fingerprint() on it"
    )


def dataclass_token(obj: object) -> Hashable:
    """The token of a dataclass instance from its compared fields.

    Exposed separately so that a dataclass *implementing*
    ``fingerprint()`` can build its own digest from its fields without
    :func:`canonical_token` recursing back into the method.
    """
    return (type(obj).__qualname__,) + tuple(
        (field.name, canonical_token(getattr(obj, field.name)))
        for field in fields(obj)
        if field.compare
    )


def stable_fingerprint(*parts: object) -> str:
    """The SHA-256 hex digest of the canonical tokens of *parts*."""
    payload = repr(tuple(canonical_token(part) for part in parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def contains_transient(obj: object) -> bool:
    """True iff *obj*'s canonical token embeds a per-process token.

    Used to decide disk-cache eligibility for objects (e.g. query
    mappings) whose declarative content might smuggle in a raw callable.
    """

    def walk(token: object) -> bool:
        if isinstance(token, str):
            return token.startswith(f"{TRANSIENT_PREFIX}:")
        if isinstance(token, tuple):
            return any(walk(item) for item in token)
        return False

    return walk(canonical_token(obj))


def is_content_addressed(fingerprint_source: object) -> bool:
    """True iff an object's fingerprint is stable across processes.

    Objects advertise via an ``is_content_addressed`` attribute (the
    mapping/view protocol); everything else is assumed content-addressed
    since :func:`canonical_token` only admits declarative content.
    """
    flag = getattr(fingerprint_source, "is_content_addressed", None)
    if flag is None:
        return True
    return bool(flag)
