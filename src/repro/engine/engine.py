"""The engine facade: compiled artifacts and update-servicing sessions.

:class:`Engine` is the single entry point through which the rest of the
library derives expensive structure from declarative inputs:

* :meth:`Engine.space` / :meth:`Engine.space_from` -- the state space
  ``LDB(D, mu)`` (enumerated or generator-built);
* :meth:`Engine.poset` -- its ⊥-poset;
* :meth:`Engine.analysis` -- a view's strong analysis (§2.3);
* :meth:`Engine.preimage_index` -- a view's tabulated inverse;
* :meth:`Engine.algebra` -- the component algebra of Theorem 2.3.4;
* :meth:`Engine.procedure` -- Update Procedure 3.2.3 instances.

Each derivation is memoized in an :class:`~repro.engine.store.ArtifactStore`
keyed by input fingerprints and the active kernel mode, so equal inputs
-- even independently constructed ones -- share one artifact.

:meth:`Engine.session` returns a :class:`Session`: the stateful handle
application code drives (register views, build the algebra, service
updates).  :meth:`Session.update` returns a structured
:class:`UpdateOutcome` instead of steering control flow by exception;
callers that want the legacy raise-on-reject behaviour use
:meth:`UpdateOutcome.require`.

Every derivation runs through the resilience layer:

* a wall-clock deadline / step budget (``Engine(deadline_ms=...)``,
  ``Engine(max_steps=...)``, or the ``REPRO_DEADLINE_MS`` environment
  variable) installs an :class:`~repro.resilience.guard.ExecutionGuard`
  that the hot loops check cooperatively, raising a typed
  :class:`~repro.errors.DeadlineExceededError` instead of hanging;
* an *unexpected* (non-:class:`~repro.errors.ReproError`) crash inside
  a fast-kernel derivation is retried on the next rung down -- the
  degradation ladder bulk -> bitset -> naive -> typed
  :class:`~repro.errors.KernelFailureError` carrying every traceback --
  with each non-final crash counted in the store's per-kind
  ``degradations`` stat;
* a per-derivation :class:`~repro.resilience.breaker.CircuitBreaker`
  watches those outcomes: a derivation that keeps producing kernel
  failures stops being admitted to the ladder and instead fails fast
  with a typed :class:`~repro.errors.CircuitOpenError` (or, in
  pin-naive mode, builds directly on the naive rung), until a
  half-open probe succeeds or :meth:`Engine.reset_breaker` is called;
* :meth:`Session.update` wraps whatever still escapes in
  :class:`~repro.errors.UnexpectedFailureError`, so callers always see
  either a structured outcome or a :class:`~repro.errors.ReproError`.

:meth:`Engine.stats` bundles both vantage points into one snapshot:
``{"artifacts": <namespaced store counters>, "breaker": <circuit
states>}``, each a deep copy safe to mutate or serialize.

A module-level *current engine* (:func:`current_engine`) lets layers
that predate the engine -- scenario constructors, decomposition
generators -- route their state-space construction through whatever
engine the caller activated, without threading a parameter through
every signature.
"""

from __future__ import annotations

import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.components import ComponentAlgebra
from repro.core.procedure import UpdateProcedure, strong_join_complements
from repro.core.strong import StrongViewAnalysis, analyze_view
from repro.engine.backends import ArtifactBackend
from repro.engine.fingerprint import is_content_addressed, stable_fingerprint
from repro.engine.store import ArtifactKey, ArtifactStore
from repro.errors import (
    DeadlineExceededError,
    KernelFailureError,
    ReproError,
    UnexpectedFailureError,
    UpdateRejected,
)
from repro.kernel.config import BITSET, BULK, NAIVE, kernel_mode, use_kernel
from repro.resilience.breaker import PINNED, CircuitBreaker
from repro.resilience.guard import (
    ExecutionGuard,
    current_guard,
    deadline_from_env,
    guarded,
)
from repro.algebra.poset import FinitePoset
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.schema import Schema
from repro.typealgebra.assignment import TypeAssignment
from repro.views.view import View

__all__ = [
    "Engine",
    "Session",
    "UpdateOutcome",
    "current_engine",
    "default_engine",
    "set_default_engine",
]

#: The degradation ladder, fastest rung first.  A derivation starts on
#: the active kernel mode's rung and falls through the rest.
_LADDER: Tuple[str, ...] = (BULK, BITSET, NAIVE)


def _ladder_failure_message(kind: str, rungs: Tuple[str, ...]) -> str:
    """The KernelFailureError message for an exhausted ladder."""
    if rungs == (NAIVE,):
        return (
            f"naive-kernel derivation of {kind!r} failed unexpectedly "
            "(no degradation rung below the naive kernel)"
        )
    if rungs == (BITSET, NAIVE):
        return (
            f"derivation of {kind!r} failed under the bitset kernel "
            "and again under the naive kernel"
        )
    return (
        f"derivation of {kind!r} failed under the bulk kernel, again "
        "under the bitset kernel, and again under the naive kernel"
    )


@dataclass(frozen=True)
class UpdateOutcome:
    """Structured result of one view-update request.

    Replaces bare-exception control flow: a rejection is a value
    carrying the formal reason ("undefined" outcome of Procedure 3.2.3)
    rather than only a raised error, so harness code can tabulate
    outcomes and callers can still opt back into raising via
    :meth:`require`.
    """

    view_name: str
    accepted: bool
    base_before: DatabaseInstance
    view_target: DatabaseInstance
    #: The reflected base state (``None`` when rejected).
    base_after: Optional[DatabaseInstance] = None
    #: Name of the constant strong join complement used.
    complement: Optional[str] = None
    #: Name of the component the target was filtered through.
    filter_component: Optional[str] = None
    #: Machine-readable rejection reason ("" when accepted).
    reason: str = ""
    #: Human-readable account of the rejection ("" when accepted).
    message: str = ""
    #: Admissibility evidence: why the reflection is canonical.
    evidence: Tuple[str, ...] = ()
    #: Wall-clock seconds spent servicing the request.
    elapsed: float = 0.0

    def require(self) -> DatabaseInstance:
        """The new base state; raises :class:`UpdateRejected` if rejected."""
        if not self.accepted or self.base_after is None:
            raise UpdateRejected(
                self.message or f"update of view {self.view_name!r} rejected",
                reason=self.reason,
            )
        return self.base_after


class Engine:
    """Artifact-compiling facade over the paper's machinery."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        max_entries: int = 256,
        cache_dir: Optional[str] = None,
        backend: Optional[ArtifactBackend] = None,
        deadline_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown_ms: Optional[float] = None,
        breaker_mode: Optional[str] = None,
    ) -> None:
        self.store = store or ArtifactStore(
            max_entries=max_entries, cache_dir=cache_dir, backend=backend
        )
        #: Per-derivation wall-clock deadline (``None`` falls back to
        #: ``REPRO_DEADLINE_MS``; unset there means no deadline).
        self.deadline_ms = deadline_ms
        #: Per-derivation cooperative step budget (``None`` = none).
        self.max_steps = max_steps
        #: The derivation circuit breaker; explicit knobs win, then the
        #: ``REPRO_BREAKER_*`` environment variables, then defaults.
        self.breaker = breaker or CircuitBreaker.from_env(
            threshold=breaker_threshold,
            cooldown_ms=breaker_cooldown_ms,
            mode=breaker_mode,
        )

    # -- resilience --------------------------------------------------------------

    def _effective_deadline_ms(self) -> Optional[float]:
        if self.deadline_ms is not None:
            return self.deadline_ms
        return deadline_from_env()

    @contextmanager
    def _guard_scope(self) -> Iterator[None]:
        """Install a fresh guard for one derivation, unless the caller
        already holds one (nested derivations share the outer budget)."""
        if current_guard() is not None:
            yield
            return
        deadline = self._effective_deadline_ms()
        if deadline is None and self.max_steps is None:
            yield
            return
        with guarded(
            ExecutionGuard(deadline_ms=deadline, max_steps=self.max_steps)
        ):
            yield

    def _resilient(
        self, kind: str, fingerprint: str, builder: Callable[[], object]
    ) -> Callable[[], object]:
        """Wrap *builder* in the breaker gate, guard scope, and ladder.

        The circuit breaker is consulted first: an open circuit either
        raises :class:`~repro.errors.CircuitOpenError` immediately
        (fail-fast mode) or routes the build to the pinned naive rung
        (pin-naive mode), skipping the ladder entirely.

        Admitted builds run the ladder from the active kernel mode down:
        bulk -> bitset -> naive.  Typed :class:`ReproError`\\ s pass
        straight through (they are already fail-closed).  An
        *unexpected* exception on a non-final rung triggers one retry on
        the rung below (the kernels are semantically equivalent, so the
        degraded artifact is valid under the original key) and is
        counted in the store's ``degradations`` stat; when the final
        rung also crashes -- or the naive kernel crashed with no rung
        left below it -- a :class:`KernelFailureError` carries every
        traceback out.  The breaker hears about every outcome: clean
        success, degraded success, or kernel failure.
        """

        def build() -> object:
            verdict = self.breaker.admit(kind, fingerprint)
            if verdict == PINNED:
                return self._build_pinned(kind, fingerprint, builder)
            start = kernel_mode()
            rungs = _LADDER[_LADDER.index(start):]
            tracebacks: Dict[str, str] = {}
            with self._guard_scope():
                for position, rung in enumerate(rungs):
                    try:
                        if position == 0:
                            value = builder()
                        else:
                            with use_kernel(rung):
                                value = builder()
                    except DeadlineExceededError:
                        self.store.record_deadline_hit(kind)
                        raise
                    except ReproError:
                        raise
                    except Exception:
                        tracebacks[rung] = traceback.format_exc()
                        if position == len(rungs) - 1:
                            self.breaker.record_failure(kind, fingerprint)
                            raise KernelFailureError(
                                _ladder_failure_message(kind, rungs),
                                kind=kind,
                                bulk_traceback=tracebacks.get(BULK, ""),
                                bitset_traceback=tracebacks.get(BITSET, ""),
                                naive_traceback=tracebacks.get(NAIVE, ""),
                            ) from None
                        self.store.record_degradation(kind)
                        continue
                    if position == 0:
                        self.breaker.record_success(kind, fingerprint)
                    else:
                        self.breaker.record_degraded(kind, fingerprint)
                    return value
                raise ReproError("unreachable: empty kernel ladder")

        return build

    def _build_pinned(
        self, kind: str, fingerprint: str, builder: Callable[[], object]
    ) -> object:
        """Build directly on the naive rung (open circuit, pin-naive).

        The doomed bitset attempt is skipped, so the request is served
        degraded without re-paying the crash; counted under the store's
        ``degradations`` stat like any other naive-served build.  A
        pinned success does *not* close the circuit -- only a half-open
        probe that survives the full ladder does.
        """
        self.store.record_degradation(kind)
        with self._guard_scope():
            try:
                with use_kernel(NAIVE):
                    return builder()
            except DeadlineExceededError:
                self.store.record_deadline_hit(kind)
                raise
            except ReproError:
                raise
            except Exception:
                self.breaker.record_failure(kind, fingerprint)
                raise KernelFailureError(
                    f"pinned naive-kernel derivation of {kind!r} failed "
                    "unexpectedly (circuit open; no rung below the naive "
                    "kernel)",
                    kind=kind,
                    naive_traceback=traceback.format_exc(),
                ) from None

    # -- keys --------------------------------------------------------------------

    @staticmethod
    def _key(kind: str, *parts: object) -> ArtifactKey:
        return ArtifactKey(kind, stable_fingerprint(*parts), kernel_mode())

    @staticmethod
    def _space_key(space: StateSpace) -> ArtifactKey:
        """The canonical key under which a space anchors its dependents."""
        return ArtifactKey("space", space.fingerprint(), kernel_mode())

    # -- state spaces ------------------------------------------------------------

    def space(
        self,
        schema: Schema,
        assignment: TypeAssignment,
        max_candidates: int = 1 << 22,
        prune: bool = True,
    ) -> StateSpace:
        """The enumerated state space ``LDB(D, mu)`` (memoized)."""
        key = self._key(
            "space", "enumerate", schema, assignment, max_candidates, prune
        )
        space = self.store.get_or_build(
            key,
            self._resilient(
                "space",
                key.fingerprint,
                lambda: StateSpace.enumerate(
                    schema, assignment, max_candidates, prune
                ),
            ),
            persist=True,
        )
        return self._anchor_space(space)

    def space_from(self, spec: object, validate: bool = False) -> StateSpace:
        """A generator-built space from a fingerprintable *spec*.

        The spec must implement ``fingerprint()`` and
        ``build_state_space(validate=...)`` (the decomposition schemas'
        closed-form generators).
        """
        key = self._key("space", "spec", spec, validate)
        space = self.store.get_or_build(
            key,
            self._resilient(
                "space",
                key.fingerprint,
                lambda: spec.build_state_space(validate=validate),
            ),
            persist=is_content_addressed(spec),
        )
        return self._anchor_space(space)

    def _anchor_space(self, space: StateSpace) -> StateSpace:
        """Register *space* under its canonical content key.

        Request-level keys (enumeration parameters, generator specs) are
        aliases; derived artifacts always hang off the canonical key so
        that equal spaces reached by different routes share dependents.
        """
        canonical = self._space_key(space)
        return self.store.ensure(canonical, space)

    # -- derived artifacts -------------------------------------------------------

    def poset(self, space: StateSpace) -> FinitePoset:
        """The space's ⊥-poset (memoized across equal spaces)."""
        space_key = self._space_key(space)
        key = ArtifactKey("poset", space_key.fingerprint, space_key.kernel)
        return self.store.get_or_build(
            key,
            self._resilient("poset", key.fingerprint, lambda: space.poset),
            dependencies=(space_key,),
        )

    def analysis(self, view: View, space: StateSpace) -> StrongViewAnalysis:
        """The view's strong analysis over *space* (Definition 2.2/§2.3)."""
        key = self._key("analysis", view, space)
        return self.store.get_or_build(
            key,
            self._resilient(
                "analysis",
                key.fingerprint,
                lambda: analyze_view(view, space),
            ),
            dependencies=(self._space_key(space),),
            persist=is_content_addressed(view),
        )

    def preimage_index(
        self, view: View, space: StateSpace
    ) -> Dict[DatabaseInstance, Tuple[DatabaseInstance, ...]]:
        """The view's full fibre index over *space* (memoized)."""
        key = self._key("preimages", view, space)
        return self.store.get_or_build(
            key,
            self._resilient(
                "preimages",
                key.fingerprint,
                lambda: view.preimage_index(space),
            ),
            dependencies=(self._space_key(space),),
            persist=is_content_addressed(view),
        )

    def algebra(
        self, space: StateSpace, candidates: Iterable[View]
    ) -> ComponentAlgebra:
        """The component algebra discovered from *candidates* (memoized)."""
        candidates = tuple(candidates)
        key = self._key(
            "algebra", space, tuple(v.fingerprint() for v in candidates)
        )
        persist = all(is_content_addressed(v) for v in candidates)
        return self.store.get_or_build(
            key,
            self._resilient(
                "algebra",
                key.fingerprint,
                lambda: ComponentAlgebra.discover(space, candidates),
            ),
            dependencies=(self._space_key(space),),
            persist=persist,
        )

    def procedure(
        self, view: View, algebra: ComponentAlgebra
    ) -> UpdateProcedure:
        """Update Procedure 3.2.3 for *view*, using the smallest strong
        join complement in *algebra* (canonical per Theorem 3.2.2)."""
        space = algebra.space
        member_fingerprints = tuple(
            component.view.fingerprint() for component in algebra
        )
        key = self._key("procedure", view, space, member_fingerprints)

        def build() -> UpdateProcedure:
            complements = strong_join_complements(view, algebra)
            if not complements:
                raise ReproError(
                    f"view {view.name!r} has no strong join complement in "
                    "the component algebra; register more candidates"
                )
            return UpdateProcedure(view, complements[0], space)

        persist = is_content_addressed(view) and all(
            is_content_addressed(component.view) for component in algebra
        )
        return self.store.get_or_build(
            key,
            self._resilient("procedure", key.fingerprint, build),
            dependencies=(self._space_key(space),),
            persist=persist,
        )

    # -- invalidation ------------------------------------------------------------

    def invalidate_space(self, space: StateSpace) -> int:
        """Drop the space's canonical artifact and everything derived
        from it; returns the number of artifacts dropped."""
        return self.store.invalidate(self._space_key(space))

    # -- sessions ----------------------------------------------------------------

    def session(
        self,
        schema: Schema,
        assignment: TypeAssignment,
        space: Optional[StateSpace] = None,
    ) -> "Session":
        """A stateful update-servicing handle bound to this engine."""
        return Session(self, schema, assignment, space)

    # -- bookkeeping -------------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, object]]:
        """One deep-copied snapshot of the engine's health.

        ``stats()["artifacts"]`` holds the store's namespaced cache
        counters (``memory`` / ``backend`` / ``leases``, see
        :meth:`ArtifactStore.stats`); ``stats()["breaker"]``
        holds the circuit breaker's per-derivation states.  Both are
        copies -- mutating the result cannot corrupt live bookkeeping,
        and concurrent readers get internally consistent views.
        """
        return {
            "artifacts": self.store.stats(),
            "breaker": self.breaker.snapshot(),
        }

    def health(self) -> Dict[str, object]:
        """A cheap liveness summary for hot serving endpoints.

        :meth:`stats` deep-copies every artifact counter -- right for an
        operator dashboard, wrong for a health probe hit on every poll.
        This reports only the scalars the serving tier needs: the
        breaker mode, how many circuits are open, and the soonest
        retry hint.  Cost is O(tracked circuits), independent of how
        many artifacts the store holds.
        """
        snapshot = self.breaker.snapshot()
        return {
            "breaker_mode": self.breaker.mode,
            "open_circuits": snapshot["open"],
            "retry_hint_ms": self.breaker.retry_hint_ms(),
        }

    def reset_breaker(
        self, kind: Optional[str] = None, fingerprint: Optional[str] = None
    ) -> int:
        """Close circuits after an operator fix; returns how many.

        ``reset_breaker()`` forgets every tracked derivation;
        narrowing by *kind* (and optionally *fingerprint*) clears just
        those.  The next request runs the full ladder again.
        """
        return self.breaker.reset(kind, fingerprint)

    @contextmanager
    def activate(self) -> Iterator["Engine"]:
        """Make this engine the :func:`current_engine` within the block."""
        _ACTIVE_ENGINES.append(self)
        try:
            yield self
        finally:
            _ACTIVE_ENGINES.pop()


class Session:
    """One update-servicing session over a fixed ``(D, mu)``.

    The null model property -- the standing precondition of every
    Section 3 result -- is checked *before* any state-space work, so an
    inapplicable schema fails fast instead of after an exponential
    enumeration.
    """

    def __init__(
        self,
        engine: Engine,
        schema: Schema,
        assignment: TypeAssignment,
        space: Optional[StateSpace] = None,
    ) -> None:
        if not schema.has_null_model_property(assignment):
            raise ReproError(
                f"schema {schema.name!r} lacks the null model property; "
                "the results of Section 3 do not apply"
            )
        self.engine = engine
        self.schema = schema
        self.assignment = assignment
        self._space = space
        self._views: Dict[str, View] = {}
        self._algebra: Optional[ComponentAlgebra] = None

    # -- the state space (built lazily through the engine) -----------------------

    @property
    def space(self) -> StateSpace:
        if self._space is None:
            self._space = self.engine.space(self.schema, self.assignment)
        return self._space

    # -- registration ------------------------------------------------------------

    def register_view(self, view: View) -> View:
        """Register a user view; returns it for chaining."""
        if (
            view.base_schema is not self.schema
            and view.base_schema != self.schema
        ):
            raise ReproError(
                f"view {view.name!r} is over a different base schema"
            )
        self._views[view.name] = view
        return view

    def view(self, name: str) -> View:
        """Look up a registered view."""
        try:
            return self._views[name]
        except KeyError:
            raise ReproError(
                f"no view named {name!r}; have {sorted(self._views)}"
            ) from None

    @property
    def views(self) -> Tuple[View, ...]:
        """All registered views."""
        return tuple(self._views.values())

    # -- component algebra -------------------------------------------------------

    def build_component_algebra(
        self, candidates: Iterable[View] = ()
    ) -> ComponentAlgebra:
        """Discover the component algebra from candidate views.

        Registered views are automatically included as candidates.
        """
        all_candidates = tuple(candidates) + tuple(self._views.values())
        self._algebra = self.engine.algebra(self.space, all_candidates)
        return self._algebra

    @property
    def component_algebra(self) -> ComponentAlgebra:
        """The discovered algebra; raises if not built yet."""
        if self._algebra is None:
            raise ReproError(
                "component algebra not built; call build_component_algebra()"
            )
        return self._algebra

    # -- update servicing --------------------------------------------------------

    def procedure_for(self, view_name: str) -> UpdateProcedure:
        """The canonical update procedure for a registered view."""
        return self.engine.procedure(
            self.view(view_name), self.component_algebra
        )

    def update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
    ) -> UpdateOutcome:
        """Service one view-update request (Procedure 3.2.3).

        Never raises for the formal "undefined" outcome; inspect
        :attr:`UpdateOutcome.accepted` / :attr:`UpdateOutcome.reason`,
        or call :meth:`UpdateOutcome.require` for the legacy behaviour.
        Configuration errors (unknown view, no complement) still raise
        -- always as :class:`ReproError` subclasses: anything
        unexpected that escapes the engine's degradation ladder is
        wrapped in :class:`UnexpectedFailureError` (fail closed, never
        a bare ``KeyError``/``AttributeError``).
        """
        started = time.perf_counter()
        try:
            return self._update(view_name, base_state, view_target, started)
        except ReproError:
            raise
        except Exception as exc:
            raise UnexpectedFailureError(
                f"internal failure servicing an update of view "
                f"{view_name!r}: {type(exc).__name__}: {exc}"
            ) from exc

    def _update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
        started: float,
    ) -> UpdateOutcome:
        if base_state not in self.space:
            return UpdateOutcome(
                view_name=view_name,
                accepted=False,
                base_before=base_state,
                view_target=view_target,
                reason="illegal-base-state",
                message="current base state is not a legal database",
                elapsed=time.perf_counter() - started,
            )
        procedure = self.procedure_for(view_name)
        complement = procedure.complement.name
        filter_component = procedure.filter_component.name
        try:
            solution = procedure.apply(base_state, view_target)
        except UpdateRejected as exc:
            return UpdateOutcome(
                view_name=view_name,
                accepted=False,
                base_before=base_state,
                view_target=view_target,
                complement=complement,
                filter_component=filter_component,
                reason=exc.reason,
                message=str(exc),
                elapsed=time.perf_counter() - started,
            )
        evidence = (
            f"constant complement: {complement!r} held fixed",
            f"target filtered through component {filter_component!r}",
            "reflection is complement-independent and admissible "
            "(Theorem 3.2.2)",
        )
        return UpdateOutcome(
            view_name=view_name,
            accepted=True,
            base_before=base_state,
            view_target=view_target,
            base_after=solution,
            complement=complement,
            filter_component=filter_component,
            evidence=evidence,
            elapsed=time.perf_counter() - started,
        )


# -- the current-engine protocol ---------------------------------------------------

_DEFAULT_ENGINE: Optional[Engine] = None
_ACTIVE_ENGINES: List[Engine] = []


def default_engine() -> Engine:
    """The process-wide fallback engine (created on first use)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> None:
    """Replace the process-wide fallback engine (``None`` resets it)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def current_engine() -> Engine:
    """The innermost :meth:`Engine.activate`\\ d engine, else the default."""
    if _ACTIVE_ENGINES:
        return _ACTIVE_ENGINES[-1]
    return default_engine()
