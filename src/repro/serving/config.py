"""Environment knobs for the async update server.

Each knob follows the repository convention: an explicit constructor
argument wins, then the environment variable, then the default -- and a
*malformed* environment value raises eagerly (a typo'd capacity must
not silently mean "default capacity").
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "DEFAULT_DRAIN_MS",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_QUEUE_DEPTH",
    "SERVER_DEADLINE_ENV_VAR",
    "SERVER_DRAIN_ENV_VAR",
    "SERVER_MAX_INFLIGHT_ENV_VAR",
    "SERVER_QUEUE_DEPTH_ENV_VAR",
    "server_deadline_ms",
    "server_drain_ms",
    "server_max_inflight",
    "server_queue_depth",
]

#: Size of the concurrency token bucket: how many update executions may
#: run on the worker pool at once.
SERVER_MAX_INFLIGHT_ENV_VAR = "REPRO_SERVER_MAX_INFLIGHT"
#: Bound of each per-priority admission queue.
SERVER_QUEUE_DEPTH_ENV_VAR = "REPRO_SERVER_QUEUE_DEPTH"
#: Wall-clock budget for the graceful drain after SIGTERM.
SERVER_DRAIN_ENV_VAR = "REPRO_SERVER_DRAIN_MS"
#: Default per-request deadline applied when a request names none.
SERVER_DEADLINE_ENV_VAR = "REPRO_SERVER_DEADLINE_MS"

DEFAULT_MAX_INFLIGHT = 4
DEFAULT_QUEUE_DEPTH = 16
DEFAULT_DRAIN_MS = 5_000.0


def _positive_int(raw: str, name: str) -> int:
    value = int(raw)
    if value < 1:
        # reprolint: disable=RL001 -- eager validation of an operator knob, same contract as int() raising on garbage
        raise ValueError(f"{name} must be a positive integer, got {raw!r}")
    return value


def server_max_inflight(explicit: Optional[int] = None) -> int:
    """The concurrency token count (explicit > env > default)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(SERVER_MAX_INFLIGHT_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_MAX_INFLIGHT
    return _positive_int(raw, SERVER_MAX_INFLIGHT_ENV_VAR)


def server_queue_depth(explicit: Optional[int] = None) -> int:
    """The per-priority admission-queue bound (explicit > env > default)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(SERVER_QUEUE_DEPTH_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_QUEUE_DEPTH
    return _positive_int(raw, SERVER_QUEUE_DEPTH_ENV_VAR)


def server_drain_ms(explicit: Optional[float] = None) -> float:
    """The graceful-drain deadline in ms (explicit > env > default)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(SERVER_DRAIN_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_DRAIN_MS
    return float(raw)


def server_deadline_ms(explicit: Optional[float] = None) -> Optional[float]:
    """The default per-request deadline in ms (``None`` = none)."""
    if explicit is not None:
        return explicit
    raw = os.environ.get(SERVER_DEADLINE_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    return float(raw)
