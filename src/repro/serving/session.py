"""Asyncio-friendly update servicing over a synchronous ``Session``.

The engine's derivations are CPU-bound, cooperative-cancellation
Python: they belong on worker threads, not on the event loop.
:class:`AsyncSession` wraps one :class:`~repro.engine.engine.Session`
and runs every potentially-expensive step -- compiling the state space
and algebra, servicing an update -- on a bounded
:class:`~concurrent.futures.ThreadPoolExecutor`, so the loop stays
responsive enough to keep answering ``/healthz`` and shedding load
while a cold compile is in progress.

Deadlines still fire because they are *cooperative*: the worker thread
installs an :class:`~repro.resilience.guard.ExecutionGuard` scoped to
the request's remaining budget, and the kernel hot loops tick it
exactly as they do in synchronous use (the engine's own guard scope
joins an installed guard rather than replacing it).  Queue wait counts
against the budget: the caller passes the *remaining* milliseconds, and
a request whose budget was consumed waiting is failed typed without
occupying the executor at all.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, Optional

from repro.engine.engine import Engine, Session, UpdateOutcome
from repro.errors import DeadlineExceededError, ServingError
from repro.relational.instances import DatabaseInstance
from repro.relational.schema import Schema
from repro.resilience.guard import ExecutionGuard, guarded
from repro.serving.config import server_max_inflight
from repro.typealgebra.assignment import TypeAssignment
from repro.views.view import View

__all__ = ["AsyncSession"]


class AsyncSession:
    """One served ``(D, mu)`` session, driven from an event loop."""

    def __init__(
        self,
        engine: Engine,
        schema: Schema,
        assignment: TypeAssignment,
        space_source: Optional[object] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.schema = schema
        self.assignment = assignment
        #: Fingerprintable generator spec handed to ``Engine.space_from``
        #: during warm-up.  ``None`` falls back to enumeration, which is
        #: only feasible for small universes -- the decomposition
        #: schemas' closed-form generators are the serving-scale path.
        self._space_source = space_source
        self._session: Optional[Session] = None
        self._executor = ThreadPoolExecutor(
            max_workers=server_max_inflight(max_workers),
            thread_name_prefix="repro-serving",
        )

    @property
    def session(self) -> Session:
        """The wrapped synchronous session (tests and embedders)."""
        if self._session is None:
            raise ServingError(
                "AsyncSession has not been warmed up; call warmup()"
                " before servicing requests"
            )
        return self._session

    async def _off_loop(
        self, func: Callable[..., object], /, *args: object
    ) -> object:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, func, *args)

    # -- warmup ----------------------------------------------------------------

    async def warmup(
        self,
        views: Iterable[View],
        candidates: Iterable[View] = (),
    ) -> None:
        """Compile space + algebra + procedures; bind the session.

        Everything expensive happens off-loop; after a warm-up the
        per-request path is a cache hit plus one ``procedure.apply``.
        The state space comes from the spec's closed-form generator
        when one was given (``Engine.space_from``) -- enumeration is
        infeasible at serving scale.
        """
        views = tuple(views)
        candidates = tuple(candidates)

        def build() -> None:
            space = (
                self.engine.space_from(self._space_source)
                if self._space_source is not None
                else None
            )
            session = self.engine.session(
                self.schema, self.assignment, space
            )
            for view in views:
                session.register_view(view)
            session.build_component_algebra(candidates)
            for view in views:
                session.procedure_for(view.name)
            self._session = session

        await self._off_loop(build)

    # -- update servicing ------------------------------------------------------

    async def update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
        deadline_ms: Optional[float] = None,
    ) -> UpdateOutcome:
        """Service one update off-loop, under a per-request guard.

        *deadline_ms* is the request's **remaining** budget; a
        non-positive value fails typed immediately -- the budget was
        burned in the queue, so occupying a worker would only make the
        overload worse.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise DeadlineExceededError(
                f"request deadline expired before execution began"
                f" (view {view_name!r} waited out its budget in the"
                " admission queue)",
                elapsed_ms=0.0,
                deadline_ms=deadline_ms,
            )
        outcome = await self._off_loop(
            self._guarded_update,
            view_name,
            base_state,
            view_target,
            deadline_ms,
        )
        return outcome  # type: ignore[return-value]

    def _guarded_update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
        deadline_ms: Optional[float],
    ) -> UpdateOutcome:
        """Executor-thread body: install the guard, run the update."""
        if deadline_ms is None:
            return self.session.update(view_name, base_state, view_target)
        with guarded(ExecutionGuard(deadline_ms=deadline_ms)):
            return self.session.update(view_name, base_state, view_target)

    # -- introspection ---------------------------------------------------------

    async def stats(self) -> Dict[str, Dict[str, object]]:
        """The engine's full stats snapshot, taken off-loop.

        The snapshot itself is lock-cheap (the store never holds its
        lock across builds), but it deep-copies every counter dict, so
        a busy ``/stats`` endpoint still stays off the event loop.
        """
        snapshot = await self._off_loop(self.engine.stats)
        return snapshot  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the executor down, finishing queued work first.

        Blocking; for synchronous embedders and tests.  On the event
        loop use :meth:`aclose` instead -- ``shutdown(wait=True)``
        parks the calling thread until every queued build finishes,
        and a parked loop thread can answer nothing, not even
        ``/healthz``.
        """
        self._executor.shutdown(wait=True)

    async def aclose(self) -> None:
        """Shut the executor down without blocking the event loop.

        The wait happens on a default-executor thread (not this
        session's own executor: a pool cannot run the job that waits
        for that same pool to drain), so in-flight builds still finish
        while the loop keeps serving health checks and shed responses.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self._executor.shutdown(wait=True)
        )
