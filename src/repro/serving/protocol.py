"""The JSON wire protocol of the update server.

One request shape, one outcome shape, both deliberately boring:

* a database instance travels as ``{relation: [[value, ...], ...]}``
  with the paper's null ``eta`` spelled as JSON ``null`` (the
  :data:`~repro.typealgebra.algebra.NULL` singleton round-trips);
* an update request names a view, the current base state, the target
  view state, and optionally a ``priority`` (``high``/``normal``/
  ``low``), a per-request ``deadline_ms``, and ``wait`` (respond with
  the final outcome instead of a ticket id);
* an :class:`~repro.engine.engine.UpdateOutcome` travels with its
  verdict, reason, evidence, and the reflected base state.

Every parse failure raises a typed
:class:`~repro.errors.RequestProtocolError` (HTTP 400), never a bare
``KeyError`` -- the server's fail-closed contract starts at the socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import UpdateOutcome
from repro.errors import RequestProtocolError
from repro.relational.instances import DatabaseInstance
from repro.typealgebra.algebra import NULL

__all__ = [
    "PRIORITIES",
    "UpdateRequest",
    "instance_from_wire",
    "instance_to_wire",
    "outcome_to_wire",
    "parse_update_request",
    "request_to_wire",
]

#: Admission priorities, highest first (the order workers drain them).
PRIORITIES: Tuple[str, ...] = ("high", "normal", "low")

WireInstance = Dict[str, List[List[Optional[str]]]]


def instance_to_wire(instance: DatabaseInstance) -> WireInstance:
    """*instance* as JSON-ready data (``NULL`` becomes ``null``).

    Rows are sorted (nulls first, then by value) so equal instances
    serialize identically -- handy for tests and cache-key-free diffing
    on the client side.
    """
    wire: WireInstance = {}
    for name, relation in instance.items():
        rows = [
            [None if value is NULL else str(value) for value in row]
            for row in relation.rows
        ]
        rows.sort(key=lambda row: [(v is not None, v or "") for v in row])
        wire[name] = rows
    return wire


def instance_from_wire(data: object) -> DatabaseInstance:
    """A :class:`DatabaseInstance` from wire data (``null`` -> ``NULL``)."""
    if not isinstance(data, dict):
        raise RequestProtocolError(
            f"instance must be an object mapping relation names to row"
            f" lists, got {type(data).__name__}"
        )
    relations: Dict[str, List[Tuple[object, ...]]] = {}
    for name, rows in data.items():
        if not isinstance(name, str) or not isinstance(rows, list):
            raise RequestProtocolError(
                "instance relations must map string names to row lists"
            )
        decoded: List[Tuple[object, ...]] = []
        for row in rows:
            if not isinstance(row, (list, tuple)):
                raise RequestProtocolError(
                    f"rows of relation {name!r} must be lists, got"
                    f" {type(row).__name__}"
                )
            decoded.append(
                tuple(NULL if value is None else value for value in row)
            )
        relations[name] = decoded
    try:
        return DatabaseInstance(relations)
    except Exception as exc:
        raise RequestProtocolError(
            f"instance is not well-formed: {type(exc).__name__}: {exc}"
        ) from exc


@dataclass(frozen=True)
class UpdateRequest:
    """One parsed ``submit-update`` request."""

    view: str
    base: DatabaseInstance
    target: DatabaseInstance
    priority: str = "normal"
    #: Per-request deadline; ``None`` falls back to the server default.
    deadline_ms: Optional[float] = None
    #: Respond with the final outcome instead of a ticket id.
    wait: bool = False


def parse_update_request(body: bytes) -> UpdateRequest:
    """Parse a ``submit-update`` JSON body (fail closed on any damage)."""
    try:
        data = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestProtocolError(f"request body is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise RequestProtocolError("request body must be a JSON object")
    view = data.get("view")
    if not isinstance(view, str) or not view:
        raise RequestProtocolError("request must name a 'view' (string)")
    for field in ("base", "target"):
        if field not in data:
            raise RequestProtocolError(f"request is missing {field!r}")
    priority = data.get("priority", "normal")
    if priority not in PRIORITIES:
        raise RequestProtocolError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}"
        )
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise RequestProtocolError(
                "deadline_ms must be a positive number"
            )
        deadline_ms = float(deadline_ms)
    wait = data.get("wait", False)
    if not isinstance(wait, bool):
        raise RequestProtocolError("wait must be a boolean")
    return UpdateRequest(
        view=view,
        base=instance_from_wire(data["base"]),
        target=instance_from_wire(data["target"]),
        priority=priority,
        deadline_ms=deadline_ms,
        wait=wait,
    )


def request_to_wire(request: UpdateRequest) -> Dict[str, object]:
    """*request* as JSON-ready data (inverse of
    :func:`parse_update_request`); what clients put on the wire."""
    wire: Dict[str, object] = {
        "view": request.view,
        "base": instance_to_wire(request.base),
        "target": instance_to_wire(request.target),
        "priority": request.priority,
        "wait": request.wait,
    }
    if request.deadline_ms is not None:
        wire["deadline_ms"] = request.deadline_ms
    return wire


def outcome_to_wire(outcome: UpdateOutcome) -> Dict[str, object]:
    """An :class:`UpdateOutcome` as JSON-ready data."""
    wire: Dict[str, object] = {
        "view": outcome.view_name,
        "accepted": outcome.accepted,
        "reason": outcome.reason,
        "message": outcome.message,
        "complement": outcome.complement,
        "filter_component": outcome.filter_component,
        "evidence": list(outcome.evidence),
        "elapsed_ms": round(outcome.elapsed * 1e3, 3),
    }
    if outcome.base_after is not None:
        wire["base_after"] = instance_to_wire(outcome.base_after)
    return wire
