"""Warm-starting a server from a sibling process's compiled build.

The two-process story from PR 7's example, hardened into library code:
fork a *builder* process that compiles the default service's state
space into a shared SQLite artifact store, wait for it, and verify it
actually published something.  A builder that dies first -- crash,
kill, timeout, or a clean exit that left no store behind -- surfaces as
a typed :class:`~repro.errors.WarmStartError` instead of a traceback,
so wrappers can *choose* between aborting and deliberately falling
back to a cold start.

Used by ``examples/update_service.py --two-process-demo`` and as the
serving tier's warm-start path (``python -m repro.serving
--warm-url=...`` and the cold-vs-warm rows of ``bench_s8_serving``).
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

from repro.engine.backends import SQLiteBackend
from repro.engine.engine import Engine
from repro.errors import WarmStartError

__all__ = ["sibling_warm_start"]


def _sibling_build(url: str) -> None:
    """Builder-process body: compile the space into the shared store.

    The backend is constructed *inside* this process -- SQLite
    connections are not fork-safe by contract.
    """
    from repro.serving.service import chain_service

    spec = chain_service()
    engine = Engine(backend=SQLiteBackend(url))
    # Compiling via the closed-form generator persists the space under
    # the exact artifact key the server's own warm-up will request.
    engine.space_from(spec.space_source)


def sibling_warm_start(url: str, timeout_s: float = 120.0) -> None:
    """Compile the default service's space into *url* via a sibling.

    Raises :class:`WarmStartError` -- never a bare traceback -- when
    the sibling dies before publishing: nonzero/signal exit, timeout
    (the straggler is terminated first), or a clean exit that left no
    artifact database behind.
    """
    process = multiprocessing.get_context().Process(
        target=_sibling_build, args=(url,)
    )
    process.start()
    process.join(timeout_s)
    if process.is_alive():
        process.terminate()
        process.join(5)
        raise WarmStartError(
            f"sibling build exceeded its {timeout_s:g}s budget and was"
            " terminated before publishing its build"
        )
    if process.exitcode != 0:
        raise WarmStartError(
            "sibling build process died before publishing its build"
            f" (exit code {process.exitcode})"
        )
    if not Path(url).exists():
        raise WarmStartError(
            "sibling build exited cleanly but published no artifact"
            f" database at {url!r}"
        )
