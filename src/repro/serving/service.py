"""What the server serves: a schema, its views, and sample traffic.

A :class:`ServiceSpec` bundles everything the server needs to stand up
one update-servicing session -- the base schema and type assignment,
the user views to register, the candidate views the component algebra
is discovered from -- plus a tuple of *sample requests* the load
generator, the CI smoke, and the benchmarks replay against it.

:func:`chain_service` is the default: the paper's ABCD chain universe
(Example 2.1.1 / 3.2.4 family, ``abcd_chain_small``) with the two
component views and the lossy ``Γ_ABD`` projection of the worked
examples.  Its sample traffic mixes accepted updates with a request the
procedure formally rejects, so end-to-end runs exercise both verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.decomposition.projections import projection_view
from repro.relational.schema import Schema
from repro.serving.protocol import UpdateRequest
from repro.typealgebra.algebra import NULL
from repro.typealgebra.assignment import TypeAssignment
from repro.views.view import View
from repro.workloads.scenarios import abcd_chain_small

__all__ = ["ServiceSpec", "chain_service"]


@dataclass(frozen=True)
class ServiceSpec:
    """One complete serving definition (see module docstring)."""

    name: str
    schema: Schema
    assignment: TypeAssignment
    #: Fingerprintable generator spec for the state space (what
    #: ``Engine.space_from`` accepts); ``None`` enumerates instead.
    space_source: object
    #: Views clients may address in update requests.
    views: Tuple[View, ...]
    #: Extra candidates for component-algebra discovery.
    candidates: Tuple[View, ...]
    #: Replayable requests for load generation and smoke tests.
    sample_requests: Tuple[UpdateRequest, ...]


def chain_service() -> ServiceSpec:
    """The default served universe: the small ABCD chain.

    Sample traffic (all against one fixed base state, so requests are
    independently replayable in any order, any number of times):

    * ``Γ°AB``: drop ``(a2, b1)`` -- accepted;
    * ``Γ°BCD``: connect ``c2`` to ``d1`` -- accepted;
    * ``Γ_ABD``: drop ``(n, n, d1)`` -- formally rejected (the target
      is entangled with the AB chain; Procedure 3.2.3 is undefined).
    """
    chain = abcd_chain_small()
    views = (
        chain.component_view([0]),
        chain.component_view([1, 2]),
        projection_view(chain, ("A", "B", "D")),
    )
    base = chain.state_from_edges(
        [{("a1", "b1"), ("a2", "b1")}, {("b1", "c1")}, {("c1", "d1")}]
    )
    edits = (
        (views[0], lambda now: now.deleting("R_AB", ("a2", "b1")), "high"),
        (
            views[1],
            lambda now: now.inserting("R_BCD", (NULL, "c2", "d1")),
            "normal",
        ),
        (
            views[2],
            lambda now: now.deleting("R_ABD", (NULL, NULL, "d1")),
            "low",
        ),
    )
    requests = tuple(
        UpdateRequest(
            view=view.name,
            base=base,
            target=edit(view.apply(base, chain.assignment)),
            priority=priority,
        )
        for view, edit, priority in edits
    )
    return ServiceSpec(
        name="abcd-chain-small",
        schema=chain.schema,
        assignment=chain.assignment,
        space_source=chain,
        views=views,
        candidates=chain.all_component_views(),
        sample_requests=requests,
    )
