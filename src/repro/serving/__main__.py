"""``python -m repro.serving``: run the async update server.

Serves the default chain service until SIGTERM/SIGINT, then drains
gracefully and prints the drain report as JSON.  The first stdout line
is a JSON readiness record carrying the bound port (``--port=0`` asks
the OS for a free one), so wrappers and benchmarks can connect without
racing::

    {"serving": true, "host": "127.0.0.1", "port": 40321, ...}

``--warm-url=PATH`` warm-starts from a sibling builder process first:
the sibling compiles the state space into a shared SQLite artifact
store at PATH, and the server opens the same store, so its own warm-up
is a cache hit.  A sibling that dies before publishing exits this
process with a typed message and status 3 -- never a traceback.

Exit status: 0 after a graceful drain, 1 when the drain deadline
expired with work still running, 2 for bad usage, 3 for a failed
warm start.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.engine.backends import SQLiteBackend
from repro.engine.engine import Engine
from repro.errors import WarmStartError
from repro.serving.server import UpdateServer
from repro.serving.service import chain_service
from repro.serving.warmstart import sibling_warm_start

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve view updates over HTTP with admission"
        " control and graceful drain.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="concurrency tokens (default: REPRO_SERVER_MAX_INFLIGHT)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="per-priority queue bound (default: REPRO_SERVER_QUEUE_DEPTH)",
    )
    parser.add_argument(
        "--drain-ms",
        type=float,
        default=None,
        help="graceful-drain budget (default: REPRO_SERVER_DRAIN_MS)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (default:"
        " REPRO_SERVER_DEADLINE_MS)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="open a SQLite artifact store at PATH (persistent cache)",
    )
    parser.add_argument(
        "--warm-url",
        default=None,
        metavar="PATH",
        help="warm-start: a sibling process compiles into PATH first,"
        " then the server opens the same store",
    )
    return parser


async def _serve(args: argparse.Namespace, engine: Optional[Engine]) -> int:
    server = UpdateServer(
        chain_service(),
        engine=engine,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        drain_ms=args.drain_ms,
        deadline_ms=args.deadline_ms,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, server.request_drain)
    print(
        json.dumps(
            {
                "serving": True,
                "host": server.host,
                "port": server.port,
                "service": server.spec.name,
                "max_inflight": server.max_inflight,
                "queue_depth": server.queue_depth,
            }
        ),
        flush=True,
    )
    await server.drain_requested()
    report = await server.drain()
    await server.stop()
    print(json.dumps({"drain": report}), flush=True)
    return 0 if report["graceful"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    store_url = args.store or args.warm_url
    if args.warm_url is not None:
        try:
            sibling_warm_start(args.warm_url)
        except WarmStartError as exc:
            print(f"warm start failed: {exc}", file=sys.stderr)
            return 3
    engine = (
        Engine(backend=SQLiteBackend(store_url))
        if store_url is not None
        else None
    )
    return asyncio.run(_serve(args, engine))


if __name__ == "__main__":
    sys.exit(main())
