"""Async update serving: admission control over the paper's engine.

The serving tier turns one :class:`~repro.engine.engine.Session` into
a small, honest network service.  "Honest" is the design goal: under
overload it sheds typed 503s from bounded queues instead of queueing
without bound; past a deadline it fails 504 instead of running on;
behind an open circuit it refuses (or degrades) instead of queueing
doomed work; and on SIGTERM it drains -- finishing what it admitted --
and reports exactly what, if anything, it dropped.

Entry points:

* ``python -m repro.serving`` -- run the server on the default chain
  service (:func:`~repro.serving.service.chain_service`);
* :class:`~repro.serving.server.UpdateServer` -- embed it;
* :class:`~repro.serving.client.ServingClient` /
  :func:`~repro.serving.client.run_load` -- talk to it / stress it;
* :func:`~repro.serving.warmstart.sibling_warm_start` -- pre-compile
  the artifacts in a sibling process for warm cold-starts.
"""

from repro.serving.admission import AdmissionController, Ticket
from repro.serving.client import LoadReport, ServingClient, run_load
from repro.serving.protocol import (
    UpdateRequest,
    instance_from_wire,
    instance_to_wire,
    outcome_to_wire,
    parse_update_request,
    request_to_wire,
)
from repro.serving.server import UpdateServer
from repro.serving.service import ServiceSpec, chain_service
from repro.serving.session import AsyncSession
from repro.serving.warmstart import sibling_warm_start

__all__ = [
    "AdmissionController",
    "AsyncSession",
    "LoadReport",
    "ServiceSpec",
    "ServingClient",
    "Ticket",
    "UpdateRequest",
    "UpdateServer",
    "chain_service",
    "instance_from_wire",
    "instance_to_wire",
    "outcome_to_wire",
    "parse_update_request",
    "request_to_wire",
    "run_load",
    "sibling_warm_start",
]
