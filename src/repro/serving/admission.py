"""Admission control: bounded queues, tokens, shed-don't-wedge.

The serving tier's overload contract lives here.  An
:class:`AdmissionController` sits in front of the worker pool and
decides, for every request, one of three fates *before* any expensive
work happens:

* **admit** -- a ticket enters one of three bounded priority queues
  (``high`` > ``normal`` > ``low``; workers always drain the highest
  non-empty queue first);
* **shed** -- the target queue is full, or the server is draining:
  a typed :class:`~repro.errors.ServerOverloadedError` /
  :class:`~repro.errors.ServerDrainingError` carries a ``Retry-After``
  hint derived from the observed service-time EWMA, so the refusal is
  cheap for the server and actionable for the client;
* **degrade** -- the engine's circuit breaker reports open circuits:
  in *fail-fast* mode the request is shed immediately (queueing it
  would only delay the same typed failure); in *pin-naive* mode it is
  admitted normally, because the engine will serve it degraded on the
  naive kernel rather than fail it.

Concurrency is bounded by a token bucket of ``max_inflight`` tokens
(:data:`~repro.serving.config.SERVER_MAX_INFLIGHT_ENV_VAR`): the server
runs exactly one worker task per token, so at most ``max_inflight``
updates occupy the executor at once and everything else waits in the
bounded queues -- queue depth, not memory growth, is the only backlog.

The controller is **asyncio-native and single-threaded by design**:
every method must be called on the event loop, which is the only
mutator, so there are no locks to get wrong.  (The executor threads
never touch it; workers report completions back on the loop.)

``server.admit`` and ``server.drain`` are registered fault points: the
chaos suite injects crashes and delays at both and asserts the server
sheds or degrades -- typed errors, bounded queues, a drain that always
terminates -- instead of wedging.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.errors import (
    ServerDrainingError,
    ServerOverloadedError,
)
from repro.resilience.breaker import CircuitBreaker, FAIL_FAST
from repro.resilience.faults import fault_check
from repro.serving.config import server_max_inflight, server_queue_depth
from repro.serving.protocol import PRIORITIES, UpdateRequest

__all__ = [
    "AdmissionController",
    "RETRY_AFTER_CEILING_MS",
    "RETRY_AFTER_FLOOR_MS",
    "Ticket",
]

#: Fallback service-time estimate before any completion was observed.
_DEFAULT_SERVICE_MS = 50.0
#: EWMA smoothing factor for observed service times.
_EWMA_ALPHA = 0.2

#: Bounds on the derived Retry-After hint.  The floor stops clients
#: from busy-spinning against a nearly-idle server; the ceiling stops
#: one pathological service-time observation (a cold first build, a
#: GC pause) from telling the whole fleet to go away for minutes.
RETRY_AFTER_FLOOR_MS = 50.0
RETRY_AFTER_CEILING_MS = 30_000.0


@dataclass
class Ticket:
    """One admitted request, queued then executed by a worker."""

    request_id: str
    request: UpdateRequest
    #: Monotonic second the ticket was admitted (queue-wait accounting).
    admitted_at: float = 0.0
    #: Effective deadline budget in ms (request or server default).
    deadline_ms: Optional[float] = None
    #: Resolved by the worker with the outcome (or a typed error).
    future: "asyncio.Future[object]" = field(
        default_factory=lambda: asyncio.get_running_loop().create_future()
    )


class AdmissionController:
    """Bounded per-priority admission in front of the worker pool."""

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        queue_depth: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        #: The token-bucket size; the server runs one worker per token.
        self.max_inflight = server_max_inflight(max_inflight)
        #: The bound of each priority queue.
        self.queue_depth = server_queue_depth(queue_depth)
        self._breaker = breaker
        self._clock = clock
        self._queues: Dict[str, Deque[Ticket]] = {
            priority: deque() for priority in PRIORITIES
        }
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._inflight = 0
        self._service_ewma_ms = _DEFAULT_SERVICE_MS
        self._ewma_seeded = False
        self._ewma_observed = False
        # -- counters (all mutated on the event loop only) --
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed_overload = 0
        self.shed_draining = 0
        self.shed_breaker = 0
        self.queue_high_water = 0

    # -- admission -------------------------------------------------------------

    def admit(self, ticket: Ticket) -> None:
        """Admit *ticket* or shed it with a typed, retry-aware error.

        Order of the gates matters: drain first (a draining server
        sheds everything new, however empty its queues), then the
        injected-fault hook, then the breaker, then the queue bound.
        """
        if self._draining:
            self.shed_draining += 1
            raise ServerDrainingError(
                "server is draining; not admitting new updates",
                queue=ticket.request.priority,
                retry_after_ms=self._retry_after_ms(),
            )
        fault_check("server.admit")
        self._breaker_gate(ticket)
        queue = self._queues[ticket.request.priority]
        if len(queue) >= self.queue_depth:
            self.shed_overload += 1
            raise ServerOverloadedError(
                f"admission queue {ticket.request.priority!r} is full"
                f" ({len(queue)}/{self.queue_depth}); shedding load",
                queue=ticket.request.priority,
                depth=len(queue),
                limit=self.queue_depth,
                retry_after_ms=self._retry_after_ms(),
            )
        ticket.admitted_at = self._clock()
        queue.append(ticket)
        self.admitted += 1
        self.queue_high_water = max(self.queue_high_water, self.queued)
        self._idle.clear()
        self._wakeup.set()

    def _breaker_gate(self, ticket: Ticket) -> None:
        """Shed (fail-fast) or pass through (pin-naive) on open circuits.

        An open circuit means the artifacts behind this session keep
        failing deterministically: queueing more requests behind them
        only delays the same typed verdict.  In pin-naive mode the
        engine serves the work degraded, so admission lets it through.
        """
        breaker = self._breaker
        if breaker is None or breaker.mode != FAIL_FAST:
            return
        retry_ms = breaker.retry_hint_ms()
        if retry_ms is None:
            # No circuit is open-and-cooling: closed circuits admit
            # normally, and an elapsed cooldown must admit so the
            # half-open probe can actually run and recover.
            return
        self.shed_breaker += 1
        raise ServerOverloadedError(
            "derivation circuit(s) open; shedding instead of queueing"
            " doomed work",
            queue="breaker",
            retry_after_ms=retry_ms,
        )

    def _retry_after_ms(self) -> float:
        """A backoff hint: time to clear the current backlog, observed.

        ``(queued + inflight) / tokens`` service periods at the EWMA
        service time, clamped to
        [:data:`RETRY_AFTER_FLOOR_MS`, :data:`RETRY_AFTER_CEILING_MS`]
        so clients neither busy-spin nor vanish for minutes on one
        pathological observation.
        """
        backlog = self.queued + self._inflight + 1
        periods = backlog / max(1, self.max_inflight)
        return min(
            RETRY_AFTER_CEILING_MS,
            max(RETRY_AFTER_FLOOR_MS, periods * self._service_ewma_ms),
        )

    def seed_service_ms(self, service_ms: float) -> None:
        """Prime the service-time EWMA before any request completed.

        A cold server sheds with a Retry-After derived from a built-in
        constant; the warm-up pass knows better (it just *ran* an
        update end to end), so the server seeds the estimate with the
        measured warm-up time.  A seed is a placeholder, not an
        observation: the first real completion replaces it outright
        instead of folding into it, and later seeds are ignored once
        real traffic has been observed.
        """
        if self._ewma_observed or service_ms <= 0:
            return
        self._service_ewma_ms = min(
            RETRY_AFTER_CEILING_MS, max(RETRY_AFTER_FLOOR_MS, service_ms)
        )
        self._ewma_seeded = True

    # -- the worker side -------------------------------------------------------

    async def next_ticket(self) -> Optional[Ticket]:
        """The next ticket by priority; ``None`` when drained.

        Workers block here while the queues are empty.  During a drain
        the queues are still handed out (admitted work is finished, not
        dropped); ``None`` is returned only once draining *and* empty.
        """
        while True:
            for priority in PRIORITIES:
                queue = self._queues[priority]
                if queue:
                    ticket = queue.popleft()
                    self._inflight += 1
                    return ticket
            if self._draining:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def task_done(self, succeeded: bool, service_seconds: float) -> None:
        """Return a token; fold the service time into the EWMA."""
        self._inflight -= 1
        if succeeded:
            self.completed += 1
        else:
            self.failed += 1
        if service_seconds > 0:
            if not self._ewma_observed:
                # First real observation: replace the default (or the
                # warm-up seed) instead of folding into it -- a
                # placeholder deserves no weight in the average.
                self._service_ewma_ms = service_seconds * 1e3
                self._ewma_observed = True
            else:
                self._service_ewma_ms += _EWMA_ALPHA * (
                    service_seconds * 1e3 - self._service_ewma_ms
                )
        if self._inflight == 0 and self.queued == 0:
            self._idle.set()
            # Wake parked workers so they can observe a drain.
            self._wakeup.set()

    # -- drain -----------------------------------------------------------------

    def start_drain(self) -> None:
        """Stop admitting; queued and in-flight work keeps running."""
        self._draining = True
        self._wakeup.set()

    async def drained(self, timeout_s: Optional[float]) -> bool:
        """Wait until every admitted ticket finished (or *timeout_s*).

        Returns ``True`` when the backlog reached zero -- the graceful
        case: nothing admitted was dropped.  ``False`` means the drain
        deadline expired with work still running; the caller reports
        the leftovers instead of pretending they finished.
        """
        if not self._draining:
            self.start_drain()
        if self._inflight == 0 and self.queued == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
        except asyncio.TimeoutError:
            return False
        return True

    # -- introspection ---------------------------------------------------------

    @property
    def queued(self) -> int:
        """Total tickets currently queued across all priorities."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def inflight(self) -> int:
        """Tickets currently occupying a concurrency token."""
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready counters for ``/stats`` and the drain report."""
        return {
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "queued": {
                priority: len(queue)
                for priority, queue in self._queues.items()
            },
            "inflight": self._inflight,
            "draining": self._draining,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed_overload": self.shed_overload,
            "shed_draining": self.shed_draining,
            "shed_breaker": self.shed_breaker,
            "queue_high_water": self.queue_high_water,
            "service_ewma_ms": round(self._service_ewma_ms, 3),
            "service_ewma_seeded": self._ewma_seeded,
            "service_ewma_observed": self._ewma_observed,
        }
