"""A stdlib client and threaded load generator for the update server.

:class:`ServingClient` is a thin ``http.client`` wrapper -- one
keep-alive connection, JSON in, JSON out, never raises on HTTP error
statuses (overload replies *are* the data the caller wants).  It is
deliberately **not** thread-safe: the load generator gives each client
thread its own instance, which also makes the measured concurrency
honest (N threads = N connections).

:func:`run_load` drives a server with ``clients`` concurrent threads
replaying a request mix for ``duration_s`` seconds and folds every
reply into a :class:`LoadReport`: throughput, p50/p99 latency of the
*serviced* requests, and exact counts of how the rest were refused
(typed 503 sheds, 504 deadlines, anything else).  The benchmarks and
the CI smoke assert overload behaviour from these counts -- a saturated
server must refuse with 503s, not crash, wedge, or queue without
bound.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serving.protocol import UpdateRequest, request_to_wire

__all__ = ["LoadReport", "Reply", "ServingClient", "percentile", "run_load"]


@dataclass(frozen=True)
class Reply:
    """One HTTP exchange: status, decoded body, retry hint if any."""

    status: int
    body: Dict[str, object]
    retry_after_s: Optional[float] = None


class ServingClient:
    """One keep-alive JSON connection to an update server."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self._conn = http.client.HTTPConnection(
            host, port, timeout=timeout_s
        )

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, object]] = None,
    ) -> Reply:
        body = None if payload is None else json.dumps(payload)
        self._conn.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = self._conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError as exc:
            raise ReproError(
                f"server reply to {method} {path} is not JSON:"
                f" {raw[:120]!r}"
            ) from exc
        retry_after = response.getheader("Retry-After")
        return Reply(
            status=response.status,
            body=decoded if isinstance(decoded, dict) else {"raw": decoded},
            retry_after_s=float(retry_after) if retry_after else None,
        )

    # -- the routes ------------------------------------------------------------

    def submit(
        self, request: UpdateRequest, wait: Optional[bool] = None
    ) -> Reply:
        wire = request_to_wire(request)
        if wait is not None:
            wire["wait"] = wait
        return self.request("POST", "/submit-update", wire)

    def get_outcome(self, request_id: str) -> Reply:
        return self.request("GET", f"/get-outcome?id={request_id}")

    def stats(self) -> Reply:
        return self.request("GET", "/stats")

    def healthz(self) -> Reply:
        return self.request("GET", "/healthz")

    def close(self) -> None:
        self._conn.close()


# -- load generation ------------------------------------------------------------


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (nearest-rank); ``0.0`` for no samples."""
    if not samples:
        return 0.0
    ranked = sorted(samples)
    rank = min(len(ranked) - 1, max(0, int(q / 100.0 * len(ranked))))
    return ranked[rank]


@dataclass
class LoadReport:
    """What a load-generation run observed, JSON-ready."""

    clients: int = 0
    duration_s: float = 0.0
    requests: int = 0
    serviced: int = 0
    accepted: int = 0
    rejected_formal: int = 0
    shed_503: int = 0
    deadline_504: int = 0
    other_errors: int = 0
    honored_waits: int = 0
    honored_wait_s: float = 0.0
    statuses: Dict[int, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.serviced / self.duration_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "serviced": self.serviced,
            "accepted": self.accepted,
            "rejected_formal": self.rejected_formal,
            "shed_503": self.shed_503,
            "deadline_504": self.deadline_504,
            "other_errors": self.other_errors,
            "honored_waits": self.honored_waits,
            "honored_wait_s": round(self.honored_wait_s, 3),
            "statuses": {
                str(status): count
                for status, count in sorted(self.statuses.items())
            },
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(percentile(self.latencies_ms, 50), 3),
            "p99_ms": round(percentile(self.latencies_ms, 99), 3),
        }

    def fold(self, status: int, body: Dict[str, object], ms: float) -> None:
        """Fold one reply into the counters (single-threaded use)."""
        self.requests += 1
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status == 200:
            self.serviced += 1
            self.latencies_ms.append(ms)
            outcome = body.get("outcome")
            if isinstance(outcome, dict) and outcome.get("accepted"):
                self.accepted += 1
            else:
                self.rejected_formal += 1
        elif status == 503:
            self.shed_503 += 1
        elif status == 504:
            self.deadline_504 += 1
        else:
            self.other_errors += 1


def _merge(reports: Sequence[LoadReport], duration_s: float) -> LoadReport:
    total = LoadReport(clients=len(reports), duration_s=duration_s)
    for report in reports:
        total.requests += report.requests
        total.serviced += report.serviced
        total.accepted += report.accepted
        total.rejected_formal += report.rejected_formal
        total.shed_503 += report.shed_503
        total.deadline_504 += report.deadline_504
        total.other_errors += report.other_errors
        total.honored_waits += report.honored_waits
        total.honored_wait_s += report.honored_wait_s
        total.latencies_ms.extend(report.latencies_ms)
        for status, count in report.statuses.items():
            total.statuses[status] = total.statuses.get(status, 0) + count
    return total


def run_load(
    host: str,
    port: int,
    requests: Sequence[UpdateRequest],
    clients: int = 4,
    duration_s: float = 3.0,
    deadline_ms: Optional[float] = None,
    retry_after_cap_s: float = 0.25,
) -> LoadReport:
    """Drive the server with *clients* threads for *duration_s* seconds.

    Each thread owns one connection and replays *requests* round-robin
    with ``wait=true`` (the reply latency is the full queue + service
    time).  Shed requests (503) are counted and, when the refusal
    carries a ``Retry-After`` hint, honoured: the thread sleeps
    ``min(hint, retry_after_cap_s, time left in the run)`` before its
    next request, like a well-behaved client under backpressure.  The
    cap keeps one generous hint from idling a load thread for the
    whole run; honoured waits are counted in the report so benchmarks
    can show the backoff actually happened.
    """
    if not requests:
        raise ReproError("run_load needs at least one request to replay")
    wired = [
        UpdateRequest(
            view=request.view,
            base=request.base,
            target=request.target,
            priority=request.priority,
            deadline_ms=deadline_ms
            if deadline_ms is not None
            else request.deadline_ms,
            wait=True,
        )
        for request in requests
    ]
    reports = [LoadReport() for _ in range(clients)]
    errors: List[Tuple[int, str]] = []
    started = threading.Event()

    def body(index: int) -> None:
        client = ServingClient(host, port)
        report = reports[index]
        started.wait()
        deadline = time.monotonic() + duration_s
        turn = index
        try:
            while time.monotonic() < deadline:
                request = wired[turn % len(wired)]
                turn += 1
                t0 = time.perf_counter()
                reply = client.submit(request)
                ms = (time.perf_counter() - t0) * 1e3
                report.fold(reply.status, reply.body, ms)
                if reply.status == 503 and reply.retry_after_s:
                    pause = min(
                        reply.retry_after_s,
                        retry_after_cap_s,
                        max(0.0, deadline - time.monotonic()),
                    )
                    if pause > 0:
                        report.honored_waits += 1
                        report.honored_wait_s += pause
                        time.sleep(pause)
        finally:
            client.close()

    threads = []
    for index in range(clients):
        thread = threading.Thread(
            target=lambda i=index: _guarded_body(body, i, errors),
            name=f"load-gen-{index}",
        )
        # Register before starting: if a later start() raises (thread
        # limits), the join loop below still reaps the ones that ran.
        threads.append(thread)
        thread.start()
    wall = time.monotonic()
    started.set()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - wall
    if errors:
        index, message = errors[0]
        raise ReproError(
            f"load-generator thread {index} died: {message}"
            f" ({len(errors)} thread(s) failed in total)"
        )
    return _merge(reports, wall)


def _guarded_body(
    body: Callable[[int], None],
    index: int,
    errors: List[Tuple[int, str]],
) -> None:
    try:
        body(index)
    except Exception as exc:
        errors.append((index, f"{type(exc).__name__}: {exc}"))
