"""The async update server: HTTP/1.1 over asyncio, stdlib only.

One :class:`UpdateServer` serves one :class:`~repro.serving.service.
ServiceSpec`.  The event loop owns admission, routing, and health;
every engine computation runs off-loop on the
:class:`~repro.serving.session.AsyncSession`'s bounded executor, so
``/healthz`` answers while a cold compile is still in progress.

Routes (all JSON):

* ``POST /submit-update`` -- parse, admit, queue.  Replies ``202``
  with a ticket id, or the final outcome when the request set
  ``wait``.  Shedding replies ``503`` with a ``Retry-After`` header.
* ``GET /get-outcome?id=...`` -- poll a ticket: ``202`` while queued
  or running, the recorded reply once finished, ``404`` for ids the
  bounded outcome board no longer (or never) held.
* ``GET /stats`` -- admission counters, engine stats, server info.
* ``GET /healthz`` -- cheap liveness: never touches the executor.

Failure mapping is exhaustive and typed: overload and open circuits
are ``503``, blown deadlines ``504``, malformed requests ``400``,
formal rejections travel inside a ``200`` outcome, other typed
failures are ``422``, and anything unexpected is a counted ``500``
that leaves the server serving.

Shutdown is a *drain*: ``request_drain()`` (wired to SIGTERM by
``python -m repro.serving``) stops admission, lets queued and
in-flight work finish inside the configured drain budget, and
produces a report stating -- honestly -- whether anything was
dropped.  The ``server.drain`` fault point fires inside the drain
itself; an injected fault there is absorbed into the report, because
a shutdown path that can wedge is worse than one that can hurry.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.engine.engine import Engine, UpdateOutcome
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    RequestProtocolError,
    ServerOverloadedError,
)
from repro.resilience.faults import fault_check
from repro.serving.admission import AdmissionController, Ticket
from repro.serving.config import (
    server_deadline_ms,
    server_drain_ms,
    server_max_inflight,
    server_queue_depth,
)
from repro.serving.protocol import outcome_to_wire, parse_update_request
from repro.serving.service import ServiceSpec
from repro.serving.session import AsyncSession

__all__ = ["Reply", "UpdateServer"]

#: A finished HTTP exchange: status, JSON body, extra headers.
Reply = Tuple[int, Dict[str, object], Dict[str, str]]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: How many finished tickets ``/get-outcome`` keeps replayable.
_OUTCOME_CAPACITY = 1024


def _error_reply(exc: BaseException) -> Reply:
    """Map an exception to its HTTP reply (see module docstring)."""
    headers: Dict[str, str] = {}
    if isinstance(exc, (ServerOverloadedError, CircuitOpenError)):
        status = 503
        seconds = max(1, math.ceil(exc.retry_after_ms / 1e3))
        headers["Retry-After"] = str(seconds)
    elif isinstance(exc, DeadlineExceededError):
        status = 504
    elif isinstance(exc, RequestProtocolError):
        status = 400
    elif isinstance(exc, ReproError):
        status = 422
    else:
        status = 500
    body: Dict[str, object] = {
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ServerOverloadedError):
        body["queue"] = exc.queue
        body["retry_after_ms"] = round(exc.retry_after_ms, 3)
    return status, body, headers


class UpdateServer:
    """One served universe behind bounded admission (module docs)."""

    def __init__(
        self,
        spec: ServiceSpec,
        engine: Optional[Engine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
        queue_depth: Optional[int] = None,
        drain_ms: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.engine = engine if engine is not None else Engine()
        self.host = host
        self.port = port
        self.max_inflight = server_max_inflight(max_inflight)
        self.queue_depth = server_queue_depth(queue_depth)
        self.drain_ms = server_drain_ms(drain_ms)
        self.default_deadline_ms = server_deadline_ms(deadline_ms)
        self.controller = AdmissionController(
            max_inflight=self.max_inflight,
            queue_depth=self.queue_depth,
            breaker=self.engine.breaker,
        )
        self.session = AsyncSession(
            self.engine,
            spec.schema,
            spec.assignment,
            spec.space_source,
            max_workers=self.max_inflight,
        )
        self._outcomes: "OrderedDict[str, Reply]" = OrderedDict()
        self._next_id = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._warmup_task: Optional["asyncio.Task[None]"] = None
        self._warmed = asyncio.Event()
        self._warmup_error: Optional[BaseException] = None
        self._drain_requested = asyncio.Event()
        self._drain_report: Optional[Dict[str, object]] = None
        self._started_at = 0.0
        self.warmup_seconds: Optional[float] = None
        self.unexpected_errors = 0

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, kick off warm-up, start the workers.

        Returns as soon as the socket is accepting: the cold compile
        runs in the background and queued requests wait for it, which
        is exactly what lets ``/healthz`` answer during warm-up.
        """
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._warmup_task = asyncio.create_task(self._warm())
        self._workers = [
            asyncio.create_task(self._worker())
            for _ in range(self.max_inflight)
        ]

    async def _warm(self) -> None:
        started = time.monotonic()
        try:
            await self.session.warmup(self.spec.views, self.spec.candidates)
        except Exception as exc:
            self._warmup_error = exc
        else:
            self.warmup_seconds = time.monotonic() - started
            # The warm-up just ran real derivation work end to end --
            # a far better Retry-After basis for a cold server than
            # the controller's built-in constant.
            self.controller.seed_service_ms(self.warmup_seconds * 1e3)
        finally:
            self._warmed.set()

    def request_drain(self) -> None:
        """Signal-handler entry point: begin a graceful shutdown."""
        self.controller.start_drain()
        self._drain_requested.set()

    async def drain_requested(self) -> None:
        """Block until someone called :meth:`request_drain`."""
        await self._drain_requested.wait()

    async def drain(self) -> Dict[str, object]:
        """Finish admitted work within the budget; report the truth.

        The ``server.drain`` fault point fires *inside* the drain;
        injected faults are absorbed into the report rather than
        raised, so chaos runs prove the shutdown path cannot wedge.
        """
        self.controller.start_drain()
        drain_fault: Optional[str] = None
        try:
            fault_check("server.drain")
        except Exception as exc:
            # Absorbed by design -- including InjectedFault, which is
            # deliberately not a ReproError: a fault during shutdown
            # must narrow the drain (report it), never wedge it.
            drain_fault = f"{type(exc).__name__}: {exc}"
        graceful = await self.controller.drained(self.drain_ms / 1e3)
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        report: Dict[str, object] = {
            "graceful": graceful,
            "drain_ms": self.drain_ms,
            "dropped_inflight": self.controller.inflight,
            "dropped_queued": self.controller.queued,
            "drain_fault": drain_fault,
            "admission": self.controller.snapshot(),
            "unexpected_errors": self.unexpected_errors,
        }
        self._drain_report = report
        return report

    async def stop(self) -> None:
        """Close the listener and release every resource."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._warmup_task is not None:
            self._warmup_task.cancel()
            await asyncio.gather(self._warmup_task, return_exceptions=True)
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # Off-loop: a synchronous close() would park the loop thread on
        # shutdown(wait=True) until the last in-flight build finishes,
        # freezing concurrent connections mid-drain.
        await self.session.aclose()

    # -- the worker side -------------------------------------------------------

    async def _worker(self) -> None:
        await self._warmed.wait()
        if self._warmup_error is not None:
            return
        while True:
            ticket = await self.controller.next_ticket()
            if ticket is None:
                return
            started = time.monotonic()
            serviced = False
            try:
                remaining = ticket.deadline_ms
                if remaining is not None:
                    waited_ms = (started - ticket.admitted_at) * 1e3
                    remaining -= waited_ms
                outcome = await self.session.update(
                    ticket.request.view,
                    ticket.request.base,
                    ticket.request.target,
                    remaining,
                )
            except ReproError as exc:
                self._finish(ticket, _error_reply(exc))
            except Exception as exc:
                # The last line of defence: count it, keep serving.
                self.unexpected_errors += 1
                self._finish(ticket, _error_reply(exc))
            else:
                serviced = True
                self._finish(ticket, self._outcome_reply(ticket, outcome))
            finally:
                self.controller.task_done(
                    serviced, time.monotonic() - started
                )

    def _outcome_reply(
        self, ticket: Ticket, outcome: UpdateOutcome
    ) -> Reply:
        body: Dict[str, object] = {
            "id": ticket.request_id,
            "status": "done",
            "outcome": outcome_to_wire(outcome),
        }
        return 200, body, {}

    def _finish(self, ticket: Ticket, reply: Reply) -> None:
        self._record(ticket.request_id, reply)
        if not ticket.future.done():
            ticket.future.set_result(reply)

    def _record(self, request_id: str, reply: Reply) -> None:
        self._outcomes[request_id] = reply
        self._outcomes.move_to_end(request_id)
        while len(self._outcomes) > _OUTCOME_CAPACITY:
            self._outcomes.popitem(last=False)

    # -- routing ---------------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes) -> Reply:
        path, _, query = target.partition("?")
        if method == "POST" and path == "/submit-update":
            return await self._submit(body)
        if method == "GET" and path == "/get-outcome":
            return self._get_outcome(query)
        if method == "GET" and path == "/stats":
            return await self._stats()
        if method == "GET" and path == "/healthz":
            return self._healthz()
        return (
            404,
            {"error": "NotFound", "message": f"no route {method} {path}"},
            {},
        )

    async def _submit(self, body: bytes) -> Reply:
        if self._warmup_error is not None:
            return (
                503,
                {
                    "error": type(self._warmup_error).__name__,
                    "message": "server warm-up failed:"
                    f" {self._warmup_error}",
                },
                {},
            )
        try:
            request = parse_update_request(body)
        except RequestProtocolError as exc:
            return _error_reply(exc)
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        ticket = Ticket(
            request_id=f"r{self._next_id:08d}",
            request=request,
            deadline_ms=deadline_ms,
        )
        self._next_id += 1
        try:
            self.controller.admit(ticket)
        except ReproError as exc:
            return _error_reply(exc)
        queued: Reply = (
            202,
            {"id": ticket.request_id, "status": "queued"},
            {},
        )
        self._record(ticket.request_id, queued)
        if not request.wait:
            return queued
        reply = await ticket.future
        return reply

    def _get_outcome(self, query: str) -> Reply:
        request_id = ""
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "id":
                request_id = value
        if not request_id:
            return (
                400,
                {
                    "error": "RequestProtocolError",
                    "message": "get-outcome requires ?id=<ticket id>",
                },
                {},
            )
        reply = self._outcomes.get(request_id)
        if reply is None:
            return (
                404,
                {
                    "error": "NotFound",
                    "message": f"no recorded outcome for {request_id!r}"
                    " (unknown id, or evicted from the bounded"
                    " outcome board)",
                },
                {},
            )
        return reply

    async def _stats(self) -> Reply:
        body: Dict[str, object] = {
            "service": self.spec.name,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "warmed": self._warmed.is_set()
            and self._warmup_error is None,
            "warmup_seconds": self.warmup_seconds,
            "unexpected_errors": self.unexpected_errors,
            "admission": self.controller.snapshot(),
            "engine": await self.session.stats(),
        }
        return 200, body, {}

    def _healthz(self) -> Reply:
        if self._warmup_error is not None:
            status = "failed"
            code = 503
        elif self.controller.draining:
            status = "draining"
            code = 503
        elif not self._warmed.is_set():
            status = "warming"
            code = 200
        else:
            status = "ok"
            code = 200
        body: Dict[str, object] = {
            "status": status,
            "queued": self.controller.queued,
            "inflight": self.controller.inflight,
            "engine": self.engine.health(),
        }
        return code, body, {}

    # -- the HTTP/1.1 loop -----------------------------------------------------

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        # reprolint: disable=RL008 -- the peer hung up mid-exchange; there is no one left to answer
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            # reprolint: disable=RL008 -- closing an already-reset socket is best-effort teardown
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Read one request, write one reply; ``False`` ends the
        connection (EOF, malformed framing, or ``Connection: close``).
        """
        request_line = await reader.readline()
        if not request_line:
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._respond(
                writer,
                (
                    400,
                    {
                        "error": "RequestProtocolError",
                        "message": "malformed HTTP request line",
                    },
                    {},
                ),
                keep_alive=False,
            )
            return False
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            await self._respond(
                writer,
                (
                    400,
                    {
                        "error": "RequestProtocolError",
                        "message": f"bad Content-Length {raw_length!r}",
                    },
                    {},
                ),
                keep_alive=False,
            )
            return False
        body = await reader.readexactly(length) if length > 0 else b""
        try:
            reply = await self._route(method, target, body)
        except Exception as exc:
            # Route handlers map their own failures; anything that
            # still escapes is counted and answered as a 500 -- the
            # connection (and the server) keep going.
            self.unexpected_errors += 1
            reply = _error_reply(exc)
        keep_alive = headers.get("connection", "").lower() != "close"
        await self._respond(writer, reply, keep_alive=keep_alive)
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        reply: Reply,
        keep_alive: bool,
    ) -> None:
        status, body, extra = reply
        payload = json.dumps(body).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
