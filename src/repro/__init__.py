"""repro: canonical view update support through Boolean algebras of components.

A from-scratch Python reproduction of Stephen J. Hegner, *Canonical
View Update Support through Boolean Algebras of Components* (PODS
1984).  The library implements the paper's full framework --

* a relational substrate with first-order constraints and type algebras
  including value-inapplicable nulls (:mod:`repro.relational`,
  :mod:`repro.logic`, :mod:`repro.typealgebra`);
* views, their kernels, and the partial lattice they form
  (:mod:`repro.views`);
* ⊥-posets, strong morphisms/endomorphisms, and finite Boolean algebras
  (:mod:`repro.algebra`);
* strong views, the **component algebra**, constant-complement update
  translation, and Update Procedure 3.2.3 (:mod:`repro.core`);
* null-padded chain decompositions (:mod:`repro.decomposition`);
* the bitset state-space kernel: integer-encoded instances backing the
  enumeration, poset, and component-discovery hot paths
  (:mod:`repro.kernel`, escape hatch ``REPRO_KERNEL=naive``);
* baseline strategies, workloads, and the experiment harness
  (:mod:`repro.strategies`, :mod:`repro.workloads`, :mod:`repro.harness`).

Quickstart::

    from repro import ViewUpdateSystem
    from repro.workloads import abcd_chain_small

    chain = abcd_chain_small()
    system = ViewUpdateSystem(chain.schema, chain.assignment,
                              chain.state_space())
    for view in chain.all_component_views():
        system.register_view(view)
    system.build_component_algebra([])
    # ... system.update(view_name, base_state, view_target)
"""

from repro.errors import (
    DeadlineExceededError,
    KernelFailureError,
    NotAComplementError,
    NotStrongError,
    ReproError,
    ResilienceError,
    UpdateRejected,
)
from repro.relational import (
    DatabaseInstance,
    Relation,
    RelationSchema,
    Schema,
    StateSpace,
)
from repro.typealgebra import NULL, TypeAlgebra, TypeAssignment
from repro.views import View, identity_view, zero_view
from repro.core import (
    Component,
    ComponentAlgebra,
    ComponentTranslator,
    ConstantComplementTranslator,
    UpdateProcedure,
    ViewUpdateSystem,
    analyze_view,
)
from repro.decomposition import ChainSchema
from repro.kernel import KERNEL_ENV_VAR, TupleCodec, kernel_mode, use_kernel

__version__ = "1.0.0"

__all__ = [
    "KERNEL_ENV_VAR",
    "NULL",
    "ChainSchema",
    "Component",
    "ComponentAlgebra",
    "ComponentTranslator",
    "ConstantComplementTranslator",
    "DatabaseInstance",
    "DeadlineExceededError",
    "KernelFailureError",
    "NotAComplementError",
    "NotStrongError",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ResilienceError",
    "Schema",
    "StateSpace",
    "TupleCodec",
    "TypeAlgebra",
    "TypeAssignment",
    "UpdateProcedure",
    "UpdateRejected",
    "View",
    "ViewUpdateSystem",
    "analyze_view",
    "identity_view",
    "kernel_mode",
    "use_kernel",
    "zero_view",
    "__version__",
]
