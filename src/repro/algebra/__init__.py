"""Order-theoretic substrate: posets, partitions, Boolean algebras.

The paper's Section 2 is built on three order-theoretic pillars, each
implemented here for *finite* structures:

* :mod:`~repro.algebra.poset` -- finite partially ordered sets and
  bottomed posets (the paper's "⊥-posets"), with bounds, covers,
  joins/meets where they exist, down-sets, and products;
* :mod:`~repro.algebra.partitions` -- the partition lattice
  ``Part(LDB(D))`` of §2.2: refinement order, supremum (common
  refinement) and infimum (transitive closure of union), into which the
  partial lattice of views embeds via kernels;
* :mod:`~repro.algebra.morphisms` and
  :mod:`~repro.algebra.endomorphisms` -- monotone maps, least preimages,
  least right invertibility, downward stationarity, *strong morphisms*
  and *strong endomorphisms* (§2.3), complement pairs via the
  product-isomorphism criterion of Lemma 2.3.2(b), and brute-force
  enumeration of strong endomorphisms for small posets;
* :mod:`~repro.algebra.boolean_algebra` -- verification that a finite
  bounded poset of elements is a Boolean algebra, with atoms,
  complements, and the isomorphism onto the powerset of atoms.
"""

from repro.algebra.poset import FinitePoset
from repro.algebra.partitions import Partition
from repro.algebra.morphisms import PosetMorphism, order_isomorphic
from repro.algebra.endomorphisms import (
    bottom_endomorphism,
    complement_in,
    enumerate_strong_endomorphisms,
    identity_endomorphism,
    is_complement_pair,
    is_strong_endomorphism,
)
from repro.algebra.boolean_algebra import FiniteBooleanAlgebra

__all__ = [
    "FiniteBooleanAlgebra",
    "FinitePoset",
    "Partition",
    "PosetMorphism",
    "bottom_endomorphism",
    "complement_in",
    "enumerate_strong_endomorphisms",
    "identity_endomorphism",
    "is_complement_pair",
    "is_strong_endomorphism",
    "order_isomorphic",
]
