"""Strong endomorphisms of a ⊥-poset and their complement structure.

Paper §2.3: a *strong endomorphism* of a ⊥-poset ``P`` is an idempotent,
downward stationary morphism ``P -> P``.  The strong endomorphisms are
partially ordered pointwise; the least element is the constant-bottom
map and the greatest the identity.  Lemma 2.3.2 states that complements
in this poset are unique, that the complemented elements form a Boolean
algebra, and that a complement pair ``(f, g)`` induces a ⊥-poset
isomorphism ``f x g : P -> f(P) x g(P)``.

This module provides:

* predicates (:func:`is_strong_endomorphism`, :func:`pointwise_leq`);
* the distinguished endomorphisms (:func:`identity_endomorphism`,
  :func:`bottom_endomorphism`);
* the Lemma 2.3.2(b) complement test (:func:`is_complement_pair`) and
  complement search (:func:`complement_in`);
* brute-force enumeration of all strong endomorphisms of a small poset
  (:func:`enumerate_strong_endomorphisms`), used to validate the theory
  against exhaustive search in the test suite.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import PosetError
from repro.algebra.morphisms import PosetMorphism, order_isomorphic
from repro.algebra.poset import FinitePoset


def identity_endomorphism(poset: FinitePoset) -> PosetMorphism:
    """The identity map (greatest strong endomorphism)."""
    return PosetMorphism(poset, poset, {e: e for e in poset.elements})


def bottom_endomorphism(poset: FinitePoset) -> PosetMorphism:
    """The constant-bottom map (least strong endomorphism)."""
    bottom = poset.bottom()
    return PosetMorphism(poset, poset, {e: bottom for e in poset.elements})


def is_idempotent(endo: PosetMorphism) -> bool:
    """True iff ``f(f(x)) = f(x)`` for all ``x``."""
    return all(endo(endo(e)) == endo(e) for e in endo.source.elements)


def fixpoints(endo: PosetMorphism) -> frozenset:
    """The fixpoint set ``{x : f(x) = x}`` (= the image, if idempotent)."""
    return frozenset(e for e in endo.source.elements if endo(e) == e)


def is_strong_endomorphism(endo: PosetMorphism) -> bool:
    """Idempotent + downward stationary (+ a ⊥-poset morphism at all).

    For an idempotent map the least-preimage set is exactly the fixpoint
    set, so downward stationarity says the fixpoints form a down-set.
    """
    if endo.source is not endo.target and tuple(endo.source.elements) != tuple(
        endo.target.elements
    ):
        return False
    if not endo.is_morphism():
        return False
    if not is_idempotent(endo):
        return False
    return endo.source.is_down_set(fixpoints(endo))


def pointwise_leq(f: PosetMorphism, g: PosetMorphism) -> bool:
    """``f <= g`` in the pointwise order on endomorphisms."""
    poset = f.source
    return all(poset.leq(f(e), g(e)) for e in poset.elements)


def image_subposet(endo: PosetMorphism) -> FinitePoset:
    """The induced subposet on the image of *endo*."""
    return endo.source.restrict(endo.image())


def is_complement_pair(
    f: PosetMorphism, g: PosetMorphism, poset: Optional[FinitePoset] = None
) -> bool:
    """Lemma 2.3.2(b) test: is ``f x g : P -> f(P) x g(P)`` an isomorphism?

    Both maps must be strong endomorphisms of the same poset.  When they
    are complements, the product map is a ⊥-poset isomorphism; we verify
    bijectivity and order preservation in both directions.
    """
    poset = poset or f.source
    if not is_strong_endomorphism(f) or not is_strong_endomorphism(g):
        return False
    # Cardinality short-circuit: a bijection onto the product requires
    # |image(f)| * |image(g)| == |P|.
    if len(f.image()) * len(g.image()) != len(poset):
        return False
    f_image = image_subposet(f)
    g_image = image_subposet(g)
    product = f_image.product(g_image)
    mapping = {e: (f(e), g(e)) for e in poset.elements}
    return order_isomorphic(mapping, poset, product)


def complement_in(
    f: PosetMorphism, candidates: Iterable[PosetMorphism]
) -> Optional[PosetMorphism]:
    """The complement of *f* among *candidates*, or ``None``.

    By Lemma 2.3.2(a) the complement is unique when it exists; if two
    distinct candidates both pass the test a :class:`PosetError` is
    raised, since that contradicts strongness of the inputs.
    """
    found: List[PosetMorphism] = []
    for g in candidates:
        if is_complement_pair(f, g) and not any(
            g == prior for prior in found
        ):
            found.append(g)
    if len(found) > 1:
        raise PosetError(
            f"found {len(found)} complements; Lemma 2.3.2 guarantees at "
            "most one for strong endomorphisms -- inputs are not strong"
        )
    return found[0] if found else None


def enumerate_strong_endomorphisms(
    poset: FinitePoset, limit: int = 100_000
) -> Iterator[PosetMorphism]:
    """Enumerate every strong endomorphism of a small ⊥-poset.

    Strategy: a strong endomorphism is an idempotent monotone map whose
    fixpoint set (= image) is a down-set containing ⊥.  We enumerate the
    down-sets ``F`` and, for each, search monotone retractions of the
    poset onto ``F`` by depth-first assignment with pruning.

    The search is exponential; *limit* bounds the number of assignments
    explored (raising :class:`PosetError` when exceeded) to protect
    callers from accidental blow-up.
    """
    bottom = poset.bottom()
    elements = tuple(poset.elements)
    budget = [limit]

    for fix_set in poset.down_sets():
        if bottom not in fix_set:
            continue
        non_fixed = [e for e in elements if e not in fix_set]
        fixed_list = sorted(fix_set, key=repr)
        table: Dict[Hashable, Hashable] = {e: e for e in fix_set}

        def assign(index: int) -> Iterator[Dict[Hashable, Hashable]]:
            budget[0] -= 1
            if budget[0] < 0:
                raise PosetError(
                    "strong-endomorphism enumeration budget exceeded"
                )
            if index == len(non_fixed):
                yield dict(table)
                return
            element = non_fixed[index]
            for value in fixed_list:
                # Monotonicity pruning against already-assigned elements
                # (all fixed elements and non_fixed[:index]).
                ok = True
                for other in elements:
                    if other in table:
                        if poset.leq(other, element) and not poset.leq(
                            table[other], value
                        ):
                            ok = False
                            break
                        if poset.leq(element, other) and not poset.leq(
                            value, table[other]
                        ):
                            ok = False
                            break
                if not ok:
                    continue
                table[element] = value
                yield from assign(index + 1)
                del table[element]

        for candidate_table in assign(0):
            candidate = PosetMorphism(poset, poset, candidate_table)
            # The construction guarantees idempotence (image inside the
            # fixpoint set, identity there), ⊥-preservation, monotonicity
            # against assigned order, and a down-set of fixpoints; assert
            # full monotonicity to be safe.
            if candidate.is_monotone() and fixpoints(candidate) == fix_set:
                yield candidate


def complemented_strong_endomorphisms(
    poset: FinitePoset, limit: int = 100_000
) -> Tuple[PosetMorphism, ...]:
    """All strong endomorphisms possessing a complement (small posets).

    These are exactly the elements of the Boolean algebra of Lemma
    2.3.2(a).
    """
    all_endos = list(enumerate_strong_endomorphisms(poset, limit))
    complemented = []
    for f in all_endos:
        if complement_in(f, all_endos) is not None:
            complemented.append(f)
    return tuple(complemented)
