"""Finite Boolean algebras, verified from an ordered element set.

Theorem 2.3.3 / Lemma 2.3.2 assert that certain element sets (the
complemented strong endomorphisms; the strongly complemented strong
views) *form Boolean algebras*.  :class:`FiniteBooleanAlgebra` makes that
claim checkable: given elements and an order predicate it verifies the
bounded-lattice, distributivity, and complementation axioms, computes
atoms, and exhibits the isomorphism onto the powerset of atoms.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Tuple,
)

from repro.errors import NotABooleanAlgebraError
from repro.algebra.poset import FinitePoset


class FiniteBooleanAlgebra:
    """A finite Boolean algebra, constructed and verified from a poset.

    Raises :class:`~repro.errors.NotABooleanAlgebraError` during
    construction if the axioms fail, with a message naming the first
    failing axiom -- so "these views form a Boolean algebra" becomes an
    executable assertion.
    """

    __slots__ = ("poset", "_meet", "_join", "_complement", "_top", "_bottom")

    def __init__(self, elements: Iterable[Hashable], leq: Callable[[Hashable, Hashable], bool]):
        self.poset = FinitePoset.from_leq(tuple(elements), leq)
        n = len(self.poset)
        if n == 0:
            raise NotABooleanAlgebraError("empty element set")
        try:
            self._bottom = self.poset.bottom()
            self._top = self.poset.top()
        except Exception as exc:
            raise NotABooleanAlgebraError(f"missing universal bound: {exc}") from exc
        self._meet: Dict[Tuple[Hashable, Hashable], Hashable] = {}
        self._join: Dict[Tuple[Hashable, Hashable], Hashable] = {}
        for a in self.poset.elements:
            for b in self.poset.elements:
                meet = self.poset.meet(a, b)
                join = self.poset.join(a, b)
                if meet is None:
                    raise NotABooleanAlgebraError(
                        f"no meet for ({a!r}, {b!r}); not a lattice"
                    )
                if join is None:
                    raise NotABooleanAlgebraError(
                        f"no join for ({a!r}, {b!r}); not a lattice"
                    )
                self._meet[(a, b)] = meet
                self._join[(a, b)] = join
        self._check_distributivity()
        self._complement = self._compute_complements()

    # -- axioms --------------------------------------------------------------------

    def _check_distributivity(self) -> None:
        elems = self.poset.elements
        for a in elems:
            for b in elems:
                for c in elems:
                    left = self._meet[(a, self._join[(b, c)])]
                    right = self._join[
                        (self._meet[(a, b)], self._meet[(a, c)])
                    ]
                    if left != right:
                        raise NotABooleanAlgebraError(
                            f"distributivity fails at ({a!r}, {b!r}, {c!r})"
                        )

    def _compute_complements(self) -> Dict[Hashable, Hashable]:
        table: Dict[Hashable, Hashable] = {}
        for a in self.poset.elements:
            candidates = [
                b
                for b in self.poset.elements
                if self._meet[(a, b)] == self._bottom
                and self._join[(a, b)] == self._top
            ]
            if not candidates:
                raise NotABooleanAlgebraError(f"{a!r} has no complement")
            if len(candidates) > 1:
                # In a distributive lattice complements are unique, so
                # this branch indicates an internal inconsistency.
                raise NotABooleanAlgebraError(
                    f"{a!r} has {len(candidates)} complements"
                )
            table[a] = candidates[0]
        return table

    # -- operations --------------------------------------------------------------------

    @property
    def elements(self) -> Tuple[Hashable, ...]:
        """All elements."""
        return self.poset.elements

    @property
    def top(self) -> Hashable:
        """The greatest element (``1``)."""
        return self._top

    @property
    def bottom(self) -> Hashable:
        """The least element (``0``)."""
        return self._bottom

    def meet(self, a: Hashable, b: Hashable) -> Hashable:
        """Greatest lower bound."""
        return self._meet[(a, b)]

    def join(self, a: Hashable, b: Hashable) -> Hashable:
        """Least upper bound."""
        return self._join[(a, b)]

    def complement(self, a: Hashable) -> Hashable:
        """The unique complement."""
        return self._complement[a]

    def leq(self, a: Hashable, b: Hashable) -> bool:
        """The underlying order."""
        return self.poset.leq(a, b)

    def __len__(self) -> int:
        return len(self.poset)

    def __contains__(self, element: Hashable) -> bool:
        return element in self.poset

    def __repr__(self) -> str:
        return f"FiniteBooleanAlgebra({len(self)} elements, {len(self.atoms())} atoms)"

    # -- structure ---------------------------------------------------------------------

    def atoms(self) -> Tuple[Hashable, ...]:
        """Elements covering bottom."""
        return tuple(
            a
            for a in self.poset.elements
            if a != self._bottom and self.poset.covers(self._bottom, a)
        )

    def atom_decomposition(self, element: Hashable) -> FrozenSet[Hashable]:
        """The set of atoms below *element*."""
        return frozenset(
            atom for atom in self.atoms() if self.poset.leq(atom, element)
        )

    def is_isomorphic_to_powerset_of_atoms(self) -> bool:
        """Stone-style sanity check: ``x -> {atoms <= x}`` is bijective
        onto the full powerset of atoms, and order-preserving both ways.

        A finite Boolean algebra always passes; the method exists so that
        the claim is *checked*, not assumed, for algebras built out of
        views and endomorphisms.
        """
        atoms = self.atoms()
        if len(self) != 2 ** len(atoms):
            return False
        seen: Dict[FrozenSet[Hashable], Hashable] = {}
        for element in self.poset.elements:
            decomposition = self.atom_decomposition(element)
            if decomposition in seen:
                return False
            seen[decomposition] = element
        for a in self.poset.elements:
            for b in self.poset.elements:
                subset_order = self.atom_decomposition(a) <= self.atom_decomposition(b)
                if subset_order != self.poset.leq(a, b):
                    return False
        return True

    def generated_by(self, generators: Iterable[Hashable]) -> bool:
        """True iff closing *generators* under meet/join/complement and
        the bounds yields every element."""
        closed = {self._bottom, self._top}
        closed.update(generators)
        changed = True
        while changed:
            changed = False
            current = list(closed)
            for a in current:
                comp = self._complement[a]
                if comp not in closed:
                    closed.add(comp)
                    changed = True
                for b in current:
                    for value in (self._meet[(a, b)], self._join[(a, b)]):
                        if value not in closed:
                            closed.add(value)
                            changed = True
        return closed == set(self.poset.elements)


def try_boolean_algebra(
    elements: Iterable[Hashable], leq: Callable[[Hashable, Hashable], bool]
) -> Optional[FiniteBooleanAlgebra]:
    """Build a :class:`FiniteBooleanAlgebra`, or ``None`` if axioms fail."""
    try:
        return FiniteBooleanAlgebra(elements, leq)
    except NotABooleanAlgebraError:
        return None
