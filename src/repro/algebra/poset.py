"""Finite partially ordered sets and ⊥-posets.

A :class:`FinitePoset` stores its elements and the full order relation as
bitsets over element indices, so all the questions the paper's Section 2
asks -- bottom element, least upper bounds, down-sets, products -- are
answered by set arithmetic.

``LDB(D, mu)`` under relation-by-relation inclusion is the motivating
instance (constructed by :class:`repro.relational.enumeration.StateSpace`),
but the classes here are generic over hashable elements and are unit
tested on abstract posets.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import PosetError
from repro.resilience.faults import fault_check
from repro.resilience.guard import current_guard


class FinitePoset:
    """An immutable finite poset over hashable elements.

    Construct via :meth:`from_leq` (from a comparison callable) or
    :meth:`from_relation` (from explicit related pairs, reflexive-
    transitively closed by the caller).
    """

    __slots__ = (
        "_elements",
        "_index",
        "_below",
        "_above",
        "_minimal",
        "_maximal",
        "_source_masks",
        "_contain",
    )

    def __init__(self, elements: Sequence[Hashable], below: Sequence[int]):
        """Internal constructor; prefer :meth:`from_leq`.

        *below[i]* is a bitmask of the indices ``j`` with ``e_j <= e_i``
        (the down-set of element ``i``, including ``i`` itself).
        """
        self._elements: Tuple[Hashable, ...] = tuple(elements)
        self._index: Dict[Hashable, int] = {
            e: i for i, e in enumerate(self._elements)
        }
        if len(self._index) != len(self._elements):
            raise PosetError("poset elements must be distinct")
        self._below: Tuple[int, ...] = tuple(below)
        self._above: Optional[Tuple[int, ...]] = None
        self._minimal: Optional[Tuple[Hashable, ...]] = None
        self._maximal: Optional[Tuple[Hashable, ...]] = None
        #: Element encodings retained by :meth:`from_masks`; they enable
        #: the O(width + n) single-element delta of :meth:`with_element`.
        self._source_masks: Optional[Tuple[int, ...]] = None
        self._contain: Optional[Tuple[int, ...]] = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_leq(
        cls,
        elements: Iterable[Hashable],
        leq: Callable[[Hashable, Hashable], bool],
    ) -> "FinitePoset":
        """Build from a comparison callable (must be a partial order)."""
        elements = tuple(elements)
        guard = current_guard()
        below: List[int] = []
        for i, upper in enumerate(elements):
            if guard is not None:
                guard.tick()
            mask = 0
            for j, lower in enumerate(elements):
                if leq(lower, upper):
                    mask |= 1 << j
            if not mask & (1 << i):
                raise PosetError(f"leq is not reflexive at {upper!r}")
            below.append(mask)
        poset = cls(elements, below)
        poset._check_partial_order()
        return poset

    @classmethod
    def from_masks(
        cls,
        elements: Iterable[Hashable],
        masks: Sequence[int],
    ) -> "FinitePoset":
        """Build the inclusion order of bitmask-encoded elements.

        ``masks[i]`` is an integer set-encoding of ``elements[i]`` (e.g.
        from :class:`repro.kernel.bitspace.TupleCodec`); the order is
        mask inclusion.  Instead of the ``n^2`` pairwise comparisons of
        :meth:`from_leq`, this inverts the encoding once -- for each
        tuple-bit ``t``, ``contain[t]`` is the mask of elements whose
        encoding has ``t`` -- and computes each down-set as
        ``all & ~OR(contain[t] for t outside the element)``, i.e. work
        proportional to ``n * width`` integer ops.

        Mask inclusion over distinct masks is a partial order by
        construction, so no :meth:`_check_partial_order` pass is run.
        """
        fault_check("kernel.poset")
        elements = tuple(elements)
        masks = tuple(masks)
        if len(masks) != len(elements):
            raise PosetError("from_masks needs one mask per element")
        if len(set(masks)) != len(masks):
            raise PosetError("element masks must be distinct")
        guard = current_guard()
        n = len(elements)
        width = max(masks).bit_length() if masks else 0
        contain = [0] * width
        for i, mask in enumerate(masks):
            probe = mask
            while probe:
                t = (probe & -probe).bit_length() - 1
                probe &= probe - 1
                contain[t] |= 1 << i
        full = (1 << n) - 1
        universe = (1 << width) - 1
        below: List[int] = []
        if n >= 48 and width:
            # Large family: collapse the per-element bit walk into one
            # per-byte table OR per chunk (the precomputed tables are
            # amortized across all n down-sets).
            from repro.kernel.bulkops import (
                chunked_union_tables,
                union_selected_chunked,
            )

            tables = chunked_union_tables(contain)
            for mask in masks:
                if guard is not None:
                    guard.tick()
                excluded = union_selected_chunked(tables, universe & ~mask)
                below.append(full & ~excluded)
        else:
            for mask in masks:
                if guard is not None:
                    guard.tick()
                down = full
                probe = universe & ~mask
                while probe:
                    t = (probe & -probe).bit_length() - 1
                    probe &= probe - 1
                    down &= ~contain[t]
                below.append(down)
        poset = cls(elements, below)
        # Retain the encoding so with_element() can splice a single new
        # state in O(width + n) instead of rebuilding from scratch.
        poset._source_masks = masks
        poset._contain = tuple(contain)
        return poset

    @classmethod
    def from_relation(
        cls,
        elements: Iterable[Hashable],
        pairs: Iterable[Tuple[Hashable, Hashable]],
    ) -> "FinitePoset":
        """Build from covering/ordering pairs; takes the reflexive-
        transitive closure automatically."""
        elements = tuple(elements)
        index = {e: i for i, e in enumerate(elements)}
        n = len(elements)
        below = [1 << i for i in range(n)]
        for low, high in pairs:
            below[index[high]] |= 1 << index[low]
        # Transitive closure (simple fixpoint; posets here are small).
        changed = True
        while changed:
            changed = False
            for i in range(n):
                mask = below[i]
                expanded = mask
                j_mask = mask
                while j_mask:
                    j = (j_mask & -j_mask).bit_length() - 1
                    j_mask &= j_mask - 1
                    expanded |= below[j]
                if expanded != mask:
                    below[i] = expanded
                    changed = True
        poset = cls(elements, below)
        poset._check_partial_order()
        return poset

    def _check_partial_order(self) -> None:
        n = len(self._elements)
        for i in range(n):
            for j in range(n):
                if i != j and self._below[i] & (1 << j) and self._below[j] & (1 << i):
                    raise PosetError(
                        f"antisymmetry violated between "
                        f"{self._elements[i]!r} and {self._elements[j]!r}"
                    )
        for i in range(n):
            mask = self._below[i]
            j_mask = mask
            while j_mask:
                j = (j_mask & -j_mask).bit_length() - 1
                j_mask &= j_mask - 1
                if self._below[j] & ~mask:
                    raise PosetError("transitivity violated")

    # -- basics --------------------------------------------------------------------

    @property
    def elements(self) -> Tuple[Hashable, ...]:
        """The elements, in construction order."""
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._elements)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._index

    def index(self, element: Hashable) -> int:
        """Index of an element."""
        try:
            return self._index[element]
        except KeyError:
            raise PosetError(f"{element!r} is not in the poset") from None

    def leq(self, low: Hashable, high: Hashable) -> bool:
        """True iff ``low <= high``."""
        return bool(self._below[self.index(high)] & (1 << self.index(low)))

    def leq_matrix(self) -> Tuple[int, ...]:
        """The order as bitmasks: ``matrix[i]`` has bit ``j`` set iff
        ``elements[j] <= elements[i]``.

        Exposed for bulk order computations (e.g. the product-isomorphism
        test of Lemma 2.3.2) that would otherwise pay per-call lookup
        overhead millions of times.
        """
        return self._below

    def lt(self, low: Hashable, high: Hashable) -> bool:
        """True iff ``low < high``."""
        return low != high and self.leq(low, high)

    def comparable(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a <= b`` or ``b <= a``."""
        return self.leq(a, b) or self.leq(b, a)

    # -- bitmask helpers -------------------------------------------------------------

    def _mask_elements(self, mask: int) -> Tuple[Hashable, ...]:
        out = []
        while mask:
            i = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            out.append(self._elements[i])
        return tuple(out)

    def _down_mask(self, element: Hashable) -> int:
        return self._below[self.index(element)]

    def _up_matrix(self) -> Tuple[int, ...]:
        """Transpose of :meth:`leq_matrix`: ``matrix[i]`` has bit ``j``
        set iff ``elements[i] <= elements[j]`` (cached).

        Derived in one pass with the word-packed transpose of
        :func:`repro.kernel.bulkops.transpose_masks`; large matrices run
        ``log2(side)`` whole-matrix delta-exchanges instead of a Python
        step per set bit.
        """
        if self._above is None:
            from repro.kernel.bulkops import transpose_masks

            n = len(self._elements)
            self._above = tuple(transpose_masks(self._below, n))
        return self._above

    def _up_mask(self, element: Hashable) -> int:
        return self._up_matrix()[self.index(element)]

    # -- bounds and extremes -----------------------------------------------------------

    def minimal_elements(self) -> Tuple[Hashable, ...]:
        """Elements with nothing strictly below them (cached)."""
        if self._minimal is None:
            self._minimal = tuple(
                e
                for i, e in enumerate(self._elements)
                if self._below[i] == (1 << i)
            )
        return self._minimal

    def maximal_elements(self) -> Tuple[Hashable, ...]:
        """Elements with nothing strictly above them (cached).

        Shares the single transpose pass of :meth:`_up_matrix` instead
        of re-walking ``_below`` bit by bit per element.
        """
        if self._maximal is None:
            up = self._up_matrix()
            self._maximal = tuple(
                e
                for i, e in enumerate(self._elements)
                if up[i] == (1 << i)
            )
        return self._maximal

    def bottom(self) -> Hashable:
        """The least element; raises :class:`PosetError` if none exists."""
        common = (1 << len(self._elements)) - 1 if self._elements else 0
        for mask in self._below:
            common &= mask
            if not common:
                break
        if not common:
            raise PosetError("poset has no bottom element")
        return self._elements[(common & -common).bit_length() - 1]

    def has_bottom(self) -> bool:
        """True iff a least element exists (a ⊥-poset)."""
        try:
            self.bottom()
            return True
        except PosetError:
            return False

    def top(self) -> Hashable:
        """The greatest element; raises :class:`PosetError` if none."""
        full = (1 << len(self._elements)) - 1
        for i, e in enumerate(self._elements):
            if self._below[i] == full:
                return e
        raise PosetError("poset has no top element")

    def has_top(self) -> bool:
        """True iff a greatest element exists."""
        try:
            self.top()
            return True
        except PosetError:
            return False

    # -- joins and meets -----------------------------------------------------------------

    def upper_bounds(self, elements: Iterable[Hashable]) -> Tuple[Hashable, ...]:
        """All common upper bounds of the given elements."""
        mask = (1 << len(self._elements)) - 1
        for element in elements:
            mask &= self._up_mask(element)
        return self._mask_elements(mask)

    def lower_bounds(self, elements: Iterable[Hashable]) -> Tuple[Hashable, ...]:
        """All common lower bounds of the given elements."""
        mask = (1 << len(self._elements)) - 1
        for element in elements:
            mask &= self._down_mask(element)
        return self._mask_elements(mask)

    def join(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """Least upper bound, or ``None`` if it does not exist."""
        bounds = self.upper_bounds((a, b))
        least = [
            u for u in bounds if all(self.leq(u, other) for other in bounds)
        ]
        return least[0] if least else None

    def meet(self, a: Hashable, b: Hashable) -> Optional[Hashable]:
        """Greatest lower bound, or ``None`` if it does not exist."""
        bounds = self.lower_bounds((a, b))
        greatest = [
            l for l in bounds if all(self.leq(other, l) for other in bounds)
        ]
        return greatest[0] if greatest else None

    def join_all(self, elements: Iterable[Hashable]) -> Optional[Hashable]:
        """Least upper bound of a set, or ``None``."""
        bounds = self.upper_bounds(tuple(elements))
        least = [
            u for u in bounds if all(self.leq(u, other) for other in bounds)
        ]
        return least[0] if least else None

    def is_lattice(self) -> bool:
        """True iff every pair has both a join and a meet."""
        for a in self._elements:
            for b in self._elements:
                if self.join(a, b) is None or self.meet(a, b) is None:
                    return False
        return True

    # -- down-sets ----------------------------------------------------------------------

    def down_set(self, element: Hashable) -> Tuple[Hashable, ...]:
        """All elements ``<= element`` (the principal down-set)."""
        return self._mask_elements(self._down_mask(element))

    def is_down_set(self, subset: Iterable[Hashable]) -> bool:
        """True iff *subset* is downward closed."""
        subset = set(subset)
        return all(
            set(self.down_set(element)) <= subset for element in subset
        )

    def down_sets(self) -> Iterator[frozenset]:
        """Enumerate all down-closed subsets (exponential; small posets only)."""
        n = len(self._elements)
        for mask in range(1 << n):
            ok = True
            probe = mask
            while probe:
                i = (probe & -probe).bit_length() - 1
                probe &= probe - 1
                if self._below[i] & ~mask:
                    ok = False
                    break
            if ok:
                yield frozenset(self._mask_elements(mask))

    # -- structure ----------------------------------------------------------------------

    def covers(self, low: Hashable, high: Hashable) -> bool:
        """True iff *high* covers *low* (nothing strictly between)."""
        if not self.lt(low, high):
            return False
        between = self._down_mask(high) & self._up_mask(low)
        # between includes low and high themselves.
        return bin(between).count("1") == 2

    def product(self, other: "FinitePoset") -> "FinitePoset":
        """Componentwise-ordered product poset."""
        elements = [
            (a, b) for a in self._elements for b in other._elements
        ]
        return FinitePoset.from_leq(
            elements,
            lambda p, q: self.leq(p[0], q[0]) and other.leq(p[1], q[1]),
        )

    def with_element(
        self, element: Hashable, mask: int
    ) -> "FinitePoset":
        """A new poset with one extra mask-encoded element (incremental).

        Only available on posets built by :meth:`from_masks` (the
        retained encoding is what makes the delta cheap).  The new
        element's down- and up-sets come from the inverted ``contain``
        index in O(width) mask ops, existing rows gain at most one bit,
        and a cached up-matrix is carried forward instead of being
        rebuilt -- the single-state delta costs O(width + n) rather
        than the O(n * width) of a from-scratch construction.
        """
        if self._source_masks is None or self._contain is None:
            raise PosetError(
                "with_element requires a poset built by from_masks"
            )
        if element in self._index:
            raise PosetError(f"{element!r} is already in the poset")
        n = len(self._elements)
        guard = current_guard()
        contain = self._contain
        width = len(contain)
        if guard is not None:
            guard.tick(max(width, 1))
        full = (1 << n) - 1
        # Down-set: elements whose mask is included in the new mask --
        # start from everything and knock out each element containing a
        # tuple-bit the new mask lacks.
        down = full
        probe = ((1 << width) - 1) & ~mask
        while probe:
            t = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            down &= ~contain[t]
        # Up-set: elements whose mask includes the new mask.
        up = full
        probe = mask
        while probe and up:
            t = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            up &= contain[t] if t < width else 0
        if up & down:
            raise PosetError("element masks must be distinct")
        bit = 1 << n
        below = [
            row | bit if up & (1 << i) else row
            for i, row in enumerate(self._below)
        ]
        below.append(down | bit)
        poset = FinitePoset((*self._elements, element), below)
        poset._source_masks = (*self._source_masks, mask)
        new_contain = list(contain)
        if mask.bit_length() > width:
            new_contain.extend([0] * (mask.bit_length() - width))
        probe = mask
        while probe:
            t = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            new_contain[t] |= bit
        poset._contain = tuple(new_contain)
        if self._above is not None:
            above = [
                row | bit if down & (1 << i) else row
                for i, row in enumerate(self._above)
            ]
            above.append(up | bit)
            poset._above = tuple(above)
        return poset

    def restrict(self, subset: Iterable[Hashable]) -> "FinitePoset":
        """The induced subposet on *subset*."""
        subset = tuple(subset)
        for element in subset:
            self.index(element)
        return FinitePoset.from_leq(subset, self.leq)

    def __repr__(self) -> str:
        return f"FinitePoset({len(self._elements)} elements)"
