"""Set partitions and the partition lattice (paper §2.2).

With each view ``Gamma = (V, gamma)`` of a schema ``D`` the paper
associates the kernel of ``gamma'`` -- a partition of ``LDB(D)`` -- and
orders views by refinement of kernels: ``Gamma2 <= Gamma1`` iff
``Gamma1``'s kernel is finer.  In the paper's convention the *finest*
partition is the **greatest** element (it corresponds to the identity
view ``1_D``) and the coarsest is the **least** (the zero view ``0_D``);
:meth:`Partition.leq` follows that convention.

Join (sup) of partitions is the common refinement; meet (inf) is the
finest partition coarser than both (transitive closure of the union of
the equivalences).  ``Gamma2`` is a *join complement* of ``Gamma1`` iff
the sup of their kernels is discrete, a *meet complement* iff the inf is
indiscrete.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Tuple,
)

from repro.errors import PosetError

Block = FrozenSet[Hashable]


class Partition:
    """An immutable partition of a finite ground set."""

    __slots__ = ("_blocks", "_block_of", "_ground")

    def __init__(self, blocks: Iterable[Iterable[Hashable]]):
        frozen = frozenset(frozenset(block) for block in blocks)
        if any(not block for block in frozen):
            raise PosetError("partition blocks must be non-empty")
        block_of: Dict[Hashable, Block] = {}
        for block in frozen:
            for element in block:
                if element in block_of:
                    raise PosetError(
                        f"element {element!r} appears in two blocks"
                    )
                block_of[element] = block
        self._blocks: FrozenSet[Block] = frozen
        self._block_of = block_of
        self._ground: FrozenSet[Hashable] = frozenset(block_of)

    # -- constructors --------------------------------------------------------

    @classmethod
    def discrete(cls, ground: Iterable[Hashable]) -> "Partition":
        """Every element its own block (the finest partition; ``1``)."""
        return cls([frozenset([e]) for e in ground])

    @classmethod
    def indiscrete(cls, ground: Iterable[Hashable]) -> "Partition":
        """One block containing everything (the coarsest; ``0``)."""
        ground = frozenset(ground)
        if not ground:
            return cls([])
        return cls([ground])

    @classmethod
    def from_kernel(
        cls, ground: Iterable[Hashable], key: Callable[[Hashable], Hashable]
    ) -> "Partition":
        """The kernel of a function: blocks are the fibres of *key*.

        This is exactly ``Pi(Gamma) = ker(gamma')`` for a view mapping.
        """
        fibres: Dict[Hashable, set] = {}
        for element in ground:
            fibres.setdefault(key(element), set()).add(element)
        return cls(fibres.values())

    # -- basics ---------------------------------------------------------------

    @property
    def blocks(self) -> FrozenSet[Block]:
        """The blocks."""
        return self._blocks

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        """The union of all blocks."""
        return self._ground

    def block_of(self, element: Hashable) -> Block:
        """The block containing *element*."""
        try:
            return self._block_of[element]
        except KeyError:
            raise PosetError(f"{element!r} not in the ground set") from None

    def same_block(self, a: Hashable, b: Hashable) -> bool:
        """True iff *a* and *b* are equivalent."""
        return self.block_of(a) is self.block_of(b)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash(self._blocks)

    def __repr__(self) -> str:
        return f"Partition({len(self._blocks)} blocks / {len(self._ground)} elements)"

    def is_discrete(self) -> bool:
        """True iff every block is a singleton."""
        return all(len(block) == 1 for block in self._blocks)

    def is_indiscrete(self) -> bool:
        """True iff there is at most one block."""
        return len(self._blocks) <= 1

    # -- ordering (paper convention: finer = greater) ----------------------------

    def _check_same_ground(self, other: "Partition") -> None:
        if self._ground != other._ground:
            raise PosetError("partitions over different ground sets")

    def refines(self, other: "Partition") -> bool:
        """True iff every block of ``self`` lies inside a block of *other*.

        One O(n) pass: a block lies inside some block of *other* exactly
        when all its members share the same *other*-block, so each
        element costs one dict lookup and one identity compare -- no
        per-block subset hashing.
        """
        self._check_same_ground(other)
        other_of = other._block_of
        for block in self._blocks:
            members = iter(block)
            target = other_of[next(members)]
            for element in members:
                if other_of[element] is not target:
                    return False
        return True

    def leq(self, other: "Partition") -> bool:
        """Paper order: ``self <= other`` iff *other* refines ``self``."""
        return other.refines(self)

    # -- lattice operations ---------------------------------------------------------

    def sup(self, other: "Partition") -> "Partition":
        """Common refinement (the *join*, greatest in the paper's order)."""
        self._check_same_ground(other)
        blocks = set()
        for block in self._blocks:
            for other_block in other._blocks:
                overlap = block & other_block
                if overlap:
                    blocks.add(frozenset(overlap))
        return Partition(blocks)

    def inf(self, other: "Partition") -> "Partition":
        """Finest common coarsening (the *meet*): transitive closure of
        the union of the two equivalence relations."""
        self._check_same_ground(other)
        parent: Dict[Hashable, Hashable] = {e: e for e in self._ground}

        def find(x: Hashable) -> Hashable:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: Hashable, b: Hashable) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for partition in (self, other):
            for block in partition._blocks:
                first = next(iter(block))
                for element in block:
                    union(first, element)
        groups: Dict[Hashable, set] = {}
        for element in self._ground:
            groups.setdefault(find(element), set()).add(element)
        return Partition(groups.values())

    # -- complements -------------------------------------------------------------------

    def is_join_complement_of(self, other: "Partition") -> bool:
        """True iff the common refinement is discrete.

        For kernels of view mappings this says exactly that
        ``gamma1 x gamma2`` is injective (Definition 1.3.1(a)).
        """
        return self.sup(other).is_discrete()

    def is_meet_complement_of(self, other: "Partition") -> bool:
        """True iff the coarsest common coarsening is indiscrete.

        Note: for view kernels, the paper's *meet complement*
        (Definition 1.3.4 -- ``gamma1 x gamma2`` surjective onto the
        product of images) implies this partition condition; use
        :func:`repro.views.lattice.are_meet_complements` for the exact
        product-surjectivity test.
        """
        return self.inf(other).is_indiscrete()

    def index_pairs(self) -> Tuple[Tuple[Hashable, Hashable], ...]:
        """All equivalent (a, b) pairs with ``a != b`` (for testing)."""
        pairs = []
        for block in self._blocks:
            members = sorted(block, key=repr)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    pairs.append((a, b))
        return tuple(pairs)
