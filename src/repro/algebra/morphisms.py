"""Morphisms of ⊥-posets: monotone maps, least preimages, strongness.

Implements the vocabulary of paper §2.3 for finite posets:

* a *morphism* is a monotone map preserving bottom;
* ``f`` *admits least preimages* if each value in its image has a least
  preimage ``y_f``;
* ``f`` is *least right invertible* if it is surjective, admits least
  preimages, and ``f# : y -> y_f`` is itself a morphism;
* ``lp(f)`` is the set of least preimages; ``f`` is *downward
  stationary* if ``lp(f)`` is downward closed;
* ``f`` is a **strong morphism** if it is downward stationary and least
  right invertible; ``f^Theta = f# . f`` is its endomorphism.

:class:`PosetMorphism` wraps a finite map together with its source and
target posets and answers all of these questions, caching the analysis.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.errors import PosetError
from repro.algebra.poset import FinitePoset


class PosetMorphism:
    """A (not necessarily monotone) map between finite posets.

    The map is stored as an explicit table; use :meth:`from_callable` to
    tabulate a Python function.  All structural predicates are computed
    lazily and cached.
    """

    __slots__ = ("source", "target", "_table", "_cache")

    def __init__(
        self,
        source: FinitePoset,
        target: FinitePoset,
        table: Mapping[Hashable, Hashable],
    ):
        for element in source.elements:
            if element not in table:
                raise PosetError(f"morphism table missing {element!r}")
            if table[element] not in target:
                raise PosetError(
                    f"morphism value {table[element]!r} not in target poset"
                )
        self.source = source
        self.target = target
        self._table: Dict[Hashable, Hashable] = {
            e: table[e] for e in source.elements
        }
        self._cache: Dict[str, object] = {}

    @classmethod
    def from_callable(
        cls,
        source: FinitePoset,
        target: FinitePoset,
        func: Callable[[Hashable], Hashable],
    ) -> "PosetMorphism":
        """Tabulate *func* over the source poset."""
        return cls(source, target, {e: func(e) for e in source.elements})

    # -- function protocol ----------------------------------------------------

    def __call__(self, element: Hashable) -> Hashable:
        try:
            return self._table[element]
        except KeyError:
            raise PosetError(f"{element!r} not in the source poset") from None

    @property
    def table(self) -> Dict[Hashable, Hashable]:
        """A copy of the underlying table."""
        return dict(self._table)

    def image(self) -> Tuple[Hashable, ...]:
        """The image, in target-poset element order."""
        values = set(self._table.values())
        return tuple(e for e in self.target.elements if e in values)

    def compose(self, inner: "PosetMorphism") -> "PosetMorphism":
        """``self . inner`` (apply *inner* first)."""
        if inner.target is not self.source and tuple(inner.target.elements) != tuple(
            self.source.elements
        ):
            raise PosetError("composition: posets do not match")
        return PosetMorphism(
            inner.source,
            self.target,
            {e: self._table[inner(e)] for e in inner.source.elements},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PosetMorphism):
            return NotImplemented
        return (
            tuple(self.source.elements) == tuple(other.source.elements)
            and tuple(self.target.elements) == tuple(other.target.elements)
            and self._table == other._table
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(self.source.elements),
                tuple(self.target.elements),
                tuple(sorted(self._table.items(), key=lambda kv: repr(kv))),
            )
        )

    def __repr__(self) -> str:
        return (
            f"PosetMorphism({len(self.source)} -> {len(self.target)} elements)"
        )

    # -- morphism predicates ------------------------------------------------------

    def is_monotone(self) -> bool:
        """True iff ``x <= y`` implies ``f(x) <= f(y)``."""
        if "monotone" not in self._cache:
            self._cache["monotone"] = all(
                self.target.leq(self._table[x], self._table[y])
                for x in self.source.elements
                for y in self.source.elements
                if self.source.leq(x, y)
            )
        return bool(self._cache["monotone"])

    def preserves_bottom(self) -> bool:
        """True iff both posets have bottoms and ``f(⊥) = ⊥``."""
        if not (self.source.has_bottom() and self.target.has_bottom()):
            return False
        return self._table[self.source.bottom()] == self.target.bottom()

    def is_morphism(self) -> bool:
        """Monotone and bottom-preserving (the paper's ⊥-poset morphism)."""
        return self.is_monotone() and self.preserves_bottom()

    def is_surjective(self) -> bool:
        """True iff every target element is hit."""
        return len(set(self._table.values())) == len(self.target)

    # -- least preimages and strongness ----------------------------------------------

    def least_preimage(self, value: Hashable) -> Optional[Hashable]:
        """The least ``x`` with ``f(x) = value``, or ``None``.

        ``None`` means either *value* is not in the image or its preimage
        has no least element.
        """
        preimages = [
            x for x in self.source.elements if self._table[x] == value
        ]
        if not preimages:
            return None
        least = [
            x
            for x in preimages
            if all(self.source.leq(x, other) for other in preimages)
        ]
        return least[0] if least else None

    def admits_least_preimages(self) -> bool:
        """True iff every image value has a least preimage."""
        if "admits_lp" not in self._cache:
            self._cache["admits_lp"] = all(
                self.least_preimage(value) is not None for value in self.image()
            )
        return bool(self._cache["admits_lp"])

    def least_right_inverse(self) -> "PosetMorphism":
        """The map ``f# : target -> source, y -> y_f``.

        Requires surjectivity and least preimages; raises
        :class:`PosetError` otherwise.  The result may or may not be
        monotone -- :meth:`is_least_right_invertible` checks that too.
        """
        if not self.is_surjective():
            raise PosetError("morphism is not surjective; f# undefined")
        table: Dict[Hashable, Hashable] = {}
        for value in self.target.elements:
            least = self.least_preimage(value)
            if least is None:
                raise PosetError(
                    f"value {value!r} has no least preimage; f# undefined"
                )
            table[value] = least
        return PosetMorphism(self.target, self.source, table)

    def is_least_right_invertible(self) -> bool:
        """Surjective, least preimages exist, and ``f#`` is a morphism."""
        if "lri" not in self._cache:
            try:
                sharp = self.least_right_inverse()
            except PosetError:
                self._cache["lri"] = False
            else:
                self._cache["lri"] = sharp.is_morphism()
        return bool(self._cache["lri"])

    def lp_set(self) -> frozenset:
        """``lp(f)``: the set of least preimages (fixpoints of ``f^Theta``)."""
        return frozenset(
            least
            for value in self.image()
            if (least := self.least_preimage(value)) is not None
        )

    def is_downward_stationary(self) -> bool:
        """True iff ``lp(f)`` is downward closed in the source poset."""
        if "down_stat" not in self._cache:
            self._cache["down_stat"] = self.source.is_down_set(self.lp_set())
        return bool(self._cache["down_stat"])

    def is_strong(self) -> bool:
        """Strong morphism: downward stationary + least right invertible.

        Also requires being a morphism at all (monotone, ⊥-preserving);
        the paper states strongness for morphisms only.
        """
        return (
            self.is_morphism()
            and self.is_least_right_invertible()
            and self.is_downward_stationary()
        )

    def endomorphism(self) -> "PosetMorphism":
        """``f^Theta = f# . f : source -> source`` (Lemma 2.3.1(a))."""
        sharp = self.least_right_inverse()
        return PosetMorphism(
            self.source,
            self.source,
            {e: sharp(self._table[e]) for e in self.source.elements},
        )


def order_isomorphic(
    mapping: Mapping[Hashable, Hashable],
    source: FinitePoset,
    target: FinitePoset,
) -> bool:
    """True iff *mapping* is an order isomorphism source -> target.

    Checks bijectivity onto the target's elements and order preservation
    in both directions.
    """
    values = list(mapping.values())
    if len(set(values)) != len(values):
        return False
    if set(values) != set(target.elements):
        return False
    if set(mapping) != set(source.elements):
        return False
    for x in source.elements:
        for y in source.elements:
            if source.leq(x, y) != target.leq(mapping[x], mapping[y]):
                return False
    return True
