"""Exhaustive solution enumeration: the semantic ground truth.

For a view update request, :class:`SolutionEnumerator` lists every base
state achieving the target view state, classifies each as extraneous /
nonextraneous / minimal (Definition 1.2.4), and reports the statistics
the paper's examples turn on: *is there a minimal solution at all?*
(Example 1.2.5: not always), *how many nonextraneous solutions are
there?* (more than one exactly when no minimal one exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.engine import Engine, current_engine
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.admissibility import (
    minimal_solution,
    nonextraneous_solutions,
)
from repro.views.view import View


@dataclass(frozen=True)
class SolutionReport:
    """Everything known about the solutions of one update request."""

    current: DatabaseInstance
    target: DatabaseInstance
    solutions: Tuple[DatabaseInstance, ...]
    nonextraneous: Tuple[DatabaseInstance, ...]
    minimal: Optional[DatabaseInstance]

    @property
    def solvable(self) -> bool:
        """At least one solution exists (surjectivity guarantees this
        for legal target view states)."""
        return bool(self.solutions)

    @property
    def has_minimal(self) -> bool:
        """A minimal solution exists."""
        return self.minimal is not None

    @property
    def extraneous_count(self) -> int:
        """Number of solutions that are extraneous."""
        return len(self.solutions) - len(self.nonextraneous)


class SolutionEnumerator:
    """Enumerate and classify all solutions of view update requests.

    The full fibre index ``view state -> preimages`` comes from the
    engine's artifact store, so enumerators over the same view and
    space -- across strategies, experiments, sessions -- share one
    tabulated inverse.
    """

    def __init__(
        self, view: View, space: StateSpace, engine: Optional[Engine] = None
    ):
        self.view = view
        self.space = space
        self.engine = engine if engine is not None else current_engine()
        self._fibres: Optional[
            Dict[DatabaseInstance, Tuple[DatabaseInstance, ...]]
        ] = None

    def solutions_for(
        self, target: DatabaseInstance
    ) -> Tuple[DatabaseInstance, ...]:
        """All base states achieving *target* (engine-memoized)."""
        if self._fibres is None:
            self._fibres = self.engine.preimage_index(self.view, self.space)
        return self._fibres.get(target, ())

    def report(
        self, current: DatabaseInstance, target: DatabaseInstance
    ) -> SolutionReport:
        """Full classification for one request."""
        solutions = self.solutions_for(target)
        nonextraneous = nonextraneous_solutions(
            self.view, self.space, current, target, solutions=solutions
        )
        minimal = minimal_solution(
            self.view, self.space, current, target, solutions=solutions
        )
        return SolutionReport(
            current=current,
            target=target,
            solutions=solutions,
            nonextraneous=nonextraneous,
            minimal=minimal,
        )

    def requests_without_minimal(
        self,
    ) -> Tuple[Tuple[DatabaseInstance, DatabaseInstance], ...]:
        """All (current, target) requests with no minimal solution.

        Example 1.2.5's phenomenon; non-empty output demonstrates that
        "always pick the minimal solution" is not a total strategy.
        """
        found = []
        targets = self.view.image_states(self.space)
        for current in self.space.states:
            for target in targets:
                report = self.report(current, target)
                if report.solvable and not report.has_minimal:
                    found.append((current, target))
        return tuple(found)
