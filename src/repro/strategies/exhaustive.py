"""Exhaustive solution enumeration: the semantic ground truth.

For a view update request, :class:`SolutionEnumerator` lists every base
state achieving the target view state, classifies each as extraneous /
nonextraneous / minimal (Definition 1.2.4), and reports the statistics
the paper's examples turn on: *is there a minimal solution at all?*
(Example 1.2.5: not always), *how many nonextraneous solutions are
there?* (more than one exactly when no minimal one exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.admissibility import (
    all_solutions,
    is_minimal_solution,
    is_nonextraneous_solution,
)
from repro.views.view import View


@dataclass(frozen=True)
class SolutionReport:
    """Everything known about the solutions of one update request."""

    current: DatabaseInstance
    target: DatabaseInstance
    solutions: Tuple[DatabaseInstance, ...]
    nonextraneous: Tuple[DatabaseInstance, ...]
    minimal: Optional[DatabaseInstance]

    @property
    def solvable(self) -> bool:
        """At least one solution exists (surjectivity guarantees this
        for legal target view states)."""
        return bool(self.solutions)

    @property
    def has_minimal(self) -> bool:
        """A minimal solution exists."""
        return self.minimal is not None

    @property
    def extraneous_count(self) -> int:
        """Number of solutions that are extraneous."""
        return len(self.solutions) - len(self.nonextraneous)


class SolutionEnumerator:
    """Enumerate and classify all solutions of view update requests."""

    def __init__(self, view: View, space: StateSpace):
        self.view = view
        self.space = space

    def report(
        self, current: DatabaseInstance, target: DatabaseInstance
    ) -> SolutionReport:
        """Full classification for one request."""
        solutions = all_solutions(self.view, self.space, target)
        nonextraneous = tuple(
            s
            for s in solutions
            if is_nonextraneous_solution(self.view, self.space, current, s)
        )
        minimal = next(
            (
                s
                for s in solutions
                if is_minimal_solution(self.view, self.space, current, s)
            ),
            None,
        )
        return SolutionReport(
            current=current,
            target=target,
            solutions=solutions,
            nonextraneous=nonextraneous,
            minimal=minimal,
        )

    def requests_without_minimal(
        self,
    ) -> Tuple[Tuple[DatabaseInstance, DatabaseInstance], ...]:
        """All (current, target) requests with no minimal solution.

        Example 1.2.5's phenomenon; non-empty output demonstrates that
        "always pick the minimal solution" is not a total strategy.
        """
        found = []
        targets = self.view.image_states(self.space)
        for current in self.space.states:
            for target in targets:
                report = self.report(current, target)
                if report.solvable and not report.has_minimal:
                    found.append((current, target))
        return tuple(found)
