"""Baseline update strategies the paper argues against (or improves on).

These are the comparators for the constant-component-complement
approach:

* :class:`~repro.strategies.exhaustive.SolutionEnumerator` -- brute
  enumeration of all/nonextraneous/minimal solutions to a view update
  (the semantic ground truth everything else is judged by);
* :class:`~repro.strategies.minimal_change.MinimalChangeStrategy` --
  "reflect with the smallest change" ([Kell82]-style); Example 1.2.7
  shows (and experiment E4 measures) that it is **not functorial**;
* :class:`~repro.strategies.minimal_change.NonextraneousPickStrategy`
  -- pick *some* nonextraneous solution deterministically; symmetric
  failures (Example 1.2.10, experiment E5) arise from insert/delete
  asymmetry;
* arbitrary-complement translation -- available directly as
  :class:`repro.core.constant_complement.ConstantComplementTranslator`
  with a non-strong complement (Example 1.3.6 / 3.3.1, experiment E12).
"""

from repro.strategies.exhaustive import SolutionEnumerator
from repro.strategies.minimal_change import (
    MinimalChangeStrategy,
    NonextraneousPickStrategy,
)

__all__ = [
    "MinimalChangeStrategy",
    "NonextraneousPickStrategy",
    "SolutionEnumerator",
]
