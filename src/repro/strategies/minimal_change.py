"""Minimal-change update strategies (the [Kell82]-style baseline).

The intuition "reflect a view update with the smallest base change" is
espoused in the related work the paper discusses (§1.2).  Two strategies
implement it:

* :class:`MinimalChangeStrategy` -- return the (inclusion-)minimal
  solution when one exists; when none does, either reject
  (``tie_break="reject"``) or fall back to a deterministic
  cardinality-minimal nonextraneous pick (``tie_break="pick"``).
* :class:`NonextraneousPickStrategy` -- always return *some*
  nonextraneous solution, chosen deterministically.

Both satisfy Requirement 1 (nonextraneousness) by construction.  The
paper's Examples 1.2.7 and 1.2.10 show -- and experiments E4/E5 verify
on these implementations -- that they fail functoriality and symmetry
respectively, which is precisely the motivation for the
constant-component-complement approach.
"""

from __future__ import annotations

from typing import Dict, Literal, Optional, Tuple

from repro.engine.engine import Engine, current_engine
from repro.errors import UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.admissibility import (
    minimal_solution,
    nonextraneous_solutions,
)
from repro.core.update import UpdateStrategy
from repro.views.view import View


def _deterministic_pick(current, candidates):
    """Smallest change-set cardinality, ties broken lexicographically."""
    return min(
        candidates,
        key=lambda s: (current.delta_size(s), repr(s)),
    )


class _EngineBackedStrategy(UpdateStrategy):
    """Shared plumbing: the fibre index comes from the engine's store."""

    def __init__(
        self,
        view: View,
        space: StateSpace,
        engine: Optional[Engine] = None,
    ):
        super().__init__(view, space)
        self.engine = engine if engine is not None else current_engine()
        self._fibres: Optional[
            Dict[DatabaseInstance, Tuple[DatabaseInstance, ...]]
        ] = None

    def solutions_for(
        self, target: DatabaseInstance
    ) -> Tuple[DatabaseInstance, ...]:
        if self._fibres is None:
            self._fibres = self.engine.preimage_index(self.view, self.space)
        return self._fibres.get(target, ())


class MinimalChangeStrategy(_EngineBackedStrategy):
    """Pick the minimal solution; configurable behaviour when none exists."""

    def __init__(
        self,
        view: View,
        space: StateSpace,
        tie_break: Literal["reject", "pick"] = "reject",
        engine: Optional[Engine] = None,
    ):
        super().__init__(view, space, engine)
        if tie_break not in ("reject", "pick"):
            # reprolint: disable=RL001 -- argument validation of the metric name; asserted by tests/strategies/test_minimal_change.py
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.tie_break = tie_break

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        solutions = self.solutions_for(target)
        minimal = minimal_solution(
            self.view, self.space, state, target, solutions=solutions
        )
        if minimal is not None:
            return minimal
        candidates = nonextraneous_solutions(
            self.view, self.space, state, target, solutions=solutions
        )
        if not candidates:
            raise UpdateRejected(
                f"no solution for target {target!r}", reason="no-solution"
            )
        if self.tie_break == "reject":
            raise UpdateRejected(
                f"{len(candidates)} incomparable nonextraneous solutions; "
                "no minimal one exists",
                reason="no-minimal",
            )
        return _deterministic_pick(state, candidates)


class NonextraneousPickStrategy(_EngineBackedStrategy):
    """Always return a deterministically chosen nonextraneous solution."""

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        candidates = nonextraneous_solutions(
            self.view,
            self.space,
            state,
            target,
            solutions=self.solutions_for(target),
        )
        if not candidates:
            raise UpdateRejected(
                f"no solution for target {target!r}", reason="no-solution"
            )
        return _deterministic_pick(state, candidates)
