"""Database instances: indexed sets of relations (paper §0.1 and 1.2.3).

A :class:`DatabaseInstance` assigns one :class:`~repro.relational.relations.Relation`
to each relation symbol.  Instances are immutable and hashable so they can
serve as elements of posets and partitions, keys of translation tables,
and members of enumerated state spaces.

Notational Convention 1.2.3 defines the set operations ``<=``, ``&``,
``|``, ``-`` and ``delta`` (symmetric difference) *relation by relation*;
they are provided here with the same operator spellings as for relations.
The symmetric difference is the measure used by Definition 1.2.4 to
compare update reflections: a solution ``s2`` to an update from ``s1`` is
judged by the "change set" ``s1 delta s2``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.errors import ArityError, UnknownRelationError
from repro.relational.relations import Relation, Row


class DatabaseInstance:
    """An immutable assignment of a relation to each relation symbol."""

    __slots__ = ("_relations", "_hash", "_repr")

    def __init__(self, relations: Mapping[str, Relation | Iterable[Sequence[object]]]):
        frozen: Dict[str, Relation] = {}
        for name, rel in relations.items():
            if not isinstance(rel, Relation):
                rel = Relation(rel)
            frozen[name] = rel
        self._relations: Dict[str, Relation] = frozen
        self._hash = hash(frozenset(frozen.items()))
        self._repr: str | None = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def empty(cls, arities: Mapping[str, int]) -> "DatabaseInstance":
        """The empty (null-model) instance for the given signature."""
        return cls({name: Relation((), ar) for name, ar in arities.items()})

    def replacing(self, name: str, relation: Relation) -> "DatabaseInstance":
        """A copy with the relation for *name* replaced."""
        if name not in self._relations:
            raise UnknownRelationError(f"no relation named {name!r}")
        updated = dict(self._relations)
        updated[name] = relation
        return DatabaseInstance(updated)

    def inserting(self, name: str, row: Sequence[object]) -> "DatabaseInstance":
        """A copy with *row* inserted into relation *name*."""
        return self.replacing(name, self.relation(name).with_row(row))

    def deleting(self, name: str, row: Sequence[object]) -> "DatabaseInstance":
        """A copy with *row* removed from relation *name*."""
        return self.replacing(name, self.relation(name).without_row(row))

    # -- basic protocol --------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """The relation symbols, sorted for determinism."""
        return tuple(sorted(self._relations))

    def relation(self, name: str) -> Relation:
        """The relation assigned to *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"no relation named {name!r}") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.relation_names)

    def items(self) -> Iterator[Tuple[str, Relation]]:
        """(name, relation) pairs in deterministic order."""
        for name in self.relation_names:
            yield name, self._relations[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> Dict[str, Relation]:
        # The cached hash is built on str hashes, which are randomized
        # per process; pickling it would poison cross-process set/dict
        # lookups on unpickled instances. Recompute it on load instead.
        return self._relations

    def __setstate__(self, state: Dict[str, Relation]) -> None:
        self._relations = state
        self._hash = hash(frozenset(state.items()))
        self._repr = None

    def __repr__(self) -> str:
        # Memoized: deterministic reprs are the tiebreaker of
        # :func:`sorted_instances`, so states are repr'd once per sort
        # they participate in.
        if self._repr is None:
            body = ", ".join(
                f"{name}={rel!r}" for name, rel in self.items()
            )
            self._repr = f"DatabaseInstance({body})"
        return self._repr

    def total_rows(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def is_empty(self) -> bool:
        """True iff every relation is empty (the null model)."""
        return all(rel.is_empty() for rel in self._relations.values())

    # -- relation-by-relation set operations (Notation 1.2.3) -----------------

    def _check_compatible(self, other: "DatabaseInstance") -> None:
        if not isinstance(other, DatabaseInstance):
            # reprolint: disable=RL001 -- TypeError on non-tuple rows is the documented dict-like contract
            raise TypeError(
                f"expected DatabaseInstance, got {type(other).__name__}"
            )
        if set(self._relations) != set(other._relations):
            raise UnknownRelationError(
                "instances over different relation symbols: "
                f"{sorted(self._relations)} vs {sorted(other._relations)}"
            )
        for name, rel in self._relations.items():
            if rel.arity != other._relations[name].arity:
                raise ArityError(
                    f"relation {name!r}: arity {rel.arity} vs "
                    f"{other._relations[name].arity}"
                )

    def _zip(self, other: "DatabaseInstance", op) -> "DatabaseInstance":
        self._check_compatible(other)
        return DatabaseInstance(
            {
                name: op(rel, other._relations[name])
                for name, rel in self._relations.items()
            }
        )

    def union(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Relation-wise union."""
        return self._zip(other, Relation.union)

    def intersection(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Relation-wise intersection."""
        return self._zip(other, Relation.intersection)

    def difference(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Relation-wise difference."""
        return self._zip(other, Relation.difference)

    def symmetric_difference(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Relation-wise symmetric difference -- the update change-set."""
        return self._zip(other, Relation.symmetric_difference)

    def issubset(self, other: "DatabaseInstance") -> bool:
        """Relation-wise inclusion (the ordering of ``LDB(D, mu)``)."""
        self._check_compatible(other)
        return all(
            rel.issubset(other._relations[name])
            for name, rel in self._relations.items()
        )

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference
    __le__ = issubset

    def __lt__(self, other: "DatabaseInstance") -> bool:
        return self.issubset(other) and self != other

    def delta(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Alias for :meth:`symmetric_difference` (the paper's Delta)."""
        return self.symmetric_difference(other)

    def delta_size(self, other: "DatabaseInstance") -> int:
        """Number of tuples in the symmetric difference with *other*."""
        self._check_compatible(other)
        return sum(
            len(rel.rows ^ other._relations[name].rows)
            for name, rel in self._relations.items()
        )

    def change_summary(self, other: "DatabaseInstance") -> Dict[str, Dict[str, Tuple[Row, ...]]]:
        """Human-readable diff: inserted/deleted rows per relation.

        Returns a mapping ``relation -> {"inserted": rows, "deleted": rows}``
        describing the update ``self -> other``; relations with no change
        are omitted.
        """
        self._check_compatible(other)
        summary: Dict[str, Dict[str, Tuple[Row, ...]]] = {}
        for name, rel in self.items():
            target = other._relations[name]
            inserted = target.difference(rel)
            deleted = rel.difference(target)
            if inserted.rows or deleted.rows:
                summary[name] = {
                    "inserted": inserted.sorted_rows(),
                    "deleted": deleted.sorted_rows(),
                }
        return summary


def sorted_instances(instances: Iterable[DatabaseInstance]) -> Tuple[DatabaseInstance, ...]:
    """Sort instances deterministically (by size, then by repr)."""
    return tuple(
        sorted(instances, key=lambda inst: (inst.total_rows(), repr(inst)))
    )
