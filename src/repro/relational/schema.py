"""Relational schemas: the pair ``(Rel(D), Con(D))`` (paper §0.1, §2.1).

A :class:`RelationSchema` declares one relation symbol -- its attribute
names and, optionally, a type expression per column.  A :class:`Schema`
collects finitely many relation schemas and a set of integrity
constraints; :meth:`Schema.is_legal` decides membership of an instance in
``LDB(D, mu)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.engine.fingerprint import stable_fingerprint
from repro.errors import (
    ArityError,
    ConstraintViolation,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.constraints import Constraint, TypedColumnsConstraint
from repro.relational.instances import DatabaseInstance
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import AtomicType, TypeExpr


@dataclass(frozen=True)
class RelationSchema:
    """One relation symbol: name, attributes, optional column types.

    When *column_types* is omitted, each attribute ``A`` defaults to the
    atomic type ``tau_A`` of the same name -- the traditional attribute
    discipline recovered inside the type-algebra framework (§2.1).
    """

    name: str
    attributes: Tuple[str, ...]
    column_types: Optional[Tuple[TypeExpr, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes"
            )
        if self.column_types is not None and len(self.column_types) != len(
            self.attributes
        ):
            raise ArityError(
                f"relation {self.name!r}: {len(self.column_types)} column "
                f"types for {len(self.attributes)} attributes"
            )

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.attributes)

    def effective_column_types(self) -> Tuple[TypeExpr, ...]:
        """Column types, defaulting attribute ``A`` to atom ``tau_A``."""
        if self.column_types is not None:
            return self.column_types
        return tuple(AtomicType(attr) for attr in self.attributes)

    def position(self, attribute: str) -> int:
        """0-based position of an attribute."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise UnknownAttributeError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def fingerprint(self) -> str:
        """Stable content hash of this relation schema."""
        return stable_fingerprint(
            "RelationSchema", self.name, self.attributes, self.column_types
        )


@dataclass(frozen=True)
class Schema:
    """A relational database schema ``D = (Rel(D), Con(D))``."""

    name: str
    relations: Tuple[RelationSchema, ...]
    constraints: Tuple[Constraint, ...] = ()
    #: When true (the default), column types are enforced as implicit
    #: typed-column constraints in addition to ``constraints``.
    enforce_column_types: bool = True
    _by_name: Mapping[str, RelationSchema] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        by_name: Dict[str, RelationSchema] = {}
        for rel in self.relations:
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            by_name[rel.name] = rel
        object.__setattr__(self, "_by_name", by_name)

    # -- lookups ---------------------------------------------------------------

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Relation symbols in declaration order."""
        return tuple(rel.name for rel in self.relations)

    def relation(self, name: str) -> RelationSchema:
        """The relation schema for *name*."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownRelationError(
                f"schema {self.name!r} has no relation {name!r}"
            ) from None

    def arities(self) -> Dict[str, int]:
        """Mapping relation name -> arity."""
        return {rel.name: rel.arity for rel in self.relations}

    def empty_instance(self) -> DatabaseInstance:
        """The null model (every relation empty)."""
        return DatabaseInstance.empty(self.arities())

    # -- legality ----------------------------------------------------------------

    def all_constraints(self) -> Tuple[Constraint, ...]:
        """Declared constraints plus implicit typed-column constraints."""
        implicit: List[Constraint] = []
        if self.enforce_column_types:
            for rel in self.relations:
                implicit.append(
                    TypedColumnsConstraint(rel.name, rel.effective_column_types())
                )
        return tuple(implicit) + self.constraints

    def conforms_to_signature(self, instance: DatabaseInstance) -> bool:
        """True iff *instance* has exactly this schema's relations/arities."""
        if set(instance.relation_names) != set(self.relation_names):
            return False
        return all(
            instance.relation(rel.name).arity == rel.arity
            for rel in self.relations
        )

    def is_legal(
        self, instance: DatabaseInstance, assignment: TypeAssignment
    ) -> bool:
        """Membership test for ``LDB(D, mu)``."""
        if not self.conforms_to_signature(instance):
            return False
        return all(
            constraint.holds(instance, self, assignment)
            for constraint in self.all_constraints()
        )

    def check_legal(
        self, instance: DatabaseInstance, assignment: TypeAssignment
    ) -> None:
        """Raise :class:`~repro.errors.ConstraintViolation` listing every
        violated constraint; return ``None`` if the instance is legal."""
        if not self.conforms_to_signature(instance):
            raise ConstraintViolation(
                f"instance signature does not match schema {self.name!r}"
            )
        violated = tuple(
            constraint
            for constraint in self.all_constraints()
            if not constraint.holds(instance, self, assignment)
        )
        if violated:
            details = "; ".join(c.describe() for c in violated)
            raise ConstraintViolation(
                f"instance violates {len(violated)} constraint(s): {details}",
                violations=violated,
            )

    def has_null_model_property(self, assignment: TypeAssignment) -> bool:
        """True iff the empty instance is legal (paper §2.3).

        The null model property is the precondition of every result in
        Section 3 of the paper.
        """
        return self.is_legal(self.empty_instance(), assignment)

    # -- fingerprinting ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the full ``(Rel(D), Con(D))`` pair.

        Two independently constructed but equal schemas fingerprint
        identically, so they share every artifact the engine layer
        derives (state spaces, analyses, component algebras).
        """
        return stable_fingerprint(
            "Schema",
            self.name,
            self.relations,
            self.constraints,
            self.enforce_column_types,
        )

    # -- construction helpers ------------------------------------------------------

    def with_constraints(self, extra: Iterable[Constraint]) -> "Schema":
        """A copy of this schema with additional constraints."""
        return Schema(
            name=self.name,
            relations=self.relations,
            constraints=self.constraints + tuple(extra),
            enforce_column_types=self.enforce_column_types,
        )

    def renamed(self, name: str) -> "Schema":
        """A copy of this schema under a different name."""
        return Schema(
            name=name,
            relations=self.relations,
            constraints=self.constraints,
            enforce_column_types=self.enforce_column_types,
        )
