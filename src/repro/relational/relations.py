"""Finite relations: sets of fixed-arity tuples.

A :class:`Relation` is an immutable, hashable wrapper around a frozenset
of equal-length tuples.  It supports the Boolean set operations (union,
intersection, difference, symmetric difference) that Notational
Convention 1.2.3 lifts relation-by-relation to whole database states,
plus the positional relational-algebra primitives that the query layer
(:mod:`repro.relational.queries`) builds on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.errors import ArityError

Row = Tuple[object, ...]


@lru_cache(maxsize=1 << 16)
def _sort_key(row: Row) -> Tuple[str, ...]:
    # Memoized: the same universe rows recur across every relation and
    # state of a space, and the deterministic row order (hence this key)
    # is recomputed for each repr-based instance sort.
    return tuple(repr(v) for v in row)


@lru_cache(maxsize=1 << 16)
def _row_repr(row: Row) -> str:
    # Memoized for the same reason as ``_sort_key``: relation reprs are
    # the instance-sort tiebreaker and rows recur across whole spaces.
    return repr(row)


class Relation:
    """An immutable finite relation of fixed arity.

    Parameters
    ----------
    rows:
        The tuples of the relation.  Every row must be a tuple of length
        *arity*.
    arity:
        Number of columns.  When omitted it is inferred from the rows;
        the empty relation then defaults to arity 0 unless given.
    """

    __slots__ = ("_rows", "_arity", "_repr")

    def __init__(self, rows: Iterable[Sequence[object]] = (), arity: int | None = None):
        frozen = frozenset(tuple(row) for row in rows)
        if arity is None:
            arities = {len(row) for row in frozen}
            if len(arities) > 1:
                raise ArityError(f"rows of mixed arity: {sorted(arities)}")
            arity = arities.pop() if arities else 0
        else:
            for row in frozen:
                if len(row) != arity:
                    raise ArityError(
                        f"row {row!r} has arity {len(row)}, expected {arity}"
                    )
        self._rows: FrozenSet[Row] = frozen
        self._arity = arity
        self._repr: str | None = None

    @classmethod
    def of_frozen(cls, rows: FrozenSet[Row], arity: int) -> "Relation":
        """Wrap an already-frozen set of arity-*arity* row tuples.

        Internal fast path for bulk constructions whose rows are frozen
        tuples by construction; skips the re-tupling and arity sweep of
        ``__init__``.  Callers are responsible for the invariant.
        """
        relation = cls.__new__(cls)
        relation._rows = rows
        relation._arity = arity
        relation._repr = None
        return relation

    # -- basic protocol ----------------------------------------------------

    @property
    def rows(self) -> FrozenSet[Row]:
        """The underlying frozenset of tuples."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of columns."""
        return self._arity

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, self._rows))

    def __repr__(self) -> str:
        # Memoized: deterministic reprs are the tiebreaker of every
        # instance sort, so the same immutable relation is repr'd often.
        if self._repr is None:
            body = ", ".join(_row_repr(row) for row in self.sorted_rows())
            self._repr = f"Relation[{self._arity}]{{{body}}}"
        return self._repr

    def sorted_rows(self) -> Tuple[Row, ...]:
        """Rows in a deterministic order (lexicographic by ``repr``)."""
        return tuple(sorted(self._rows, key=_sort_key))

    def is_empty(self) -> bool:
        """True iff the relation has no rows."""
        return not self._rows

    # -- set operations (same-arity) ----------------------------------------

    def _check_compatible(self, other: "Relation") -> None:
        if not isinstance(other, Relation):
            # reprolint: disable=RL001 -- TypeError on non-tuple rows is the documented dict-like contract; asserted by tests/relational/test_relations.py
            raise TypeError(f"expected Relation, got {type(other).__name__}")
        if self._arity != other._arity:
            raise ArityError(
                f"arity mismatch: {self._arity} vs {other._arity}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union of two same-arity relations."""
        self._check_compatible(other)
        return Relation(self._rows | other._rows, self._arity)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two same-arity relations."""
        self._check_compatible(other)
        return Relation(self._rows & other._rows, self._arity)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two same-arity relations."""
        self._check_compatible(other)
        return Relation(self._rows - other._rows, self._arity)

    def symmetric_difference(self, other: "Relation") -> "Relation":
        """Symmetric difference ``(A | B) - (A & B)`` (Notation 1.2.3)."""
        self._check_compatible(other)
        return Relation(self._rows ^ other._rows, self._arity)

    def issubset(self, other: "Relation") -> bool:
        """True iff every row of ``self`` is a row of ``other``."""
        self._check_compatible(other)
        return self._rows <= other._rows

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference
    __le__ = issubset

    def __lt__(self, other: "Relation") -> bool:
        self._check_compatible(other)
        return self._rows < other._rows

    def with_row(self, row: Sequence[object]) -> "Relation":
        """A new relation with *row* inserted."""
        row = tuple(row)
        if len(row) != self._arity:
            raise ArityError(
                f"row {row!r} has arity {len(row)}, expected {self._arity}"
            )
        return Relation(self._rows | {row}, self._arity)

    def without_row(self, row: Sequence[object]) -> "Relation":
        """A new relation with *row* removed (no-op if absent)."""
        row = tuple(row)
        return Relation(self._rows - {row}, self._arity)

    # -- positional relational algebra --------------------------------------

    def project(self, positions: Sequence[int]) -> "Relation":
        """Projection onto the given column positions (0-based).

        Positions may repeat or reorder columns.
        """
        for pos in positions:
            if not 0 <= pos < self._arity:
                raise ArityError(
                    f"position {pos} out of range for arity {self._arity}"
                )
        positions = tuple(positions)
        return Relation(
            {tuple(row[p] for p in positions) for row in self._rows},
            len(positions),
        )

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Selection of the rows satisfying *predicate*."""
        return Relation(
            {row for row in self._rows if predicate(row)}, self._arity
        )

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product (column concatenation)."""
        if not isinstance(other, Relation):
            # reprolint: disable=RL001 -- TypeError on non-tuple rows is the documented dict-like contract
            raise TypeError(f"expected Relation, got {type(other).__name__}")
        return Relation(
            {left + right for left in self._rows for right in other._rows},
            self._arity + other._arity,
        )

    def join_on(
        self, other: "Relation", pairs: Sequence[Tuple[int, int]]
    ) -> "Relation":
        """Equi-join on the given (self-position, other-position) pairs.

        The result keeps all of ``self``'s columns followed by the
        columns of ``other`` that are *not* join columns, in order --
        the standard natural-join column convention once names are
        resolved by the query layer.
        """
        for left_pos, right_pos in pairs:
            if not 0 <= left_pos < self._arity:
                raise ArityError(f"left position {left_pos} out of range")
            if not 0 <= right_pos < other._arity:
                raise ArityError(f"right position {right_pos} out of range")
        right_join_positions = {right for _, right in pairs}
        kept_right = [
            pos for pos in range(other._arity) if pos not in right_join_positions
        ]
        # Hash join: bucket the right side by its join-key.
        buckets: dict = {}
        for row in other._rows:
            key = tuple(row[right] for _, right in pairs)
            buckets.setdefault(key, []).append(row)
        out = set()
        for row in self._rows:
            key = tuple(row[left] for left, _ in pairs)
            for match in buckets.get(key, ()):
                out.add(row + tuple(match[p] for p in kept_right))
        return Relation(out, self._arity + len(kept_right))


#: The empty relation of a given arity, memoised for convenience.
def empty_relation(arity: int) -> Relation:
    """The empty relation with the given arity."""
    return Relation((), arity)
