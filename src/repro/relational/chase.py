"""The chase: closing an instance under tuple-generating dependencies.

The null-padded schemas of paper §2.1.1 are axiomatised by *full* TGDs
(subsumption rules and exact join dependencies, all with the null
constant and no existential head variables).  For full TGDs the chase
terminates at a unique least fixpoint: :func:`chase` computes the
smallest superset of an instance satisfying all the given dependencies.
This is how :mod:`repro.decomposition` materialises legal states from
freely chosen component parts.

Embedded (existential) TGDs are supported with fresh labelled nulls, but
termination is then only guaranteed by the ``max_rounds`` bound.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Set, Tuple

from repro.errors import EvaluationError
from repro.logic.terms import Const
from repro.relational.constraints import (
    TupleGeneratingDependency,
    _atom_matches,
)
from repro.relational.instances import DatabaseInstance
from repro.relational.relations import Relation


class LabelledNull:
    """A fresh value invented by the chase for an existential variable."""

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self, label: str | None = None):
        self.label = label if label is not None else f"_N{next(self._counter)}"

    def __repr__(self) -> str:
        return f"⊥{self.label}"


def chase_step(
    instance: DatabaseInstance,
    dependency: TupleGeneratingDependency,
    assignment=None,
) -> DatabaseInstance:
    """Apply one dependency everywhere it fires; returns a new instance.

    For each body homomorphism whose head is not yet satisfied, head
    tuples are added (with fresh labelled nulls for existential
    variables).  Returns the (possibly identical) resulting instance.
    Dependencies with type guards require *assignment*.
    """
    additions: Dict[str, Set[Tuple]] = {}
    existentials = dependency._existential_vars()
    if dependency.guards and assignment is None:
        raise EvaluationError(
            "dependency has type guards; chase needs a type assignment"
        )
    for binding in _atom_matches(dependency.body, instance):
        if dependency.guards and not dependency.binding_passes_guards(
            binding, assignment
        ):
            continue
        if dependency._check_head(binding, instance):
            continue
        if existentials and _head_satisfiable_somehow(
            dependency, binding, instance
        ):
            continue
        extended = dict(binding)
        for var in existentials:
            extended[var] = LabelledNull()
        for relation, terms in dependency.head:
            row = tuple(
                term.value if isinstance(term, Const) else extended[term]
                for term in terms
            )
            additions.setdefault(relation, set()).add(row)
    if not additions:
        return instance
    updated = {name: instance.relation(name) for name in instance}
    for name, rows in additions.items():
        updated[name] = Relation(
            updated[name].rows | rows, updated[name].arity
        )
    return DatabaseInstance(updated)


def _head_satisfiable_somehow(
    dependency: TupleGeneratingDependency,
    binding,
    instance: DatabaseInstance,
) -> bool:
    """Whether some assignment of existing values satisfies the head.

    Used to avoid inventing a null when existing tuples already witness
    the existential.
    """
    existentials = dependency._existential_vars()
    active: Set[object] = set()
    for name in instance:
        for row in instance.relation(name):
            active.update(row)
    for combo in itertools.product(sorted(active, key=repr), repeat=len(existentials)):
        extended = dict(binding)
        extended.update(zip(existentials, combo))
        if dependency._check_head(extended, instance):
            return True
    return False


def chase(
    instance: DatabaseInstance,
    dependencies: Iterable[TupleGeneratingDependency],
    max_rounds: int = 1000,
    assignment=None,
) -> DatabaseInstance:
    """Chase *instance* with the dependencies to a fixpoint.

    For full TGDs this is the unique least model containing the instance.
    Raises :class:`~repro.errors.EvaluationError` if no fixpoint is
    reached within *max_rounds* (possible only with embedded TGDs).
    """
    dependencies = tuple(dependencies)
    current = instance
    for _ in range(max_rounds):
        updated = current
        for dependency in dependencies:
            updated = chase_step(updated, dependency, assignment)
        if updated == current:
            return current
        current = updated
    raise EvaluationError(
        f"chase did not terminate within {max_rounds} rounds"
    )


def chase_closure_size(
    instance: DatabaseInstance,
    dependencies: Iterable[TupleGeneratingDependency],
    assignment=None,
) -> int:
    """Number of tuples added by the chase (for diagnostics/benchmarks)."""
    closed = chase(instance, dependencies, assignment=assignment)
    return closed.total_rows() - instance.total_rows()
