"""Relational-algebra query ASTs: the syntax of database mappings.

The paper defines a database mapping as an *interpretation* of the view's
language into the base language (§2.1) -- operationally, each view
relation is a definable query over the base schema.  This module provides
the query language: named-column relational algebra with projection,
selection, natural join, product, union, intersection, difference,
renaming, and the typed restriction ``pi^o`` used by the component views
of Example 2.1.1 (project *and* keep only rows whose dropped columns are
null / whose kept columns are non-null).

Every query node knows its output ``columns`` (a tuple of names) and can
``evaluate`` against a :class:`~repro.relational.instances.DatabaseInstance`
plus :class:`~repro.typealgebra.assignment.TypeAssignment`, producing a
:class:`~repro.relational.relations.Relation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Sequence, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.relational.instances import DatabaseInstance
from repro.relational.relations import Relation, Row
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import TypeExpr


class Query:
    """Abstract query node.

    Subclasses implement :attr:`columns` (output column names, in order)
    and :meth:`evaluate`.
    """

    @property
    def columns(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def arity(self) -> int:
        """Number of output columns."""
        return len(self.columns)

    def evaluate(
        self, instance: DatabaseInstance, assignment: TypeAssignment
    ) -> Relation:
        """Evaluate against an instance under a type assignment."""
        raise NotImplementedError

    def referenced_relations(self) -> FrozenSet[str]:
        """Names of the base relations this query reads (its read set).

        Subclasses must enumerate *exactly* the relations whose contents
        can influence :meth:`evaluate`; the bulk kernel relies on this
        to evaluate view image tables once per distinct restriction of a
        state to the read set.  Node types that cannot bound their reads
        must raise :class:`NotImplementedError` (callers then fall back
        to per-state evaluation).
        """
        raise NotImplementedError

    def distributes_over_union(self) -> bool:
        """True iff ``q(I) = union of q({r}) over the rows r of I``.

        Row-local queries -- projections, selections, restrictions,
        renames, references, and unions of such -- distribute over
        per-row decomposition of the input instance.  The bulk kernel
        uses this to compile a view's image table per codec *slot* and
        derive whole-state images as mask unions.  The default is
        ``False``: a node must opt in, never accidentally qualify.
        """
        return False

    def _position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise EvaluationError(
                f"query has no column {column!r} (columns: {self.columns})"
            ) from None

    # -- fluent construction helpers -------------------------------------------

    def project(self, columns: Sequence[str]) -> "Project":
        """Projection onto named columns."""
        return Project(self, tuple(columns))

    def where(self, predicate: Callable[..., bool], columns: Sequence[str]) -> "Select":
        """Selection by a predicate over the named columns."""
        return Select(self, predicate, tuple(columns))

    def join(self, other: "Query") -> "NaturalJoin":
        """Natural join on shared column names."""
        return NaturalJoin(self, other)

    def rename(self, mapping: dict) -> "Rename":
        """Rename output columns."""
        return Rename(self, tuple(mapping.items()))


@dataclass(frozen=True)
class RelationRef(Query):
    """Reference to a base relation, with its schema's column names."""

    relation: str
    _columns: Tuple[str, ...]

    @property
    def columns(self) -> Tuple[str, ...]:
        return self._columns

    def referenced_relations(self) -> FrozenSet[str]:
        return frozenset((self.relation,))

    def distributes_over_union(self) -> bool:
        return True

    def evaluate(self, instance, assignment) -> Relation:
        rel = instance.relation(self.relation)
        if rel.arity != len(self._columns):
            raise EvaluationError(
                f"relation {self.relation!r} has arity {rel.arity}, "
                f"reference declares {len(self._columns)} columns"
            )
        return rel

    @classmethod
    def of(cls, schema, relation: str) -> "RelationRef":
        """Reference relation *relation* of *schema* with its attributes."""
        return cls(relation, schema.relation(relation).attributes)


@dataclass(frozen=True)
class Project(Query):
    """Projection onto named columns (may reorder; duplicates removed)."""

    source: Query
    keep: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.keep)) != len(self.keep):
            raise SchemaError(f"duplicate projection columns {self.keep}")

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.keep

    def referenced_relations(self) -> FrozenSet[str]:
        return self.source.referenced_relations()

    def distributes_over_union(self) -> bool:
        return self.source.distributes_over_union()

    def evaluate(self, instance, assignment) -> Relation:
        source_rel = self.source.evaluate(instance, assignment)
        positions = [self.source._position(c) for c in self.keep]
        return source_rel.project(positions)


@dataclass(frozen=True)
class Select(Query):
    """Selection by a Python predicate over named columns.

    The predicate receives the values of *over* (in order) as positional
    arguments.  For a logic-level selection use
    :class:`TypedRestrict` or encode the condition in the view schema's
    constraints instead.
    """

    source: Query
    predicate: Callable[..., bool]
    over: Tuple[str, ...]

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.source.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return self.source.referenced_relations()

    def distributes_over_union(self) -> bool:
        return self.source.distributes_over_union()

    def evaluate(self, instance, assignment) -> Relation:
        source_rel = self.source.evaluate(instance, assignment)
        positions = [self.source._position(c) for c in self.over]

        def keep(row: Row) -> bool:
            return bool(self.predicate(*(row[p] for p in positions)))

        return source_rel.select(keep)


@dataclass(frozen=True)
class TypedRestrict(Query):
    """Rows whose column values satisfy given type expressions.

    ``conditions`` maps column name -> type expression; a row survives
    iff every named column's value lies in the extension of its type.
    Combined with :class:`Project` this expresses the paper's restriction
    mappings ``rho(R(tau1, ..., taun))`` and the ``pi^o`` projections of
    Example 2.1.1.
    """

    source: Query
    conditions: Tuple[Tuple[str, TypeExpr], ...]

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.source.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return self.source.referenced_relations()

    def distributes_over_union(self) -> bool:
        return self.source.distributes_over_union()

    def evaluate(self, instance, assignment) -> Relation:
        source_rel = self.source.evaluate(instance, assignment)
        checks = [
            (self.source._position(column), assignment.extension(type_expr))
            for column, type_expr in self.conditions
        ]

        def keep(row: Row) -> bool:
            return all(row[pos] in ext for pos, ext in checks)

        return source_rel.select(keep)


@dataclass(frozen=True)
class NaturalJoin(Query):
    """Natural join on shared column names.

    Output columns: all of the left's, then the right's non-shared ones.
    """

    left: Query
    right: Query

    @property
    def columns(self) -> Tuple[str, ...]:
        shared = set(self.left.columns) & set(self.right.columns)
        return self.left.columns + tuple(
            c for c in self.right.columns if c not in shared
        )

    def referenced_relations(self) -> FrozenSet[str]:
        return (
            self.left.referenced_relations()
            | self.right.referenced_relations()
        )

    def evaluate(self, instance, assignment) -> Relation:
        left_rel = self.left.evaluate(instance, assignment)
        right_rel = self.right.evaluate(instance, assignment)
        shared = [c for c in self.left.columns if c in self.right.columns]
        pairs = [
            (self.left._position(c), self.right._position(c)) for c in shared
        ]
        if not pairs:
            return left_rel.product(right_rel)
        return left_rel.join_on(right_rel, pairs)


@dataclass(frozen=True)
class Product(Query):
    """Cartesian product; column names must be disjoint."""

    left: Query
    right: Query

    def __post_init__(self) -> None:
        overlap = set(self.left.columns) & set(self.right.columns)
        if overlap:
            raise SchemaError(
                f"product operands share columns {sorted(overlap)}; rename first"
            )

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.left.columns + self.right.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return (
            self.left.referenced_relations()
            | self.right.referenced_relations()
        )

    def evaluate(self, instance, assignment) -> Relation:
        return self.left.evaluate(instance, assignment).product(
            self.right.evaluate(instance, assignment)
        )


def _check_union_compatible(left: Query, right: Query) -> None:
    if left.arity != right.arity:
        raise SchemaError(
            f"operands have arities {left.arity} and {right.arity}"
        )


@dataclass(frozen=True)
class Union(Query):
    """Set union; operands must have equal arity (left's names win)."""

    left: Query
    right: Query

    def __post_init__(self) -> None:
        _check_union_compatible(self.left, self.right)

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.left.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return (
            self.left.referenced_relations()
            | self.right.referenced_relations()
        )

    def distributes_over_union(self) -> bool:
        return (
            self.left.distributes_over_union()
            and self.right.distributes_over_union()
        )

    def evaluate(self, instance, assignment) -> Relation:
        return self.left.evaluate(instance, assignment).union(
            self.right.evaluate(instance, assignment)
        )


@dataclass(frozen=True)
class Intersection(Query):
    """Set intersection; operands must have equal arity."""

    left: Query
    right: Query

    def __post_init__(self) -> None:
        _check_union_compatible(self.left, self.right)

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.left.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return (
            self.left.referenced_relations()
            | self.right.referenced_relations()
        )

    def evaluate(self, instance, assignment) -> Relation:
        return self.left.evaluate(instance, assignment).intersection(
            self.right.evaluate(instance, assignment)
        )


@dataclass(frozen=True)
class Difference(Query):
    """Set difference; operands must have equal arity."""

    left: Query
    right: Query

    def __post_init__(self) -> None:
        _check_union_compatible(self.left, self.right)

    @property
    def columns(self) -> Tuple[str, ...]:
        return self.left.columns

    def referenced_relations(self) -> FrozenSet[str]:
        return (
            self.left.referenced_relations()
            | self.right.referenced_relations()
        )

    def evaluate(self, instance, assignment) -> Relation:
        return self.left.evaluate(instance, assignment).difference(
            self.right.evaluate(instance, assignment)
        )


@dataclass(frozen=True)
class Rename(Query):
    """Rename output columns (mapping old-name -> new-name)."""

    source: Query
    mapping: Tuple[Tuple[str, str], ...]

    @property
    def columns(self) -> Tuple[str, ...]:
        table = dict(self.mapping)
        return tuple(table.get(c, c) for c in self.source.columns)

    def referenced_relations(self) -> FrozenSet[str]:
        return self.source.referenced_relations()

    def distributes_over_union(self) -> bool:
        return self.source.distributes_over_union()

    def evaluate(self, instance, assignment) -> Relation:
        return self.source.evaluate(instance, assignment)
