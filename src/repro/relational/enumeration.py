"""Enumeration of ``LDB(D, mu)``: the finite state space of a schema.

All of the paper's analyses -- kernels and the partition lattice (§2.2),
strongness (§2.3), complements, translation tables -- are questions about
the set of legal databases under relation-by-relation inclusion.  Over a
finite type assignment that set is finite, and :class:`StateSpace`
materialises it together with its ⊥-poset structure.

Enumeration is exponential by nature (it is a powerset construction);
two mitigations keep it practical for the paper-scale universes used
throughout the library:

* **per-relation pruning** -- constraints mentioning a single relation
  (FDs, JDs, typed columns, single-relation TGDs) filter that relation's
  subsets *before* the cross product is formed;
* **generator-provided states** -- schemas with a known closed form for
  their legal states (e.g. the null-padded chain schemas of
  :mod:`repro.decomposition`) build a :class:`StateSpace` directly via
  :meth:`StateSpace.from_states`, skipping enumeration entirely.

A ``max_candidates`` budget guards against accidental blow-up.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.engine.fingerprint import stable_fingerprint
from repro.errors import (
    EnumerationError,
    IllegalInstanceError,
    StateSpaceTooLargeError,
)
from repro.algebra.poset import FinitePoset
from repro.kernel.bitspace import TupleCodec
from repro.kernel.config import fast_kernel_enabled
from repro.kernel.enumfast import legal_subset_masks
from repro.relational.constraints import (
    Constraint,
    EqualityGeneratingDependency,
    FunctionalDependency,
    InclusionDependency,
    JoinDependency,
    TupleGeneratingDependency,
    TypedColumnsConstraint,
)
from repro.relational.instances import DatabaseInstance, sorted_instances
from repro.relational.relations import Relation
from repro.relational.schema import Schema
from repro.resilience.faults import current_plan
from repro.resilience.guard import current_guard
from repro.typealgebra.assignment import TypeAssignment


def constraint_relations(constraint: Constraint) -> Optional[FrozenSet[str]]:
    """The relations a constraint mentions, or ``None`` if unknown.

    Used to classify constraints as per-relation (prunable) vs global.
    """
    if isinstance(
        constraint, (FunctionalDependency, JoinDependency, TypedColumnsConstraint)
    ):
        return frozenset({constraint.relation})
    if isinstance(constraint, InclusionDependency):
        return frozenset({constraint.source, constraint.target})
    if isinstance(constraint, TupleGeneratingDependency):
        return frozenset(
            name for name, _ in constraint.body + constraint.head
        )
    if isinstance(constraint, EqualityGeneratingDependency):
        return frozenset(name for name, _ in constraint.body)
    return None


def tuple_universe(
    schema: Schema, relation: str, assignment: TypeAssignment
) -> Tuple[Tuple[object, ...], ...]:
    """All tuples a relation could contain, per its column types."""
    rel_schema = schema.relation(relation)
    column_values = [
        assignment.sorted_extension(t)
        for t in rel_schema.effective_column_types()
    ]
    return tuple(itertools.product(*column_values))


def _subsets(rows: Tuple[Tuple[object, ...], ...]) -> Iterator[FrozenSet]:
    # reprolint: disable=RL002 -- lazy generator: every consumer is the
    # naive relation_choices loop, which ticks per yielded subset
    for mask in range(1 << len(rows)):
        subset = frozenset(
            rows[i] for i in range(len(rows)) if mask & (1 << i)
        )
        yield subset


def enumerate_instances(
    schema: Schema,
    assignment: TypeAssignment,
    max_candidates: int = 1 << 22,
    prune: bool = True,
) -> Iterator[DatabaseInstance]:
    """Yield every instance of ``LDB(D, mu)``.

    With *prune* (default), per-relation constraints filter each
    relation's subsets before the cross product; global constraints are
    checked on the assembled candidates.  Without it, every candidate in
    the full cross product is checked against every constraint -- the
    naive baseline measured by benchmark S4.

    Raises :class:`~repro.errors.StateSpaceTooLargeError` if the number
    of candidate instances exceeds *max_candidates*.
    """
    universes = {
        rel.name: tuple_universe(schema, rel.name, assignment)
        for rel in schema.relations
    }
    candidate_count = 1
    # reprolint: disable=RL002 -- bounded by the schema's relation count
    for name, rows in universes.items():
        subset_count = 1 << len(rows)
        # Even with pruning, every relation's subset loop iterates
        # 2^|universe| candidates before any filtering can discard one,
        # so the budget must bound each relation individually.
        if subset_count > max_candidates:
            raise StateSpaceTooLargeError(
                f"{subset_count} candidate subsets for relation {name!r} "
                f"of schema {schema.name!r} exceed the budget of "
                f"{max_candidates}"
            )
        candidate_count *= subset_count
        if candidate_count > max_candidates and not prune:
            raise StateSpaceTooLargeError(
                f"{candidate_count}+ candidate instances of schema "
                f"{schema.name!r} exceed the budget of {max_candidates}"
            )

    all_constraints = schema.all_constraints()
    if prune:
        per_relation: Dict[str, List[Constraint]] = {
            rel.name: [] for rel in schema.relations
        }
        global_constraints: List[Constraint] = []
        # reprolint: disable=RL002 -- bounded by the declared constraints
        for constraint in all_constraints:
            relations = constraint_relations(constraint)
            if relations is not None and len(relations) == 1:
                per_relation[next(iter(relations))].append(constraint)
            else:
                global_constraints.append(constraint)
    else:
        per_relation = {rel.name: [] for rel in schema.relations}
        global_constraints = list(all_constraints)

    names = [rel.name for rel in schema.relations]
    arities = schema.arities()

    use_bitset = fast_kernel_enabled()

    def relation_choices(name: str) -> List[Relation]:
        choices = []
        singleton_constraints = per_relation[name]
        rows = universes[name]
        arity = arities[name]
        if use_bitset:
            # Constraints compiled once to mask predicates; legal masks
            # arrive in ascending numeric order, matching `_subsets`.
            row_count = len(rows)
            # reprolint: disable=RL002 -- legal_subset_masks ticks (and
            # fault-checks) once per candidate inside the generator
            for mask in legal_subset_masks(
                schema, assignment, name, rows, singleton_constraints
            ):
                subset = [
                    rows[i] for i in range(row_count) if (mask >> i) & 1
                ]
                choices.append(Relation(subset, arity))
            return choices
        other_empty = {
            other: Relation((), arities[other]) for other in names
        }
        guard = current_guard()
        plan = current_plan()
        for subset in _subsets(rows):
            if guard is not None:
                guard.tick()
            if plan is not None:
                plan.check("enumeration.step")
            relation = Relation(subset, arity)
            if singleton_constraints:
                probe = DatabaseInstance({**other_empty, name: relation})
                if not all(
                    c.holds(probe, schema, assignment)
                    for c in singleton_constraints
                ):
                    continue
            choices.append(relation)
        return choices

    choice_lists = [relation_choices(name) for name in names]
    pruned_count = 1
    # reprolint: disable=RL002 -- bounded by the schema's relation count
    for choices in choice_lists:
        pruned_count *= len(choices)
    if pruned_count > max_candidates:
        raise StateSpaceTooLargeError(
            f"{pruned_count} candidate instances of schema "
            f"{schema.name!r} (after pruning) exceed the budget of "
            f"{max_candidates}"
        )

    guard = current_guard()
    plan = current_plan()
    for combo in itertools.product(*choice_lists):
        if guard is not None:
            guard.tick()
        if plan is not None:
            plan.check("enumeration.step")
        instance = DatabaseInstance(dict(zip(names, combo)))
        if all(
            c.holds(instance, schema, assignment) for c in global_constraints
        ):
            yield instance


class StateSpace:
    """The enumerated set ``LDB(D, mu)`` with its ⊥-poset structure.

    Construct via :meth:`enumerate` (generic, powerset-based) or
    :meth:`from_states` (caller-supplied states, e.g. from a closed-form
    generator).  States are kept in a deterministic order; the poset is
    built lazily on first use.
    """

    __slots__ = (
        "schema",
        "assignment",
        "_states",
        "_index",
        "_poset",
        "_codec",
        "_masks",
        "_fingerprint",
    )

    def __init__(
        self,
        schema: Schema,
        assignment: TypeAssignment,
        states: Iterable[DatabaseInstance],
    ):
        self.schema = schema
        self.assignment = assignment
        self._states: Tuple[DatabaseInstance, ...] = sorted_instances(states)
        if not self._states:
            raise EnumerationError("state space is empty")
        self._index: Dict[DatabaseInstance, int] = {
            s: i for i, s in enumerate(self._states)
        }
        if len(self._index) != len(self._states):
            raise EnumerationError("duplicate states supplied")
        self._poset: Optional[FinitePoset] = None
        self._codec: Optional[TupleCodec] = None
        self._masks: Optional[Tuple[int, ...]] = None
        self._fingerprint: Optional[str] = None

    @classmethod
    def enumerate(
        cls,
        schema: Schema,
        assignment: TypeAssignment,
        max_candidates: int = 1 << 22,
        prune: bool = True,
    ) -> "StateSpace":
        """Enumerate ``LDB(D, mu)`` (see :func:`enumerate_instances`)."""
        states = tuple(
            enumerate_instances(schema, assignment, max_candidates, prune)
        )
        return cls(schema, assignment, states)

    @classmethod
    def from_states(
        cls,
        schema: Schema,
        assignment: TypeAssignment,
        states: Iterable[DatabaseInstance],
        validate: bool = True,
    ) -> "StateSpace":
        """Wrap caller-supplied states; optionally re-check legality."""
        states = tuple(states)
        if validate:
            guard = current_guard()
            for state in states:
                if guard is not None:
                    guard.tick()
                if not schema.is_legal(state, assignment):
                    raise IllegalInstanceError(
                        f"supplied state is not legal: {state!r}"
                    )
        return cls(schema, assignment, states)

    # -- container protocol ------------------------------------------------------

    @property
    def states(self) -> Tuple[DatabaseInstance, ...]:
        """All legal states, deterministically ordered."""
        return self._states

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[DatabaseInstance]:
        return iter(self._states)

    def __contains__(self, state: object) -> bool:
        return state in self._index

    def index(self, state: DatabaseInstance) -> int:
        """Index of a state (raises ``KeyError`` if not legal/present)."""
        return self._index[state]

    # -- bitset kernel -------------------------------------------------------------

    @property
    def codec(self) -> TupleCodec:
        """The tuple codec over the rows observed across all states.

        Built from the states themselves (not the typed universe) so it
        also covers generator-built spaces whose rows may fall outside
        any typed universe.
        """
        if self._codec is None:
            self._codec = TupleCodec.from_instances(self._states)
        return self._codec

    @property
    def masks(self) -> Tuple[int, ...]:
        """Per-state bitmasks under :attr:`codec`, in state order."""
        if self._masks is None:
            self._masks = self.codec.encode_all(self._states)
        return self._masks

    # -- poset structure -----------------------------------------------------------

    @property
    def poset(self) -> FinitePoset:
        """The ⊥-poset of states under relation-wise inclusion."""
        if self._poset is None:
            self._poset = (
                FinitePoset.from_masks(self._states, self.masks)
                if fast_kernel_enabled()
                else FinitePoset.from_leq(
                    self._states, lambda a, b: a.issubset(b)
                )
            )
        return self._poset

    def leq(self, low: DatabaseInstance, high: DatabaseInstance) -> bool:
        """Relation-wise inclusion between two states."""
        return low.issubset(high)

    def bottom(self) -> DatabaseInstance:
        """The least state; the null model when the schema has the
        null model property."""
        return self.poset.bottom()

    def has_null_model(self) -> bool:
        """True iff the empty instance is a state."""
        return self.schema.empty_instance() in self._index

    def join(
        self, a: DatabaseInstance, b: DatabaseInstance
    ) -> Optional[DatabaseInstance]:
        """Least upper bound within the state space, or ``None``.

        Fast path: if the relation-wise union is itself legal it is the
        join; otherwise fall back to the poset search.
        """
        union = a.union(b)
        if union in self._index:
            return union
        return self.poset.join(a, b)

    def meet(
        self, a: DatabaseInstance, b: DatabaseInstance
    ) -> Optional[DatabaseInstance]:
        """Greatest lower bound within the state space, or ``None``."""
        intersection = a.intersection(b)
        if intersection in self._index:
            return intersection
        return self.poset.meet(a, b)

    # -- identity ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of ``(D, mu, LDB(D, mu))`` (memoized).

        Hashing the states themselves (not just the schema and
        assignment) keeps generator-built spaces honest: two spaces over
        the same schema but different supplied state sets differ.
        """
        if self._fingerprint is None:
            self._fingerprint = stable_fingerprint(
                "StateSpace", self.schema, self.assignment, self._states
            )
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSpace):
            return NotImplemented
        if self is other:
            return True
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # -- pickling ------------------------------------------------------------------
    #
    # Lazy derived structure (poset, codec, masks) is rebuilt on demand;
    # the memoized fingerprint is dropped because spaces over schemas
    # with transient mappings are only fingerprintable in-process.

    def __getstate__(self):
        return (self.schema, self.assignment, self._states)

    def __setstate__(self, state) -> None:
        schema, assignment, states = state
        self.__init__(schema, assignment, states)

    def __repr__(self) -> str:
        return (
            f"StateSpace({self.schema.name!r}, {len(self._states)} states)"
        )
