"""A small text syntax for queries and constraints.

View definitions and integrity constraints in examples and interactive
sessions read better as text than as nested constructors.  The grammar
is deliberately tiny and close to classical notation:

Queries (``parse_query``, schema-aware)::

    R_SP                                  relation reference
    project[S, P](R_SPJ)                  projection
    restrict[C: eta, D: eta](R)           typed restriction (atoms, |)
    join(R_SP, R_PJ)                      natural join
    product(a, b) / union(a, b) / intersect(a, b) / diff(a, b)
    rename[S -> X](R_SP)

Constraints (``parse_constraint``)::

    R: A -> B, C                          functional dependency
    R: *[A B, B C]                        join dependency
    R[A, B] <= S[X, Y]                    inclusion dependency

Compositions nest arbitrarily:
``project[S, J](join(R_SP, R_PJ))``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import SchemaError
from repro.relational.constraints import (
    Constraint,
    FunctionalDependency,
    InclusionDependency,
    JoinDependency,
)
from repro.relational.queries import (
    Difference,
    Intersection,
    NaturalJoin,
    Product,
    Project,
    Query,
    RelationRef,
    Rename,
    TypedRestrict,
    Union,
)
from repro.relational.schema import Schema
from repro.typealgebra.types import AtomicType, TypeExpr, disjunction_of


class QueryParseError(SchemaError):
    """The query/constraint text is not well formed."""


_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<arrow>->)"
    r"|(?P<punct>[\[\](),|:]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if not match:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryParseError(
                f"unexpected character at: {remainder[:20]!r}"
            )
        position = match.end()
        if match.group("name"):
            tokens.append(("name", match.group("name")))
        elif match.group("arrow"):
            tokens.append(("arrow", "->"))
        else:
            tokens.append(("punct", match.group("punct")))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    OPERATORS = {
        "project",
        "restrict",
        "rename",
        "join",
        "product",
        "union",
        "intersect",
        "diff",
    }

    def __init__(self, tokens: List[Tuple[str, str]], schema: Schema):
        self.tokens = tokens
        self.position = 0
        self.schema = schema

    # -- token helpers -----------------------------------------------------------

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of input")
        self.position += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise QueryParseError(
                f"expected {value or kind!r}, got {token[1]!r}"
            )
        return token[1]

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # -- grammar ------------------------------------------------------------------

    def parse_expr(self) -> Query:
        kind, value = self.next()
        if kind != "name":
            raise QueryParseError(f"expected a name, got {value!r}")
        if value in self.OPERATORS:
            return self.parse_operator(value)
        return RelationRef.of(self.schema, value)

    def parse_operator(self, operator: str) -> Query:
        bracket = None
        if self.peek() == ("punct", "["):
            self.next()
            bracket = self.parse_bracket_contents(operator)
            self.expect("punct", "]")
        self.expect("punct", "(")
        operands = [self.parse_expr()]
        while self.peek() == ("punct", ","):
            self.next()
            operands.append(self.parse_expr())
        self.expect("punct", ")")
        return self.build(operator, bracket, operands)

    def parse_bracket_contents(self, operator: str):
        if operator == "project":
            return self.parse_name_list()
        if operator == "restrict":
            return self.parse_typed_conditions()
        if operator == "rename":
            return self.parse_renames()
        raise QueryParseError(
            f"operator {operator!r} takes no [...] arguments"
        )

    def parse_name_list(self) -> Tuple[str, ...]:
        names = [self.expect("name")]
        while self.peek() == ("punct", ","):
            self.next()
            names.append(self.expect("name"))
        return tuple(names)

    def parse_typed_conditions(self) -> Tuple[Tuple[str, TypeExpr], ...]:
        conditions = [self.parse_one_condition()]
        while self.peek() == ("punct", ","):
            self.next()
            conditions.append(self.parse_one_condition())
        return tuple(conditions)

    def parse_one_condition(self) -> Tuple[str, TypeExpr]:
        column = self.expect("name")
        self.expect("punct", ":")
        atoms = [AtomicType(self.expect("name"))]
        while self.peek() == ("punct", "|"):
            self.next()
            atoms.append(AtomicType(self.expect("name")))
        return (column, disjunction_of(atoms))

    def parse_renames(self) -> Tuple[Tuple[str, str], ...]:
        renames = [self.parse_one_rename()]
        while self.peek() == ("punct", ","):
            self.next()
            renames.append(self.parse_one_rename())
        return tuple(renames)

    def parse_one_rename(self) -> Tuple[str, str]:
        old = self.expect("name")
        self.expect("arrow")
        new = self.expect("name")
        return (old, new)

    def build(self, operator: str, bracket, operands: List[Query]) -> Query:
        def unary() -> Query:
            if len(operands) != 1:
                raise QueryParseError(
                    f"{operator!r} takes one operand, got {len(operands)}"
                )
            return operands[0]

        def binary() -> Tuple[Query, Query]:
            if len(operands) != 2:
                raise QueryParseError(
                    f"{operator!r} takes two operands, got {len(operands)}"
                )
            return operands[0], operands[1]

        if operator == "project":
            if bracket is None:
                raise QueryParseError("project needs [columns]")
            return Project(unary(), bracket)
        if operator == "restrict":
            if bracket is None:
                raise QueryParseError("restrict needs [col: type, ...]")
            return TypedRestrict(unary(), bracket)
        if operator == "rename":
            if bracket is None:
                raise QueryParseError("rename needs [old -> new, ...]")
            return Rename(unary(), bracket)
        if bracket is not None:
            raise QueryParseError(f"{operator!r} takes no [...] arguments")
        if operator == "join":
            left, right = binary()
            return NaturalJoin(left, right)
        if operator == "product":
            left, right = binary()
            return Product(left, right)
        if operator == "union":
            left, right = binary()
            return Union(left, right)
        if operator == "intersect":
            left, right = binary()
            return Intersection(left, right)
        if operator == "diff":
            left, right = binary()
            return Difference(left, right)
        raise QueryParseError(f"unknown operator {operator!r}")


def parse_query(text: str, schema: Schema) -> Query:
    """Parse a relational-algebra expression against a schema.

    >>> # project[S, J](join(R_SP, R_PJ)) etc.; see module docstring.
    """
    parser = _Parser(_tokenize(text), schema)
    query = parser.parse_expr()
    if not parser.at_end():
        leftover = parser.tokens[parser.position:]
        raise QueryParseError(f"trailing input: {leftover!r}")
    return query


# -- constraints -----------------------------------------------------------------


_FD = re.compile(
    r"^\s*(?P<rel>\w+)\s*:\s*(?P<lhs>[\w\s,]+?)\s*->\s*(?P<rhs>[\w\s,]+?)\s*$"
)
_JD = re.compile(r"^\s*(?P<rel>\w+)\s*:\s*\*\[(?P<groups>[^\]]*)\]\s*$")
_IND = re.compile(
    r"^\s*(?P<src>\w+)\s*\[(?P<src_attrs>[^\]]*)\]\s*<=\s*"
    r"(?P<tgt>\w+)\s*\[(?P<tgt_attrs>[^\]]*)\]\s*$"
)


def _attr_list(text: str) -> Tuple[str, ...]:
    attrs = tuple(a.strip() for a in text.split(",") if a.strip())
    if not attrs:
        raise QueryParseError(f"empty attribute list in {text!r}")
    return attrs


def parse_constraint(text: str) -> Constraint:
    """Parse one constraint (FD / JD / IND); see the module docstring."""
    match = _JD.match(text)
    if match:
        groups = []
        for group in match.group("groups").split(","):
            attrs = tuple(group.split())
            if not attrs:
                raise QueryParseError(f"empty JD component in {text!r}")
            groups.append(attrs)
        return JoinDependency(match.group("rel"), tuple(groups))
    match = _IND.match(text)
    if match:
        return InclusionDependency(
            match.group("src"),
            _attr_list(match.group("src_attrs")),
            match.group("tgt"),
            _attr_list(match.group("tgt_attrs")),
        )
    match = _FD.match(text)
    if match:
        return FunctionalDependency(
            match.group("rel"),
            _attr_list(match.group("lhs")),
            _attr_list(match.group("rhs")),
        )
    raise QueryParseError(f"unrecognised constraint syntax: {text!r}")
