"""Integrity constraints: the ``Con(D)`` half of a schema.

Every constraint exposes:

* :meth:`Constraint.holds` -- fast native satisfaction check over a
  :class:`~repro.relational.instances.DatabaseInstance`;
* :meth:`Constraint.to_formula` -- a rendering into the first-order
  language of :mod:`repro.logic`, witnessing the paper's position that
  all of these are first-order sentences (§2.1).  Tests cross-validate
  the two evaluations.

The classes provided cover everything the paper's examples use and the
classical dependencies the related work ([DaBe78], [CoPa83], ...)
assumes: functional, join, and inclusion dependencies, typed columns,
and general tuple/equality-generating dependencies (which also drive the
chase in :mod:`repro.relational.chase`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, is_dataclass
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError
from repro.logic.formulas import (
    And,
    Eq,
    Formula,
    Implies,
    RelAtom,
    TypeAtom,
    and_all,
    exists_all,
    forall_all,
)
from repro.logic.terms import Const, Term, Var
from repro.relational.instances import DatabaseInstance
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import TypeExpr


class Constraint:
    """Abstract base class of all integrity constraints."""

    def fingerprint(self) -> str:
        """Stable content hash (used by the engine's artifact cache).

        Concrete constraints are frozen dataclasses over declarative
        content (attribute tuples, type expressions, formulas), so the
        generic dataclass tokenization covers them all.
        """
        from repro.engine.fingerprint import (
            dataclass_token,
            stable_fingerprint,
        )

        if is_dataclass(self):
            return stable_fingerprint(dataclass_token(self))
        return stable_fingerprint(type(self).__qualname__, repr(self))

    def holds(
        self,
        instance: DatabaseInstance,
        schema: "Schema",  # noqa: F821 -- forward reference, resolved at runtime
        assignment: TypeAssignment,
    ) -> bool:
        """True iff *instance* satisfies this constraint."""
        raise NotImplementedError

    def to_formula(self, schema) -> Formula:
        """Render this constraint as a first-order sentence."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        return repr(self)


def _positions(schema, relation: str, attributes: Sequence[str]) -> Tuple[int, ...]:
    rel_schema = schema.relation(relation)
    out = []
    for attr in attributes:
        try:
            out.append(rel_schema.attributes.index(attr))
        except ValueError:
            raise UnknownAttributeError(
                f"relation {relation!r} has no attribute {attr!r}"
            ) from None
    return tuple(out)


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """``relation : lhs -> rhs`` -- rows agreeing on *lhs* agree on *rhs*."""

    relation: str
    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.lhs:
            raise SchemaError("functional dependency needs a non-empty LHS")
        if not self.rhs:
            raise SchemaError("functional dependency needs a non-empty RHS")

    def holds(self, instance, schema, assignment) -> bool:
        lhs_pos = _positions(schema, self.relation, self.lhs)
        rhs_pos = _positions(schema, self.relation, self.rhs)
        seen: Dict[Tuple, Tuple] = {}
        for row in instance.relation(self.relation):
            key = tuple(row[p] for p in lhs_pos)
            value = tuple(row[p] for p in rhs_pos)
            if seen.setdefault(key, value) != value:
                return False
        return True

    def to_formula(self, schema) -> Formula:
        rel_schema = schema.relation(self.relation)
        arity = rel_schema.arity
        xs = tuple(Var(f"x{i}") for i in range(arity))
        ys = tuple(Var(f"y{i}") for i in range(arity))
        lhs_pos = _positions(schema, self.relation, self.lhs)
        rhs_pos = _positions(schema, self.relation, self.rhs)
        body = And(RelAtom(self.relation, xs), RelAtom(self.relation, ys))
        agree_lhs = and_all(Eq(xs[p], ys[p]) for p in lhs_pos)
        agree_rhs = and_all(Eq(xs[p], ys[p]) for p in rhs_pos)
        return forall_all(xs + ys, Implies(And(body, agree_lhs), agree_rhs))

    def describe(self) -> str:
        return (
            f"{self.relation}: {','.join(self.lhs)} -> {','.join(self.rhs)}"
        )


@dataclass(frozen=True)
class JoinDependency(Constraint):
    """``relation : *[X1, ..., Xk]`` -- the relation equals the join of
    its projections onto the attribute sets ``Xi``.

    The components must cover all attributes of the relation.
    """

    relation: str
    components: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise SchemaError("join dependency needs at least two components")

    def holds(self, instance, schema, assignment) -> bool:
        rel_schema = schema.relation(self.relation)
        covered = {attr for comp in self.components for attr in comp}
        if covered != set(rel_schema.attributes):
            raise SchemaError(
                f"join dependency components must cover {rel_schema.attributes}"
            )
        rows = instance.relation(self.relation).rows
        if not rows:
            return True
        positions = [
            _positions(schema, self.relation, comp) for comp in self.components
        ]
        projections = [
            {tuple(row[p] for p in pos) for row in rows} for pos in positions
        ]
        # A candidate joined row assigns a value to every attribute such
        # that each component projection is present; the JD holds iff
        # every such candidate is already a row.
        attr_values: Dict[str, set] = {
            attr: {row[i] for row in rows}
            for i, attr in enumerate(rel_schema.attributes)
        }
        attrs = rel_schema.attributes
        for combo in itertools.product(*(sorted(attr_values[a], key=repr) for a in attrs)):
            candidate = dict(zip(attrs, combo))
            in_all = all(
                tuple(candidate[attrs[p]] for p in pos) in proj
                for pos, proj in zip(positions, projections)
            )
            if in_all and combo not in rows:
                return False
        return True

    def to_formula(self, schema) -> Formula:
        rel_schema = schema.relation(self.relation)
        attrs = rel_schema.attributes
        xs = {attr: Var(f"x_{attr}") for attr in attrs}
        conjuncts = []
        extra_vars = []
        for index, comp in enumerate(self.components):
            terms = []
            for attr in attrs:
                if attr in comp:
                    terms.append(xs[attr])
                else:
                    fresh = Var(f"z{index}_{attr}")
                    extra_vars.append(fresh)
                    terms.append(fresh)
            conjuncts.append(
                exists_all(
                    [t for t in terms if isinstance(t, Var) and t not in xs.values()],
                    RelAtom(self.relation, tuple(terms)),
                )
            )
        body = and_all(conjuncts)
        head = RelAtom(self.relation, tuple(xs[a] for a in attrs))
        return forall_all(tuple(xs[a] for a in attrs), Implies(body, head))

    def describe(self) -> str:
        comps = ", ".join("".join(c) for c in self.components)
        return f"{self.relation}: ⋈[{comps}]"


@dataclass(frozen=True)
class InclusionDependency(Constraint):
    """``source[source_attrs] <= target[target_attrs]``."""

    source: str
    source_attrs: Tuple[str, ...]
    target: str
    target_attrs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.source_attrs) != len(self.target_attrs):
            raise SchemaError("inclusion dependency sides must have equal width")

    def holds(self, instance, schema, assignment) -> bool:
        src_pos = _positions(schema, self.source, self.source_attrs)
        tgt_pos = _positions(schema, self.target, self.target_attrs)
        target_proj = {
            tuple(row[p] for p in tgt_pos)
            for row in instance.relation(self.target)
        }
        return all(
            tuple(row[p] for p in src_pos) in target_proj
            for row in instance.relation(self.source)
        )

    def to_formula(self, schema) -> Formula:
        src_arity = schema.relation(self.source).arity
        tgt_arity = schema.relation(self.target).arity
        xs = tuple(Var(f"x{i}") for i in range(src_arity))
        src_pos = _positions(schema, self.source, self.source_attrs)
        tgt_pos = _positions(schema, self.target, self.target_attrs)
        tgt_terms: list[Term] = []
        existentials = []
        for i in range(tgt_arity):
            if i in tgt_pos:
                tgt_terms.append(xs[src_pos[tgt_pos.index(i)]])
            else:
                fresh = Var(f"y{i}")
                existentials.append(fresh)
                tgt_terms.append(fresh)
        head = exists_all(existentials, RelAtom(self.target, tuple(tgt_terms)))
        return forall_all(xs, Implies(RelAtom(self.source, xs), head))

    def describe(self) -> str:
        return (
            f"{self.source}[{','.join(self.source_attrs)}] ⊆ "
            f"{self.target}[{','.join(self.target_attrs)}]"
        )


@dataclass(frozen=True)
class TypedColumnsConstraint(Constraint):
    """Every value of column *i* satisfies the column's type expression.

    This is the paper's axiom ``R(x, y, ...) -> tau1(x) ^ tau2(y) ^ ...``
    that records the "attribute definition" of a relation (Example 2.1.1).
    """

    relation: str
    column_types: Tuple[TypeExpr, ...]

    def holds(self, instance, schema, assignment) -> bool:
        extensions = [assignment.extension(t) for t in self.column_types]
        for row in instance.relation(self.relation):
            if len(row) != len(extensions):
                return False
            for value, extension in zip(row, extensions):
                if value not in extension:
                    return False
        return True

    def to_formula(self, schema) -> Formula:
        xs = tuple(Var(f"x{i}") for i in range(len(self.column_types)))
        head = and_all(
            TypeAtom(t, x) for t, x in zip(self.column_types, xs)
        )
        return forall_all(xs, Implies(RelAtom(self.relation, xs), head))

    def describe(self) -> str:
        return f"{self.relation} columns typed {self.column_types!r}"


Atom = Tuple[str, Tuple[Term, ...]]
"""A relational atom pattern: ``(relation_name, terms)``."""


def _atom_matches(
    atoms: Sequence[Atom], instance: DatabaseInstance
) -> Iterator[Dict[Var, object]]:
    """All homomorphisms of the atom conjunction into *instance*."""

    def extend(
        index: int, binding: Dict[Var, object]
    ) -> Iterator[Dict[Var, object]]:
        if index == len(atoms):
            yield dict(binding)
            return
        relation, terms = atoms[index]
        for row in instance.relation(relation):
            if len(row) != len(terms):
                continue
            local = dict(binding)
            ok = True
            for term, value in zip(terms, row):
                if isinstance(term, Const):
                    if term.value != value:
                        ok = False
                        break
                elif isinstance(term, Var):
                    if term in local and local[term] != value:
                        ok = False
                        break
                    local[term] = value
                else:
                    raise SchemaError(f"unsupported term {term!r}")
            if ok:
                yield from extend(index + 1, local)

    yield from extend(0, {})


@dataclass(frozen=True)
class TupleGeneratingDependency(Constraint):
    """A (full or embedded) tuple-generating dependency.

    ``body -> exists Z . head``: for every homomorphism of the body atoms
    into the instance there is an extension to the existential variables
    of the head making every head atom true.  Full TGDs (no existential
    variables) are the workhorse of the null-padded schemas of §2.1.1:
    subsumption rules and exact join dependencies are all full TGDs with
    the null constant.

    ``guards`` optionally types body variables: a binding only fires the
    dependency when each guarded variable's value lies in the extension
    of its type expression.  The paper's chain axioms use this to say
    "x is a genuine A-value, not the null" (the ``tau_A(x)`` conjuncts
    of Example 2.1.1).
    """

    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    name: str = ""
    guards: Tuple[Tuple[Var, TypeExpr], ...] = ()

    def _existential_vars(self) -> Tuple[Var, ...]:
        body_vars = {
            t for _, terms in self.body for t in terms if isinstance(t, Var)
        }
        head_vars = {
            t for _, terms in self.head for t in terms if isinstance(t, Var)
        }
        return tuple(sorted(head_vars - body_vars, key=lambda v: v.name))

    def is_full(self) -> bool:
        """True iff the head has no existential variables."""
        return not self._existential_vars()

    def binding_passes_guards(self, binding, assignment) -> bool:
        """Whether a body homomorphism satisfies the type guards."""
        return all(
            var not in binding
            or assignment.satisfies(binding[var], type_expr)
            for var, type_expr in self.guards
        )

    def holds(self, instance, schema, assignment) -> bool:
        existentials = self._existential_vars()
        for binding in _atom_matches(self.body, instance):
            if not self.binding_passes_guards(binding, assignment):
                continue
            if self._head_satisfied(binding, existentials, instance, assignment):
                continue
            return False
        return True

    def _head_satisfied(
        self, binding, existentials, instance, assignment
    ) -> bool:
        if not existentials:
            return self._check_head(binding, instance)
        universe = sorted(assignment.universe, key=repr)
        for combo in itertools.product(universe, repeat=len(existentials)):
            extended = dict(binding)
            extended.update(zip(existentials, combo))
            if self._check_head(extended, instance):
                return True
        return False

    def _check_head(self, binding: Mapping[Var, object], instance) -> bool:
        for relation, terms in self.head:
            row = []
            for term in terms:
                if isinstance(term, Const):
                    row.append(term.value)
                else:
                    if term not in binding:
                        return False
                    row.append(binding[term])
            if tuple(row) not in instance.relation(relation):
                return False
        return True

    def to_formula(self, schema) -> Formula:
        body_vars = sorted(
            {t for _, terms in self.body for t in terms if isinstance(t, Var)},
            key=lambda v: v.name,
        )
        existentials = self._existential_vars()
        conjuncts: list[Formula] = [
            RelAtom(r, terms) for r, terms in self.body
        ]
        conjuncts.extend(
            TypeAtom(type_expr, var) for var, type_expr in self.guards
        )
        body = and_all(conjuncts)
        head = and_all(RelAtom(r, terms) for r, terms in self.head)
        return forall_all(body_vars, Implies(body, exists_all(existentials, head)))

    def describe(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"TGD{label}: {self.body!r} -> {self.head!r}"


@dataclass(frozen=True)
class EqualityGeneratingDependency(Constraint):
    """``body -> left = right`` for variables bound by the body."""

    body: Tuple[Atom, ...]
    left: Var
    right: Var
    name: str = ""

    def holds(self, instance, schema, assignment) -> bool:
        return all(
            binding.get(self.left) == binding.get(self.right)
            for binding in _atom_matches(self.body, instance)
        )

    def to_formula(self, schema) -> Formula:
        body_vars = sorted(
            {t for _, terms in self.body for t in terms if isinstance(t, Var)},
            key=lambda v: v.name,
        )
        body = and_all(RelAtom(r, terms) for r, terms in self.body)
        return forall_all(body_vars, Implies(body, Eq(self.left, self.right)))

    def describe(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"EGD{label}: {self.body!r} -> {self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class FormulaConstraint(Constraint):
    """An arbitrary first-order sentence as a constraint."""

    formula: Formula
    name: str = ""

    def holds(self, instance, schema, assignment) -> bool:
        from repro.logic.evaluation import holds as formula_holds

        return formula_holds(self.formula, instance, assignment)

    def to_formula(self, schema) -> Formula:
        return self.formula

    def describe(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.formula!r}"
