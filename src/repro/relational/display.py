"""Rendering relations and instances as the paper's tables.

The paper presents every instance as a small attribute-headed table;
these helpers produce the same layout in plain text, so examples and
interactive sessions can show states the way the paper prints them
(nulls rendered as ``n``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.relational.instances import DatabaseInstance
from repro.relational.relations import Relation
from repro.relational.schema import Schema


def _cell(value: object) -> str:
    return repr(value) if isinstance(value, str) else str(value)


def render_relation(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render one relation as an attribute-headed table.

    >>> print(render_relation(Relation({("a", "b")}), ("A", "B")))
    A   | B
    ----+----
    'a' | 'b'
    """
    attributes = tuple(
        attributes
        if attributes is not None
        else (f"c{i}" for i in range(relation.arity))
    )
    rows = [[_cell(v) for v in row] for row in relation.sorted_rows()]
    widths = [len(a) for a in attributes]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(attributes))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in rows)
    if not rows:
        out.append("(empty)")
    return "\n".join(out)


def render_instance(
    instance: DatabaseInstance, schema: Optional[Schema] = None
) -> str:
    """Render every relation of an instance, schema-aware when given."""
    blocks = []
    for name, relation in instance.items():
        attributes = None
        if schema is not None and name in {
            rel.name for rel in schema.relations
        }:
            attributes = schema.relation(name).attributes
        blocks.append(
            render_relation(relation, attributes, title=f"{name}:")
        )
    return "\n\n".join(blocks) if blocks else "(no relations)"


def render_update(
    before: DatabaseInstance, after: DatabaseInstance
) -> str:
    """Render an update as a +/- change list (the examples' format)."""
    summary = before.change_summary(after)
    if not summary:
        return "(no change)"
    lines: List[str] = []
    for name, diff in sorted(summary.items()):
        for row in diff["inserted"]:
            lines.append(f"+ {name}({', '.join(_cell(v) for v in row)})")
        for row in diff["deleted"]:
            lines.append(f"- {name}({', '.join(_cell(v) for v in row)})")
    return "\n".join(lines)
