"""The relational substrate: relations, instances, schemas, constraints.

This package implements everything the paper takes for granted about
relational databases:

* :class:`~repro.relational.relations.Relation` -- a finite set of
  fixed-arity tuples with the usual set and relational-algebra operations;
* :class:`~repro.relational.instances.DatabaseInstance` -- an indexed set
  of relations, one per relation symbol, with the relation-by-relation
  set operations of Notational Convention 1.2.3 (including symmetric
  difference ``delta``, the measure used to define nonextraneous and
  minimal update reflections);
* :class:`~repro.relational.schema.Schema` -- the pair
  ``(Rel(D), Con(D))`` of relation symbols and integrity constraints;
* :mod:`~repro.relational.constraints` -- functional, join, and inclusion
  dependencies, typed columns, tuple/equality-generating dependencies,
  and arbitrary first-order constraints;
* :mod:`~repro.relational.queries` -- a relational-algebra query AST used
  to define database mappings (the paper's "interpretations");
* :mod:`~repro.relational.enumeration` -- enumeration of ``LDB(D, mu)``
  over a finite type assignment, producing the
  :class:`~repro.relational.enumeration.StateSpace` on which all lattice,
  strongness, and update analyses run;
* :mod:`~repro.relational.chase` -- the chase procedure for
  tuple/equality-generating dependencies.
"""

from repro.relational.relations import Relation
from repro.relational.instances import DatabaseInstance
from repro.relational.schema import RelationSchema, Schema
from repro.relational.constraints import (
    Constraint,
    EqualityGeneratingDependency,
    FormulaConstraint,
    FunctionalDependency,
    InclusionDependency,
    JoinDependency,
    TupleGeneratingDependency,
    TypedColumnsConstraint,
)
from repro.relational.queries import (
    Difference,
    Intersection,
    NaturalJoin,
    Product,
    Project,
    Query,
    RelationRef,
    Rename,
    Select,
    TypedRestrict,
    Union,
)
from repro.relational.enumeration import StateSpace, enumerate_instances
from repro.relational.parser import parse_constraint, parse_query
from repro.relational.display import render_instance, render_relation, render_update

__all__ = [
    "Constraint",
    "DatabaseInstance",
    "Difference",
    "EqualityGeneratingDependency",
    "FormulaConstraint",
    "FunctionalDependency",
    "InclusionDependency",
    "Intersection",
    "JoinDependency",
    "NaturalJoin",
    "Product",
    "Project",
    "Query",
    "Relation",
    "RelationRef",
    "RelationSchema",
    "Rename",
    "Schema",
    "Select",
    "StateSpace",
    "TupleGeneratingDependency",
    "TypedColumnsConstraint",
    "TypedRestrict",
    "Union",
    "enumerate_instances",
    "parse_constraint",
    "parse_query",
    "render_instance",
    "render_relation",
    "render_update",
]
