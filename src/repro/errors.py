"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the important cases:

* schema/definition-time problems (:class:`SchemaError`,
  :class:`ArityError`, :class:`UnknownRelationError`, ...);
* state-time problems (:class:`ConstraintViolation`,
  :class:`IllegalInstanceError`);
* update-time outcomes (:class:`UpdateRejected` -- *not* a bug, but the
  paper's "update not allowed" verdict of Definition 0.1.2(c));
* analysis failures (:class:`NotStrongError`, :class:`NotAComplementError`,
  :class:`NotSurjectiveError`) raised when a view does not have the
  structure an algorithm requires.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema, relation schema, or constraint is ill-formed."""


class ArityError(SchemaError):
    """A tuple or column reference does not match a relation's arity."""


class UnknownRelationError(SchemaError):
    """A relation name was used that the schema does not declare."""


class UnknownAttributeError(SchemaError):
    """An attribute name was used that the relation does not declare."""


class TypeAlgebraError(ReproError):
    """A type expression or type assignment is ill-formed or inconsistent."""


class EvaluationError(ReproError):
    """A query or formula could not be evaluated over an instance."""


class IllegalInstanceError(ReproError):
    """An instance violates its schema's integrity constraints."""

    def __init__(self, message: str, violations: tuple = ()) -> None:
        super().__init__(message)
        #: The constraints found violated, when the caller collected them.
        self.violations = violations


class ConstraintViolation(IllegalInstanceError):
    """A specific constraint is violated by an instance."""


class EnumerationError(ReproError):
    """State-space enumeration failed or exceeded its configured budget."""


class StateSpaceTooLargeError(EnumerationError):
    """Enumerating ``LDB(D, mu)`` would exceed the ``max_states`` budget."""


class NotSurjectiveError(ReproError):
    """A view mapping is not surjective onto its declared view schema.

    The paper (Section 1.1) *assumes* surjectivity of every view mapping;
    algorithms that rely on it raise this error instead of silently
    producing wrong answers.
    """


class NotStrongError(ReproError):
    """A view is not a strong view, but the operation requires one.

    Carries the :class:`~repro.core.strong.StrongViewAnalysis` that
    documents which of the defining conditions failed, when available.
    """

    def __init__(self, message: str, analysis=None) -> None:
        super().__init__(message)
        self.analysis = analysis


class NotAComplementError(ReproError):
    """Two views were expected to be (join/meet) complementary but are not."""


class NotComparableError(ReproError):
    """A view was expected to define another (``<=`` in View(D)) but does not."""


class UpdateRejected(ReproError):
    """The requested view update is not allowed by the update strategy.

    This is the formal "undefined" outcome of an update strategy
    (Definition 0.1.2(c)): raising it is the normal way a strategy refuses
    an update, not a sign of library malfunction.
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        #: Machine-readable reason tag (e.g. ``"no-solution"``,
        #: ``"image-mismatch"``, ``"not-constant"``).
        self.reason = reason


class NoSolutionError(UpdateRejected):
    """No base state at all maps to the requested view state."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="no-solution")


class AmbiguousSolutionError(ReproError):
    """More than one solution satisfied a condition that must pin down one.

    With a genuine join complement this cannot happen (Theorem 1.3.2); the
    error therefore signals that the alleged complement is not one.
    """


class PosetError(ReproError):
    """A poset operation failed (no bottom, no least upper bound, ...)."""


class NotABooleanAlgebraError(ReproError):
    """A candidate element set fails the Boolean algebra axioms."""


class ResilienceError(ReproError):
    """Base class for the fail-closed resilience layer's typed failures.

    The library's contract (Definition 0.1.2(c) generalised to the whole
    system) is that it either answers correctly or *visibly* refuses: a
    runaway derivation, a crashed kernel, or a rotten cache entry must
    surface as a subclass of this error, never as a bare ``KeyError`` or
    a silent wrong answer.
    """


class BackendError(ResilienceError):
    """Base class for artifact-storage-backend failures."""


class BackendConfigError(BackendError):
    """The backend selection knobs are malformed (unknown name, missing
    URL).  Raised eagerly: a typo'd ``REPRO_STORE_BACKEND`` must not
    silently mean "no persistence"."""


class BackendUnavailableError(BackendError):
    """A configured backend failed to open (unreachable file, corrupt
    database, injected fault).  The store absorbs it by degrading to
    memory-only operation."""


class DeadlineExceededError(ResilienceError):
    """A derivation ran past its wall-clock deadline or step budget.

    Raised cooperatively from inside the enumeration and kernel hot
    loops by :class:`repro.resilience.guard.ExecutionGuard`, so a
    pathological schema fails closed instead of hanging the session.
    """

    def __init__(
        self,
        message: str,
        elapsed_ms: float = 0.0,
        deadline_ms=None,
        steps: int = 0,
        max_steps=None,
    ) -> None:
        super().__init__(message)
        #: Wall-clock milliseconds spent when the guard tripped.
        self.elapsed_ms = elapsed_ms
        #: The configured deadline in milliseconds (``None`` if unset).
        self.deadline_ms = deadline_ms
        #: Cooperative steps counted when the guard tripped.
        self.steps = steps
        #: The configured step budget (``None`` if unset).
        self.max_steps = max_steps


class KernelFailureError(ResilienceError):
    """A kernel derivation crashed with an unexpected exception.

    The engine's degradation ladder (bulk -> bitset -> naive -> typed
    failure) raises this only after every rung below the starting
    kernel also failed -- or when the naive kernel, with no rung left
    below it, crashed directly.  Every traceback is carried so the
    underlying defect is not lost.
    """

    def __init__(
        self,
        message: str,
        kind: str = "",
        bitset_traceback: str = "",
        naive_traceback: str = "",
        bulk_traceback: str = "",
    ) -> None:
        super().__init__(message)
        #: The artifact kind being derived ("space", "analysis", ...).
        self.kind = kind
        #: Formatted traceback of the bulk-kernel failure ("" if the
        #: bulk kernel was never involved).
        self.bulk_traceback = bulk_traceback
        #: Formatted traceback of the bitset-kernel failure ("" if the
        #: bitset kernel was never involved).
        self.bitset_traceback = bitset_traceback
        #: Formatted traceback of the naive-kernel failure.
        self.naive_traceback = naive_traceback


class CircuitOpenError(ResilienceError):
    """A derivation's circuit breaker is open: failing fast, not retrying.

    After ``threshold`` consecutive :class:`KernelFailureError`\\ s for
    one ``(kind, fingerprint)`` derivation, the engine's
    :class:`~repro.resilience.breaker.CircuitBreaker` stops re-running
    the degradation ladder and raises this instead -- a deterministic
    crash re-crashing on every request would otherwise burn a full
    bitset + naive build per caller.  The breaker re-probes after a
    cooldown (half-open), and :meth:`Engine.reset_breaker` clears it
    manually.
    """

    def __init__(
        self,
        message: str,
        kind: str = "",
        fingerprint: str = "",
        failures: int = 0,
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        #: The artifact kind being derived ("space", "analysis", ...).
        self.kind = kind
        #: Fingerprint of the derivation's inputs.
        self.fingerprint = fingerprint
        #: Consecutive kernel failures recorded when the circuit opened.
        self.failures = failures
        #: Milliseconds until the breaker will allow a half-open probe.
        self.retry_after_ms = retry_after_ms


class ServingError(ResilienceError):
    """Base class for the async update server's typed failures.

    The serving tier's contract extends the library's fail-closed rule
    to overload: when offered load exceeds capacity the server *sheds*
    requests with a typed, retry-aware refusal -- it never queues
    unboundedly, never wedges, and never crashes the process.
    """


class ServerOverloadedError(ServingError):
    """Admission refused: a bounded queue is full (or the breaker says
    the work is doomed).  Maps to HTTP 503 with a ``Retry-After`` hint
    derived from observed service times, so well-behaved clients back
    off instead of hammering a saturated server.
    """

    def __init__(
        self,
        message: str,
        queue: str = "",
        depth: int = 0,
        limit: int = 0,
        retry_after_ms: float = 0.0,
    ) -> None:
        super().__init__(message)
        #: The admission queue that refused (priority name, or
        #: ``"breaker"`` for circuit-open fast-fail).
        self.queue = queue
        #: Entries queued when admission was refused.
        self.depth = depth
        #: The configured bound of that queue.
        self.limit = limit
        #: Suggested client backoff before retrying.
        self.retry_after_ms = retry_after_ms


class ServerDrainingError(ServerOverloadedError):
    """Admission refused because the server is draining (SIGTERM):
    in-flight requests finish, new ones are shed with a retry hint."""


class RequestProtocolError(ServingError):
    """A wire request could not be parsed (malformed JSON, missing
    fields, bad instance encoding).  Maps to HTTP 400."""


class WarmStartError(ServingError):
    """A sibling warm-start build died before publishing its artifacts.

    Raised by :func:`repro.serving.warmstart.sibling_warm_start` when
    the builder process exits nonzero, times out, or leaves no artifact
    store behind -- a typed verdict instead of a traceback, so service
    wrappers can fall back to a cold start deliberately.
    """


class UnexpectedFailureError(ResilienceError):
    """An update-servicing step crashed outside any typed failure path.

    The last line of defence in :meth:`Session.update`: whatever slipped
    through the degradation ladder and the store's hardening is wrapped
    here (with the original exception chained) so callers still see a
    :class:`ReproError` subclass.
    """


class LintError(ReproError):
    """A ``repro.lint`` run could not proceed (bad paths, bad baseline,
    unknown rule id).  Rule *findings* are data, not exceptions; this is
    for failures of the lint machinery itself."""
