"""Null-padded chain decompositions (paper §2.1.1, 2.3.4, 3.2.4).

Example 2.1.1 shows how to make a join dependency *exact* by
formalising value-inapplicable nulls inside the type algebra: the
relation ``R[A,B,C,D]`` with ``⋈[AB, BC, CD]`` stores, alongside every
full tuple, its null-padded subsumed projections, axiomatised by
first-order subsumption and join rules.  The payoff is that the
``pi^o`` restriction views (``Gamma_AB^o``, ``Gamma_BC^o``, ...) become
*truly independent* strong views, generating a component algebra of
``2^(k-1)`` elements for a chain of ``k`` attributes.

:class:`~repro.decomposition.chain.ChainSchema` generalises the example
to arbitrary attribute chains and provides:

* the schema (single relation, nullable column types, a closure
  constraint equivalent to the paper's subsumption + join axioms, with
  TGD renderings for cross-validation);
* a **closed-form state generator** -- legal states correspond
  bijectively to free choices of the edge relations, so ``LDB`` is
  enumerated without the powerset-and-filter blow-up;
* the component views for every subset of edges, and plain projection
  views (like ``Gamma_ABD`` of Example 3.2.4) for non-strong-view
  experiments.
"""

from repro.decomposition.nulls import pad_row, segment_of, valid_segments
from repro.decomposition.chain import ChainConstraint, ChainSchema
from repro.decomposition.projections import projection_view
from repro.decomposition.updates import ChainComponentUpdater, TreeComponentUpdater
from repro.decomposition.tree import TreeSchema
from repro.decomposition.horizontal import HorizontalSchema, HorizontalUpdater

__all__ = [
    "ChainComponentUpdater",
    "ChainConstraint",
    "ChainSchema",
    "HorizontalSchema",
    "HorizontalUpdater",
    "TreeComponentUpdater",
    "TreeSchema",
    "pad_row",
    "projection_view",
    "segment_of",
    "valid_segments",
]
