"""Null-pattern utilities for chain-decomposed relations.

In a null-padded chain relation over attributes ``A1 ... Ak``, every
tuple's non-null positions form a contiguous *segment* ``[i, j]`` with
``j > i`` (at least two non-null columns -- the paper's instances and
the constraints of Example 3.2.4(iii) exclude one-column and all-null
patterns).  These helpers classify and build such tuples.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.typealgebra.algebra import NULL


def segment_of(row: Sequence[object]) -> Optional[Tuple[int, int]]:
    """The (start, end) of the contiguous non-null segment, or ``None``.

    Returns ``None`` when the non-null positions are not a contiguous
    segment of length at least two (an illegal pattern).
    """
    non_null = [i for i, value in enumerate(row) if value is not NULL]
    if len(non_null) < 2:
        return None
    start, end = non_null[0], non_null[-1]
    if non_null != list(range(start, end + 1)):
        return None
    return (start, end)


def pad_row(
    values: Sequence[object], segment: Tuple[int, int], width: int
) -> Tuple[object, ...]:
    """Place *values* at positions ``segment`` and pad with nulls.

    >>> pad_row(("a", "b"), (0, 1), 4)
    ('a', 'b', n, n)
    """
    start, end = segment
    if end - start + 1 != len(values):
        raise SchemaError(
            f"segment {segment} holds {end - start + 1} values, "
            f"got {len(values)}"
        )
    row = [NULL] * width
    for offset, value in enumerate(values):
        row[start + offset] = value
    return tuple(row)


def valid_segments(width: int) -> Iterator[Tuple[int, int]]:
    """All valid segments ``[i, j]`` (``j > i``) of a row of *width*.

    For width 4 (the ABCD example): (0,1) AB, (1,2) BC, (2,3) CD,
    (0,2) ABC, (1,3) BCD, (0,3) ABCD.
    """
    for start in range(width):
        for end in range(start + 1, width):
            yield (start, end)


def segment_edges(segment: Tuple[int, int]) -> Tuple[int, ...]:
    """The edge indices a segment spans: ``i, i+1, ..., j-1``.

    Edge ``m`` connects attribute ``m`` to attribute ``m+1``.
    """
    start, end = segment
    return tuple(range(start, end))


def maximal_intervals(edges: frozenset) -> Tuple[Tuple[int, int], ...]:
    """Group a set of edge indices into maximal attribute intervals.

    Edge set ``{0, 2}`` of a 4-chain yields intervals ``(0,1), (2,3)``
    -- the two relations of the ``Gamma_AB^o . Gamma_CD^o`` component of
    Example 2.3.4.
    """
    if not edges:
        return ()
    ordered = sorted(edges)
    intervals = []
    start = ordered[0]
    previous = ordered[0]
    for edge in ordered[1:]:
        if edge == previous + 1:
            previous = edge
            continue
        intervals.append((start, previous + 1))
        start = edge
        previous = edge
    intervals.append((start, previous + 1))
    return tuple(intervals)
