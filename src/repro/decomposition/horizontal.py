"""Horizontal decompositions through interacting types (paper §2.1).

The paper's type algebra exists precisely so that types may *interact*:
"if we wish attribute C to be the union of attributes A and B, the
axiom ``(Ax)(tau_C(x) <-> tau_A(x) v tau_B(x))`` may be used ...  Such
interactions are highly useful in defining horizontal decompositions."

This module realises that remark.  A :class:`HorizontalSchema` has one
relation whose *split attribute*'s type is axiomatised as the disjoint
union of **cell** types; for every subset of cells there is a
*restriction view* (a selection, the paper's ``rho(R(...))`` mappings)
keeping the rows whose split value falls in those cells.  These
restriction views are strongly complemented strong views -- the
component algebra is the Boolean algebra of cell subsets -- and
constant-complement update translation is the obvious symbolic
operation: replace the selected cells' rows, keep the rest.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import SchemaError, UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.queries import Query, RelationRef, TypedRestrict
from repro.relational.relations import Relation
from repro.relational.schema import RelationSchema, Schema
from repro.typealgebra.algebra import TypeAlgebra
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import AtomicType, TypeExpr, disjunction_of


class HorizontalSchema:
    """A relation horizontally decomposed by a partition of one column.

    Parameters
    ----------
    attributes:
        Attribute names of the single relation.
    domains:
        Mapping attribute name -> values, for the non-split attributes.
    split_attribute:
        The attribute whose type is the disjoint union of the cells.
    cells:
        Mapping cell name -> values; the cells must be pairwise
        disjoint and non-empty.  Their union is the split attribute's
        domain.
    relation_name:
        Name of the relation symbol (default ``"R"``).
    """

    def __init__(
        self,
        attributes: Iterable[str],
        domains: Mapping[str, Iterable[object]],
        split_attribute: str,
        cells: Mapping[str, Iterable[object]],
        relation_name: str = "R",
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.relation_name = relation_name
        self.split_attribute = split_attribute
        if split_attribute not in self.attributes:
            raise SchemaError(
                f"split attribute {split_attribute!r} not among attributes"
            )
        other = [a for a in self.attributes if a != split_attribute]
        if set(domains) != set(other):
            raise SchemaError(
                "domains must cover exactly the non-split attributes"
            )
        self.cells: Dict[str, FrozenSet[object]] = {
            name: frozenset(values) for name, values in cells.items()
        }
        if not self.cells:
            raise SchemaError("at least one cell is required")
        for name, values in self.cells.items():
            if not values:
                raise SchemaError(f"cell {name!r} is empty")
        all_values = [v for values in self.cells.values() for v in values]
        if len(all_values) != len(set(all_values)):
            raise SchemaError("cells must be pairwise disjoint")
        self.cell_names: Tuple[str, ...] = tuple(sorted(self.cells))

        # Type algebra: one atom per non-split attribute, one per cell;
        # the split attribute's column type is the cells' disjunction --
        # the paper's interacting-types axiom.
        atoms = tuple(AtomicType(a) for a in other) + tuple(
            AtomicType(f"{split_attribute}.{cell}")
            for cell in self.cell_names
        )
        self.type_algebra = TypeAlgebra(atoms=atoms)
        assignment_domains = {
            AtomicType(a): frozenset(domains[a]) for a in other
        }
        for cell in self.cell_names:
            assignment_domains[
                AtomicType(f"{split_attribute}.{cell}")
            ] = self.cells[cell]
        self.assignment = TypeAssignment(assignment_domains)

        self.split_type: TypeExpr = disjunction_of(
            AtomicType(f"{split_attribute}.{cell}")
            for cell in self.cell_names
        )
        column_types = tuple(
            self.split_type if attr == split_attribute else AtomicType(attr)
            for attr in self.attributes
        )
        self.schema = Schema(
            name=f"horizontal[{relation_name}/{split_attribute}]",
            relations=(
                RelationSchema(relation_name, self.attributes, column_types),
            ),
        )
        self._split_position = self.attributes.index(split_attribute)

    # -- geometry ----------------------------------------------------------------

    def cell_type(self, cell: str) -> TypeExpr:
        """The atomic type of one cell."""
        if cell not in self.cells:
            raise SchemaError(f"no cell named {cell!r}")
        return AtomicType(f"{self.split_attribute}.{cell}")

    def cell_of_value(self, value: object) -> Optional[str]:
        """The cell a split value belongs to, or ``None``."""
        for cell, values in self.cells.items():
            if value in values:
                return cell
        return None

    def tuple_universe(self) -> Tuple[Tuple[object, ...], ...]:
        """All possible rows (typed per column)."""
        from repro.relational.enumeration import tuple_universe

        return tuple_universe(self.schema, self.relation_name, self.assignment)

    def state_count(self) -> int:
        """``2^|tuple universe|`` -- no other constraints."""
        return 1 << len(self.tuple_universe())

    def fingerprint(self) -> str:
        """Stable content hash of the horizontal-decomposition spec."""
        from repro.engine.fingerprint import stable_fingerprint

        return stable_fingerprint(
            "HorizontalSchema",
            self.relation_name,
            self.attributes,
            self.split_attribute,
            self.cells,
            {
                attr: self.assignment.domains[AtomicType(attr)]
                for attr in self.attributes
                if attr != self.split_attribute
            },
        )

    def build_state_space(self) -> StateSpace:
        """Enumerate ``LDB`` (the unconstrained powerset), uncached."""
        return StateSpace.enumerate(self.schema, self.assignment)

    def state_space(self) -> StateSpace:
        """The state space, memoized through the active engine."""
        from repro.engine.engine import current_engine

        return current_engine().space(self.schema, self.assignment)

    # -- cell decomposition of states ------------------------------------------------

    def cell_rows(
        self, state: DatabaseInstance, cell: str
    ) -> FrozenSet[Tuple[object, ...]]:
        """The rows whose split value lies in *cell*."""
        values = self.cells[cell]
        if cell not in self.cells:
            raise SchemaError(f"no cell named {cell!r}")
        return frozenset(
            row
            for row in state.relation(self.relation_name)
            if row[self._split_position] in values
        )

    def state_from_cells(
        self, cell_rows: Mapping[str, Iterable[Tuple[object, ...]]]
    ) -> DatabaseInstance:
        """Assemble a state from per-cell row sets (validated)."""
        rows: set = set()
        for cell, cell_content in cell_rows.items():
            if cell not in self.cells:
                raise SchemaError(f"no cell named {cell!r}")
            for row in cell_content:
                row = tuple(row)
                if row[self._split_position] not in self.cells[cell]:
                    raise SchemaError(
                        f"row {row!r} does not belong to cell {cell!r}"
                    )
                rows.add(row)
        state = DatabaseInstance(
            {self.relation_name: Relation(rows, len(self.attributes))}
        )
        self.schema.check_legal(state, self.assignment)
        return state

    # -- component views ------------------------------------------------------------------

    def component_view(
        self, cells: Iterable[str], name: Optional[str] = None
    ):
        """The restriction view keeping the rows of the given cells.

        A pure selection (no projection): the paper's
        ``rho(R(tau, ...))`` restriction mapping with
        ``tau = v_{c in cells} tau_c`` on the split column.
        """
        from repro.views.mappings import QueryMapping
        from repro.views.view import View

        chosen = tuple(sorted(set(cells)))
        unknown = [c for c in chosen if c not in self.cells]
        if unknown:
            raise SchemaError(f"no cells named {unknown}")
        base = RelationRef.of(self.schema, self.relation_name)
        selector: TypeExpr = disjunction_of(
            self.cell_type(cell) for cell in chosen
        )
        query: Query = TypedRestrict(
            base, ((self.split_attribute, selector),)
        )
        view_name = name or (
            "σ[" + "∨".join(chosen) + "]" if chosen else "σ[∅]"
        )
        view_schema = Schema(
            name=f"{view_name}.schema",
            relations=(
                RelationSchema(
                    self.relation_name,
                    self.attributes,
                ),
            ),
            enforce_column_types=False,
        )
        return View(view_name, self.schema, view_schema, QueryMapping(
            {self.relation_name: query}
        ))

    def all_component_views(self):
        """One view per cell subset (``2^k`` views)."""
        views = []
        for size in range(len(self.cell_names) + 1):
            for combo in itertools.combinations(self.cell_names, size):
                views.append(self.component_view(combo))
        return tuple(views)

    def __repr__(self) -> str:
        return (
            f"HorizontalSchema({self.relation_name}[{','.join(self.attributes)}] "
            f"split on {self.split_attribute} into {list(self.cell_names)})"
        )


class HorizontalUpdater:
    """Symbolic constant-complement translation for a cell component.

    Replace the selected cells' rows with the requested view state's
    rows; keep every other cell untouched.  The complement (the view on
    the remaining cells) is constant by construction.
    """

    def __init__(self, schema: HorizontalSchema, cells: Iterable[str]):
        self.horizontal = schema
        self.cells = tuple(sorted(set(cells)))
        unknown = [c for c in self.cells if c not in schema.cells]
        if unknown:
            raise SchemaError(f"no cells named {unknown}")
        self.view = schema.component_view(self.cells)
        self._selected_values = frozenset(
            v for cell in self.cells for v in schema.cells[cell]
        )

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """Translate the update; rejects ill-typed view states."""
        schema = self.horizontal
        name = schema.relation_name
        if name not in target:
            raise UpdateRejected(
                f"view state missing relation {name!r}",
                reason="illegal-view-state",
            )
        split = schema.attributes.index(schema.split_attribute)
        for row in target.relation(name):
            if row[split] not in self._selected_values:
                raise UpdateRejected(
                    f"row {row!r} lies outside the component's cells",
                    reason="illegal-view-state",
                )
        kept = frozenset(
            row
            for row in state.relation(name)
            if row[split] not in self._selected_values
        )
        solution = DatabaseInstance(
            {name: Relation(kept | target.relation(name).rows,
                            len(schema.attributes))}
        )
        if not schema.schema.is_legal(solution, schema.assignment):
            raise UpdateRejected(
                "requested view state is not typed correctly",
                reason="illegal-view-state",
            )
        return solution

    def defined(self, state, target) -> bool:
        """True iff the update is accepted."""
        try:
            self.apply(state, target)
            return True
        except UpdateRejected:
            return False
