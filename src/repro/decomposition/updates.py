"""Symbolic component updates on chain schemas -- no state enumeration.

:class:`~repro.core.constant_complement.ComponentTranslator` computes
Theorem 3.1.1's formula ``s2 = gamma1#(t2) v gamma2^Theta(s1)`` from
tables over an enumerated state space -- fine for analysis, hopeless for
production domains.  For chain schemas the structure theorem makes the
formula *symbolic*: a component is a set of edges ``E``; translating an
update to it with the complement constant just means

1. read the new ``E``-edge relations off the requested view state,
2. keep the current state's non-``E`` edges,
3. close the combined edge choice (``state_from_edges``).

Per-update cost is linear in the instance, independent of ``|LDB|``.
:class:`ChainComponentUpdater` implements this; the test suite asserts
it agrees with the enumerative and table-based translators everywhere,
and benchmark S1 measures the (orders-of-magnitude) gap.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from repro.errors import SchemaError, UpdateRejected
from repro.typealgebra.algebra import NULL
from repro.relational.instances import DatabaseInstance
from repro.decomposition.chain import ChainSchema
from repro.decomposition.nulls import maximal_intervals, segment_of


class ChainComponentUpdater:
    """Constant-complement translation for one chain component, symbolically.

    Parameters
    ----------
    chain:
        The chain schema.
    edges:
        The component's edge set ``E`` (the complement is the component
        on the remaining edges, held constant).
    """

    def __init__(self, chain: ChainSchema, edges: Iterable[int]):
        self.chain = chain
        self.edges: FrozenSet[int] = frozenset(edges)
        invalid = [e for e in self.edges if not 0 <= e < chain.edge_count]
        if invalid:
            raise SchemaError(f"no such edges: {sorted(invalid)}")
        self.intervals = maximal_intervals(self.edges)
        #: The component view this updater serves (for interoperability).
        self.view = chain.component_view(self.edges)

    def _edges_of_view_state(
        self, target: DatabaseInstance
    ) -> List[FrozenSet[Tuple[object, object]]]:
        """Extract the new edge relations from a requested view state.

        Validates that every row of every interval relation has a valid
        null pattern within the interval and in-domain values; raises
        :class:`~repro.errors.UpdateRejected` otherwise.  Closure *within*
        the view state is validated by the caller's roundtrip check.
        """
        new_edges: List[FrozenSet] = [
            frozenset() for _ in range(self.chain.edge_count)
        ]
        collected: List[set] = [set() for _ in range(self.chain.edge_count)]
        for interval in self.intervals:
            start, end = interval
            attrs = self.chain.interval_attributes(interval)
            relation_name = f"{self.chain.relation_name}_{''.join(attrs)}"
            if relation_name not in target:
                raise UpdateRejected(
                    f"view state missing relation {relation_name!r}",
                    reason="illegal-view-state",
                )
            for row in target.relation(relation_name):
                segment = segment_of(row)
                if segment is None:
                    raise UpdateRejected(
                        f"row {row!r} has an invalid null pattern",
                        reason="illegal-view-state",
                    )
                if segment[1] - segment[0] == 1:
                    left_pos = start + segment[0]
                    pair = (row[segment[0]], row[segment[1]])
                    if pair not in set(self.chain.edge_pairs(left_pos)):
                        raise UpdateRejected(
                            f"edge {pair!r} out of domain",
                            reason="illegal-view-state",
                        )
                    collected[left_pos].add(pair)
        for index in range(self.chain.edge_count):
            new_edges[index] = frozenset(collected[index])
        return new_edges

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """Translate ``(state, target-view-state)`` with the complement
        constant.

        Implements ``s2 = gamma1#(t2) v gamma2^Theta(s1)`` symbolically:
        new component edges from *target*, old non-component edges from
        *state*, closed.  Verifies the roundtrip (the achieved view state
        equals *target*) so illegal view states -- e.g. ones violating
        the inherited subsumption/join constraints -- are rejected
        rather than silently repaired.
        """
        current_edges = self.chain.edges_of(state)
        new_edges = self._edges_of_view_state(target)
        combined = [
            new_edges[i] if i in self.edges else current_edges[i]
            for i in range(self.chain.edge_count)
        ]
        solution = self.chain.state_from_edges(combined)
        achieved = self.view.apply(solution, self.chain.assignment)
        if achieved != target:
            raise UpdateRejected(
                "requested view state is not legal for this component "
                "(it is not closed under the inherited constraints)",
                reason="illegal-view-state",
            )
        return solution

    def defined(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> bool:
        """True iff the update is accepted."""
        try:
            self.apply(state, target)
            return True
        except UpdateRejected:
            return False

    def __repr__(self) -> str:
        return (
            f"ChainComponentUpdater({self.view.name!r}, "
            f"edges={sorted(self.edges)})"
        )


class TreeComponentUpdater:
    """Constant-complement translation for a tree component, symbolically.

    The tree analogue of :class:`ChainComponentUpdater`: read the new
    edge relations of the component's tree edges off the requested view
    state, keep the remaining edges, close.  Per-update cost is linear
    in the instance; no state enumeration.
    """

    def __init__(self, tree, edges: Iterable):
        from repro.decomposition.tree import _normalise_edge

        self.tree = tree
        self.edges = frozenset(_normalise_edge(e) for e in edges)
        unknown = self.edges - set(tree.edges)
        if unknown:
            raise SchemaError(f"unknown edges: {sorted(unknown)}")
        self.view = tree.component_view(self.edges)

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """Translate with the complement (remaining edges) constant."""
        current_edges = self.tree.edges_of(state)
        # Extract the target's edges by materialising it as if it were
        # a stand-alone state over the component's relations: simplest
        # correct route is to read length-2 objects per view relation.
        new_edges = {
            edge: set() for edge in self.edges
        }
        for relation_name in target:
            # Column names of the view relation identify the attributes.
            attrs = None
            for rel in self.view.view_schema.relations:
                if rel.name == relation_name:
                    attrs = rel.attributes
                    break
            if attrs is None:
                raise UpdateRejected(
                    f"unexpected view relation {relation_name!r}",
                    reason="illegal-view-state",
                )
            positions = [self.tree.attributes.index(a) for a in attrs]
            for row in target.relation(relation_name):
                non_null = [
                    (positions[i], value)
                    for i, value in enumerate(row)
                    if value is not NULL
                ]
                if len(non_null) == 2:
                    (p1, v1), (p2, v2) = sorted(non_null)
                    edge = (p1, p2)
                    if edge not in new_edges:
                        raise UpdateRejected(
                            f"row {row!r} spans a non-edge {edge}",
                            reason="illegal-view-state",
                        )
                    valid = set(self.tree.edge_pairs(edge))
                    if (v1, v2) not in valid:
                        raise UpdateRejected(
                            f"edge value {(v1, v2)!r} out of domain",
                            reason="illegal-view-state",
                        )
                    new_edges[edge].add((v1, v2))
                elif len(non_null) < 2:
                    raise UpdateRejected(
                        f"row {row!r} has an invalid null pattern",
                        reason="illegal-view-state",
                    )
        combined = dict(current_edges)
        for edge in self.edges:
            combined[edge] = frozenset(new_edges[edge])
        solution = self.tree.state_from_edges(combined)
        achieved = self.view.apply(solution, self.tree.assignment)
        if achieved != target:
            raise UpdateRejected(
                "requested view state is not closed under the inherited "
                "constraints",
                reason="illegal-view-state",
            )
        return solution

    def defined(self, state, target) -> bool:
        """True iff the update is accepted."""
        try:
            self.apply(state, target)
            return True
        except UpdateRejected:
            return False

    def __repr__(self) -> str:
        return (
            f"TreeComponentUpdater({self.view.name!r}, "
            f"edges={sorted(self.edges)})"
        )
