"""Plain projection views of chain schemas (paper Example 3.2.4).

Unlike the ``pi^o`` component views (which filter by null pattern and
are strong), a *plain* projection ``Gamma_X`` just projects the named
columns of every tuple, nulls and all.  Example 3.2.4's ``Gamma_ABD`` is
such a view: it is not a component, but it has strong join complements
and is updatable through Update Procedure 3.2.3.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SchemaError
from repro.relational.queries import Project, RelationRef
from repro.views.mappings import QueryMapping
from repro.views.view import View
from repro.decomposition.chain import ChainSchema


def projection_view(
    chain: ChainSchema,
    attributes: Sequence[str],
    name: Optional[str] = None,
) -> View:
    """The plain projection view onto the given chain attributes.

    The view has a single relation named ``<R>_<attrs>`` holding the
    projection (with nulls retained) of the base relation.
    """
    attributes = tuple(attributes)
    unknown = [a for a in attributes if a not in chain.attributes]
    if unknown:
        raise SchemaError(f"chain has no attributes {unknown}")
    base = RelationRef.of(chain.schema, chain.relation_name)
    relation_name = f"{chain.relation_name}_{''.join(attributes)}"
    query = Project(base, attributes)
    view_name = name or f"Γ_{''.join(attributes)}"
    return View(
        view_name,
        chain.schema,
        None,
        QueryMapping({relation_name: query}),
    )
