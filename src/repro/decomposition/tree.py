"""Tree schemas: null-padded acyclic join decompositions.

The paper develops its decomposition theory on the *chain*
``R[A,B,C,D]`` with ``⋈[AB, BC, CD]`` (Example 2.1.1), but nothing in
the construction is chain-specific: any **join tree** over the
attributes -- an acyclic graph whose edges are the binary join
components -- admits the same treatment.  This module generalises
:class:`~repro.decomposition.chain.ChainSchema` accordingly:

* tuples are *objects* over connected subtrees with at least two
  nodes, null-padded outside their subtree;
* subsumption and join axioms close every legal instance over its
  **edge sets**, so ``LDB`` is in bijection with free choices of one
  binary relation per tree edge (the structure theorem, again);
* for every subset ``S`` of tree edges there is a ``pi^o`` component
  view with one relation per connected component of ``S``; these are
  strongly complemented strong views, and the component algebra is the
  Boolean algebra of edge subsets -- ``2^(#edges)`` elements.

A path graph recovers :class:`ChainSchema` exactly (tested); a star
gives the "hub" decompositions that chains cannot express.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SchemaError
from repro.relational.constraints import Constraint
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.queries import Project, Query, RelationRef, TypedRestrict
from repro.relational.relations import Relation
from repro.relational.schema import RelationSchema, Schema
from repro.typealgebra.algebra import NULL, TypeAlgebra
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import AtomicType, Disjunction, TypeExpr

Edge = Tuple[int, int]
Pair = Tuple[object, object]


def _normalise_edge(edge: Sequence[int]) -> Edge:
    a, b = edge
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class TreeConstraint(Constraint):
    """Pattern + subsumption + join for a tree schema, via closure.

    As for chains: an instance is legal iff every tuple is a typed,
    connected-subtree object and the instance equals the closure of its
    own edge set.
    """

    relation: str
    width: int
    edges: Tuple[Edge, ...]
    domains: Tuple[FrozenSet[object], ...]

    def holds(self, instance, schema, assignment) -> bool:
        adjacency = _adjacency(self.edges, self.width)
        rows = instance.relation(self.relation).rows
        edge_sets: Dict[Edge, Set[Pair]] = {e: set() for e in self.edges}
        for row in rows:
            nodes = frozenset(
                i for i, value in enumerate(row) if value is not NULL
            )
            if len(nodes) < 2 or not _is_connected(nodes, adjacency):
                return False
            for node in nodes:
                if row[node] not in self.domains[node]:
                    return False
            if len(nodes) == 2:
                edge = _normalise_edge(tuple(sorted(nodes)))
                if edge not in edge_sets:
                    return False  # a 2-node set that is not a tree edge
                edge_sets[edge].add((row[edge[0]], row[edge[1]]))
        closure = _close_tree_edges(
            {e: frozenset(s) for e, s in edge_sets.items()},
            self.width,
            self.edges,
        )
        return rows == closure

    def describe(self) -> str:
        return (
            f"tree closure constraint on {self.relation!r} "
            f"(edges {self.edges})"
        )


def _adjacency(edges: Iterable[Edge], width: int) -> List[Set[int]]:
    adjacency: List[Set[int]] = [set() for _ in range(width)]
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def _is_connected(nodes: FrozenSet[int], adjacency: List[Set[int]]) -> bool:
    if not nodes:
        return False
    seen = set()
    stack = [next(iter(nodes))]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency[node] & nodes - seen)
    return seen == set(nodes)


def _connected_subtrees(
    width: int, adjacency: List[Set[int]]
) -> Tuple[FrozenSet[int], ...]:
    """All connected node sets of size >= 2 (the valid object shapes)."""
    out = []
    for mask in range(1, 1 << width):
        nodes = frozenset(i for i in range(width) if mask & (1 << i))
        if len(nodes) >= 2 and _is_connected(nodes, adjacency):
            out.append(nodes)
    return tuple(out)


def _subtree_edges(nodes: FrozenSet[int], edges: Iterable[Edge]) -> Tuple[Edge, ...]:
    return tuple(
        e for e in edges if e[0] in nodes and e[1] in nodes
    )


def _close_tree_edges(
    edge_sets: Mapping[Edge, FrozenSet[Pair]],
    width: int,
    edges: Tuple[Edge, ...],
) -> FrozenSet[Tuple[object, ...]]:
    """All object tuples whose edge pairs all lie in the edge sets."""
    adjacency = _adjacency(edges, width)
    rows: Set[Tuple[object, ...]] = set()
    for nodes in _connected_subtrees(width, adjacency):
        tree_edges = _subtree_edges(nodes, edges)
        # Assign values node by node along a traversal of the subtree.
        order = _traversal_order(nodes, adjacency)
        assignments: List[Dict[int, object]] = [{}]
        for node in order:
            extended: List[Dict[int, object]] = []
            # Constraints from edges to already-assigned neighbours.
            for assignment in assignments:
                candidates: Optional[Set[object]] = None
                for edge in tree_edges:
                    if node not in edge:
                        continue
                    other = edge[0] if edge[1] == node else edge[1]
                    if other not in assignment:
                        continue
                    position = 0 if edge[0] == node else 1
                    values = {
                        pair[position]
                        for pair in edge_sets[edge]
                        if pair[1 - position] == assignment[other]
                    }
                    candidates = (
                        values
                        if candidates is None
                        else candidates & values
                    )
                if candidates is None:
                    # First node: any value appearing in any incident
                    # edge set of the subtree.
                    candidates = set()
                    for edge in tree_edges:
                        if node == edge[0]:
                            candidates.update(p[0] for p in edge_sets[edge])
                        elif node == edge[1]:
                            candidates.update(p[1] for p in edge_sets[edge])
                for value in candidates:
                    updated = dict(assignment)
                    updated[node] = value
                    extended.append(updated)
            assignments = extended
            if not assignments:
                break
        for assignment in assignments:
            # Verify every subtree edge (the traversal guarantees it,
            # but keep the invariant explicit and cheap).
            row = tuple(
                assignment.get(i, NULL) for i in range(width)
            )
            rows.add(row)
    return frozenset(rows)


def _traversal_order(
    nodes: FrozenSet[int], adjacency: List[Set[int]]
) -> List[int]:
    """A connected traversal: each node after the first touches a
    previously visited one."""
    start = min(nodes)
    order = [start]
    seen = {start}
    while len(order) < len(nodes):
        for node in sorted(nodes - seen):
            if adjacency[node] & seen:
                order.append(node)
                seen.add(node)
                break
        else:  # pragma: no cover - unreachable for connected input
            raise SchemaError("subtree is not connected")
    return order


class TreeSchema:
    """A null-padded join-tree schema over given attribute domains.

    Parameters
    ----------
    attributes:
        Attribute names (the tree's nodes), in column order.
    domains:
        Mapping attribute name -> iterable of (non-null) values.
    edges:
        The join tree's edges, as pairs of attribute names.  Must form
        a tree (connected, acyclic) over the attributes.
    relation_name:
        Name of the single relation symbol (default ``"R"``).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        domains: Mapping[str, Iterable[object]],
        edges: Iterable[Tuple[str, str]],
        relation_name: str = "R",
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(self.attributes) < 2:
            raise SchemaError("a tree schema needs at least two attributes")
        if set(domains) != set(self.attributes):
            raise SchemaError("domains must cover exactly the attributes")
        self.relation_name = relation_name
        self.domains: Tuple[FrozenSet[object], ...] = tuple(
            frozenset(domains[attr]) for attr in self.attributes
        )
        if any(not domain for domain in self.domains):
            raise SchemaError("every attribute needs a non-empty domain")

        index = {attr: i for i, attr in enumerate(self.attributes)}
        edge_list: List[Edge] = []
        for left, right in edges:
            if left not in index or right not in index:
                raise SchemaError(f"edge ({left}, {right}) uses unknown attributes")
            if left == right:
                raise SchemaError("self-loops are not allowed")
            edge_list.append(_normalise_edge((index[left], index[right])))
        self.edges: Tuple[Edge, ...] = tuple(sorted(set(edge_list)))
        if len(self.edges) != len(self.attributes) - 1:
            raise SchemaError(
                f"a tree over {len(self.attributes)} attributes needs "
                f"exactly {len(self.attributes) - 1} edges, "
                f"got {len(self.edges)}"
            )
        self._adjacency = _adjacency(self.edges, self.width)
        if not _is_connected(
            frozenset(range(self.width)), self._adjacency
        ):
            raise SchemaError("the edges do not form a connected tree")

        self.type_algebra = TypeAlgebra.of_attributes(
            self.attributes, with_null=True
        )
        self.assignment = TypeAssignment(
            {
                AtomicType(attr): domain
                for attr, domain in zip(self.attributes, self.domains)
            }
            | {AtomicType("eta"): frozenset({NULL})}
        )
        self.null_type: TypeExpr = AtomicType("eta")
        self.nullable_types: Tuple[TypeExpr, ...] = tuple(
            Disjunction(AtomicType(attr), self.null_type)
            for attr in self.attributes
        )
        self.schema = Schema(
            name=f"tree[{''.join(self.attributes)}]",
            relations=(
                RelationSchema(
                    relation_name, self.attributes, self.nullable_types
                ),
            ),
            constraints=(
                TreeConstraint(
                    relation_name, self.width, self.edges, self.domains
                ),
            ),
        )

    # -- geometry ----------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of attributes (tree nodes)."""
        return len(self.attributes)

    @property
    def edge_count(self) -> int:
        """Number of tree edges."""
        return len(self.edges)

    def edge_pairs(self, edge: Edge) -> Tuple[Pair, ...]:
        """All possible value pairs of one edge."""
        a, b = edge
        return tuple(
            itertools.product(
                sorted(self.domains[a], key=repr),
                sorted(self.domains[b], key=repr),
            )
        )

    def edge_name(self, edge: Edge) -> str:
        """Display name of an edge, e.g. ``"AB"``."""
        return self.attributes[edge[0]] + self.attributes[edge[1]]

    # -- states <-> edge sets ----------------------------------------------------------

    def state_from_edges(
        self, edge_sets: Mapping[Edge, Iterable[Pair]]
    ) -> DatabaseInstance:
        """The legal instance generated by freely chosen edge relations."""
        frozen: Dict[Edge, FrozenSet[Pair]] = {}
        for edge in self.edges:
            chosen = frozenset(edge_sets.get(edge, ()))
            valid = set(self.edge_pairs(edge))
            bad = chosen - valid
            if bad:
                raise SchemaError(
                    f"edge {self.edge_name(edge)} has out-of-domain pairs "
                    f"{sorted(bad, key=repr)}"
                )
            frozen[edge] = chosen
        unknown = set(edge_sets) - set(self.edges)
        if unknown:
            raise SchemaError(f"unknown edges: {sorted(unknown)}")
        rows = _close_tree_edges(frozen, self.width, self.edges)
        return DatabaseInstance(
            {self.relation_name: Relation(rows, self.width)}
        )

    def edges_of(self, state: DatabaseInstance) -> Dict[Edge, FrozenSet[Pair]]:
        """The edge sets of a legal instance."""
        out: Dict[Edge, Set[Pair]] = {edge: set() for edge in self.edges}
        for row in state.relation(self.relation_name):
            nodes = tuple(
                sorted(i for i, v in enumerate(row) if v is not NULL)
            )
            if len(nodes) == 2:
                edge = _normalise_edge(nodes)
                if edge in out:
                    out[edge].add((row[edge[0]], row[edge[1]]))
        return {edge: frozenset(pairs) for edge, pairs in out.items()}

    def all_states(self) -> Iterator[DatabaseInstance]:
        """Closed-form enumeration of ``LDB``."""
        per_edge: List[List[FrozenSet[Pair]]] = []
        for edge in self.edges:
            pairs = self.edge_pairs(edge)
            per_edge.append(
                [
                    frozenset(
                        pairs[i] for i in range(len(pairs)) if mask & (1 << i)
                    )
                    for mask in range(1 << len(pairs))
                ]
            )
        for combo in itertools.product(*per_edge):
            yield self.state_from_edges(dict(zip(self.edges, combo)))

    def state_count(self) -> int:
        """``prod_e 2^|domain product of e|``."""
        count = 1
        for edge in self.edges:
            count *= 1 << (
                len(self.domains[edge[0]]) * len(self.domains[edge[1]])
            )
        return count

    def fingerprint(self) -> str:
        """Stable content hash of the tree specification."""
        from repro.engine.fingerprint import stable_fingerprint

        return stable_fingerprint(
            "TreeSchema",
            self.relation_name,
            self.attributes,
            self.domains,
            self.edges,
        )

    def build_state_space(self, validate: bool = False) -> StateSpace:
        """Materialise the space from the closed-form generator (uncached)."""
        return StateSpace.from_states(
            self.schema, self.assignment, self.all_states(), validate=validate
        )

    def state_space(self, validate: bool = False) -> StateSpace:
        """The state space, memoized through the active engine."""
        from repro.engine.engine import current_engine

        return current_engine().space_from(self, validate=validate)

    # -- component views ------------------------------------------------------------------

    def _components_of_edge_set(
        self, edge_set: FrozenSet[Edge]
    ) -> Tuple[FrozenSet[int], ...]:
        """Maximal connected node sets spanned by an edge subset."""
        nodes = {n for edge in edge_set for n in edge}
        adjacency: List[Set[int]] = [set() for _ in range(self.width)]
        for a, b in edge_set:
            adjacency[a].add(b)
            adjacency[b].add(a)
        components = []
        remaining = set(nodes)
        while remaining:
            start = min(remaining)
            seen: Set[int] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency[node] - seen)
            components.append(frozenset(seen))
            remaining -= seen
        return tuple(sorted(components, key=min))

    def component_view(
        self, edges: Iterable[Edge], name: Optional[str] = None
    ):
        """The ``pi^o`` component view for a subset of tree edges."""
        from repro.views.mappings import QueryMapping
        from repro.views.view import View

        edge_set = frozenset(_normalise_edge(e) for e in edges)
        unknown = edge_set - set(self.edges)
        if unknown:
            raise SchemaError(f"unknown edges: {sorted(unknown)}")
        base = RelationRef.of(self.schema, self.relation_name)
        queries: Dict[str, Query] = {}
        relations: List[RelationSchema] = []
        parts = []
        for nodes in self._components_of_edge_set(edge_set):
            attrs = tuple(
                self.attributes[i] for i in sorted(nodes)
            )
            outside = tuple(
                attr for attr in self.attributes if attr not in attrs
            )
            restricted: Query = TypedRestrict(
                base, tuple((attr, self.null_type) for attr in outside)
            )
            query = Project(restricted, attrs)
            relation_name = f"{self.relation_name}_{''.join(attrs)}"
            queries[relation_name] = query
            relations.append(
                RelationSchema(
                    relation_name,
                    attrs,
                    tuple(
                        self.nullable_types[self.attributes.index(a)]
                        for a in attrs
                    ),
                )
            )
            parts.append("".join(attrs))
        view_name = name or (
            "Γ°" + "·".join(parts) if parts else "Γ°[∅]"
        )
        view_schema = Schema(
            name=f"{view_name}.schema",
            relations=tuple(relations),
            enforce_column_types=False,
        )
        return View(view_name, self.schema, view_schema, QueryMapping(queries))

    def all_component_views(self):
        """One view per edge subset (``2^(#edges)`` views)."""
        views = []
        edge_list = list(self.edges)
        for mask in range(1 << len(edge_list)):
            chosen = frozenset(
                edge_list[i] for i in range(len(edge_list)) if mask & (1 << i)
            )
            views.append(self.component_view(chosen))
        return tuple(views)

    def __repr__(self) -> str:
        edge_names = ", ".join(self.edge_name(e) for e in self.edges)
        return (
            f"TreeSchema({''.join(self.attributes)}; edges {edge_names}; "
            f"{self.state_count()} states)"
        )
