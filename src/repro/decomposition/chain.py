"""Chain schemas: ``R[A1..Ak]`` with an exact null-padded join dependency.

Generalises paper Example 2.1.1 from ``ABCD`` / ``⋈[AB, BC, CD]`` to any
chain of ``k >= 2`` attributes.  The axioms (maximal representation, as
in the paper):

* *typed columns* -- column ``i`` holds a value of ``tau_Ai v tau_eta``;
* *pattern* -- the non-null positions of every tuple form a contiguous
  segment of length >= 2;
* *subsumption* -- a tuple with segment ``[i, j]`` (length >= 3) implies
  its two sub-tuples with segments ``[i, j-1]`` and ``[i+1, j]``;
* *join* -- if all edge tuples ``(v_m, v_{m+1})`` (segment ``[m, m+1]``)
  of a candidate chain are present, so is the full chain tuple, for
  every segment (this subsumes the embedded join dependencies).

**The structure theorem behind this module** (verified in the tests):
subsumption + join make a legal instance the closure of its *edge set*,
and conversely any choice of edge relations ``E_m ⊆ D_m x D_{m+1}``
closes to a legal instance -- so ``LDB`` is in bijection with the
product of the edge powersets.  That bijection gives:

* :meth:`ChainSchema.state_from_edges` / :meth:`ChainSchema.edges_of` --
  the two directions;
* :meth:`ChainSchema.state_space` -- closed-form enumeration of ``LDB``
  (no powerset-filtering);
* :meth:`ChainSchema.component_view` -- the ``pi^o`` restriction view
  for any subset of edges, one relation per maximal interval; these are
  exactly the components, and the component algebra is the Boolean
  algebra of edge subsets (``2^(k-1)`` elements, Example 2.3.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.logic.terms import Const, Var
from repro.relational.constraints import Constraint, TupleGeneratingDependency
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.queries import Project, Query, RelationRef, TypedRestrict
from repro.relational.relations import Relation
from repro.relational.schema import RelationSchema, Schema
from repro.typealgebra.algebra import NULL, TypeAlgebra
from repro.typealgebra.assignment import TypeAssignment
from repro.typealgebra.types import AtomicType, Disjunction, TypeExpr
from repro.views.mappings import QueryMapping
from repro.views.view import View
from repro.decomposition.nulls import (
    maximal_intervals,
    pad_row,
    segment_edges,
    segment_of,
    valid_segments,
)

Edge = int
Pair = Tuple[object, object]
EdgeSets = Tuple[FrozenSet[Pair], ...]


@dataclass(frozen=True)
class ChainConstraint(Constraint):
    """The conjunction of pattern + subsumption + join for a chain.

    Decided by the structure theorem: an instance satisfies all three
    families of axioms iff every tuple has a valid typed pattern *and*
    the instance equals the closure of its own edge set.  The TGD
    renderings (:meth:`ChainSchema.subsumption_tgds`,
    :meth:`ChainSchema.join_tgds`) are cross-validated against this
    check in the test suite.
    """

    relation: str
    width: int
    #: Domain of each attribute column (frozensets, null excluded).
    domains: Tuple[FrozenSet[object], ...]

    def holds(self, instance, schema, assignment) -> bool:
        rows = instance.relation(self.relation).rows
        edges: List[set] = [set() for _ in range(self.width - 1)]
        for row in rows:
            segment = segment_of(row)
            if segment is None:
                return False
            start, end = segment
            for position in range(start, end + 1):
                if row[position] not in self.domains[position]:
                    return False
            if end - start == 1:
                edges[start].add((row[start], row[end]))
        closure = _close_edges(
            tuple(frozenset(e) for e in edges), self.width
        )
        return rows == closure

    def describe(self) -> str:
        return f"chain closure constraint on {self.relation!r} (width {self.width})"


def _segment_rows(
    edges: EdgeSets, width: int, start: int, end: int
) -> Tuple[Tuple[object, ...], ...]:
    """The padded rows of one segment: paths from *start* to *end*."""
    chains: List[Tuple[object, ...]] = [
        (a,) for a in sorted({p[0] for p in edges[start]}, key=repr)
    ]
    for edge_index in range(start, end):
        extended = []
        for chain in chains:
            for left, right in edges[edge_index]:
                if left == chain[-1]:
                    extended.append(chain + (right,))
        chains = extended
        if not chains:
            break
    return tuple(pad_row(chain, (start, end), width) for chain in chains)


def _close_edges(
    edges: EdgeSets,
    width: int,
    memo: Optional[Dict[object, Tuple[Tuple[object, ...], ...]]] = None,
) -> FrozenSet[Tuple[object, ...]]:
    """All tuples whose consecutive pairs all lie in the edge sets.

    A segment's rows depend only on the edges it spans, so a *memo*
    shared across one enumeration run reuses every sub-full-width
    segment's closure between states that agree on those edges (only
    the full-width segment is distinct for every state).
    """
    rows: set = set()
    for start, end in valid_segments(width):
        if memo is None:
            rows.update(_segment_rows(edges, width, start, end))
            continue
        key = (start, end, edges[start:end])
        cached = memo.get(key)
        if cached is None:
            cached = _segment_rows(edges, width, start, end)
            memo[key] = cached
        rows.update(cached)
    return frozenset(rows)


class ChainSchema:
    """A null-padded chain schema over given attribute domains.

    Parameters
    ----------
    attributes:
        Attribute names, in chain order (length >= 2).
    domains:
        Mapping attribute name -> iterable of (non-null) values.
    relation_name:
        Name of the single relation symbol (default ``"R"``).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        domains: Mapping[str, Iterable[object]],
        relation_name: str = "R",
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(self.attributes) < 2:
            raise SchemaError("a chain needs at least two attributes")
        if set(domains) != set(self.attributes):
            raise SchemaError(
                "domains must cover exactly the chain attributes"
            )
        self.relation_name = relation_name
        self.domains: Tuple[FrozenSet[object], ...] = tuple(
            frozenset(domains[attr]) for attr in self.attributes
        )
        self._edge_pairs_cache: Dict[int, Tuple[Pair, ...]] = {}
        if any(not domain for domain in self.domains):
            raise SchemaError("every attribute needs a non-empty domain")

        self.type_algebra = TypeAlgebra.of_attributes(
            self.attributes, with_null=True
        )
        self.assignment = TypeAssignment(
            {
                AtomicType(attr): domain
                for attr, domain in zip(self.attributes, self.domains)
            }
            | {AtomicType("eta"): frozenset({NULL})}
        )
        self.type_algebra.validate_assignment(self.assignment)

        self.null_type: TypeExpr = AtomicType("eta")
        #: ``tau_bar_A = tau_A v tau_eta`` per column.
        self.nullable_types: Tuple[TypeExpr, ...] = tuple(
            Disjunction(AtomicType(attr), self.null_type)
            for attr in self.attributes
        )
        self.schema = Schema(
            name=f"chain[{''.join(self.attributes)}]",
            relations=(
                RelationSchema(
                    relation_name, self.attributes, self.nullable_types
                ),
            ),
            constraints=(
                ChainConstraint(
                    relation_name, len(self.attributes), self.domains
                ),
            ),
        )

    # -- geometry ------------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of attributes ``k``."""
        return len(self.attributes)

    @property
    def edge_count(self) -> int:
        """Number of edges ``k - 1``."""
        return self.width - 1

    def edge_pairs(self, edge: Edge) -> Tuple[Pair, ...]:
        """All possible value pairs of one edge, in sorted order
        (memoized; domains are immutable)."""
        cached = self._edge_pairs_cache.get(edge)
        if cached is None:
            cached = tuple(
                itertools.product(
                    sorted(self.domains[edge], key=repr),
                    sorted(self.domains[edge + 1], key=repr),
                )
            )
            self._edge_pairs_cache[edge] = cached
        return cached

    def interval_attributes(self, interval: Tuple[int, int]) -> Tuple[str, ...]:
        """Attribute names of an interval ``[i, j]`` (inclusive)."""
        start, end = interval
        return self.attributes[start : end + 1]

    # -- states <-> edge sets (the structure theorem) ---------------------------------

    def state_from_edges(self, edges: Sequence[Iterable[Pair]]) -> DatabaseInstance:
        """The legal instance generated by freely chosen edge relations."""
        if len(edges) != self.edge_count:
            raise SchemaError(
                f"need {self.edge_count} edge sets, got {len(edges)}"
            )
        frozen = tuple(frozenset(e) for e in edges)
        for index, edge_set in enumerate(frozen):
            valid = set(self.edge_pairs(index))
            bad = edge_set - valid
            if bad:
                raise SchemaError(
                    f"edge {index} has out-of-domain pairs {sorted(bad, key=repr)}"
                )
        rows = _close_edges(frozen, self.width)
        return DatabaseInstance(
            {self.relation_name: Relation(rows, self.width)}
        )

    def edges_of(self, state: DatabaseInstance) -> EdgeSets:
        """The edge sets of a legal instance (inverse of the above)."""
        edges: List[set] = [set() for _ in range(self.edge_count)]
        for row in state.relation(self.relation_name):
            segment = segment_of(row)
            if segment is not None and segment[1] - segment[0] == 1:
                edges[segment[0]].add((row[segment[0]], row[segment[1]]))
        return tuple(frozenset(e) for e in edges)

    def all_states(self) -> Iterator[DatabaseInstance]:
        """Closed-form enumeration of ``LDB``: one state per choice of
        edge subsets."""
        per_edge_subsets = []
        for edge in range(self.edge_count):
            pairs = self.edge_pairs(edge)
            subsets = [
                frozenset(
                    pairs[i] for i in range(len(pairs)) if mask & (1 << i)
                )
                for mask in range(1 << len(pairs))
            ]
            per_edge_subsets.append(subsets)
        memo: Dict[object, Tuple[Tuple[object, ...], ...]] = {}
        for combo in itertools.product(*per_edge_subsets):
            # Every generated edge set is valid by construction, so the
            # per-state domain re-validation of ``state_from_edges`` is
            # skipped: close the edges (reusing shared segment closures
            # through *memo*) and wrap directly.
            rows = _close_edges(combo, self.width, memo)
            yield DatabaseInstance(
                {self.relation_name: Relation.of_frozen(rows, self.width)}
            )

    def state_count(self) -> int:
        """``prod_m 2^(|D_m| * |D_{m+1}|)`` without enumerating."""
        count = 1
        for edge in range(self.edge_count):
            count *= 1 << (
                len(self.domains[edge]) * len(self.domains[edge + 1])
            )
        return count

    def fingerprint(self) -> str:
        """Stable content hash of the chain specification."""
        from repro.engine.fingerprint import stable_fingerprint

        return stable_fingerprint(
            "ChainSchema", self.relation_name, self.attributes, self.domains
        )

    def build_state_space(self, validate: bool = False) -> StateSpace:
        """Materialise the space from the closed-form generator (uncached)."""
        return StateSpace.from_states(
            self.schema, self.assignment, self.all_states(), validate=validate
        )

    def state_space(self, validate: bool = False) -> StateSpace:
        """The state space, memoized through the active engine."""
        from repro.engine.engine import current_engine

        return current_engine().space_from(self, validate=validate)

    # -- component views ------------------------------------------------------------------

    def component_view(
        self, edges: Iterable[Edge], name: Optional[str] = None
    ) -> View:
        """The ``pi^o`` restriction view for a subset of edges.

        One view relation per maximal interval of the edge set; the
        interval's relation is the projection onto its attributes of the
        base tuples whose non-null segment lies inside the interval
        (columns outside it are null).  For the full ABCD example:
        ``component_view([0])`` is ``Gamma_AB^o``, ``component_view([0, 2])``
        the two-relation ``Gamma_AB^o . Gamma_CD^o`` of Example 2.3.4,
        ``component_view([])`` the zero-like bottom component, and
        ``component_view([0, 1, 2])`` the top.
        """
        edge_set = frozenset(edges)
        invalid = [e for e in edge_set if not 0 <= e < self.edge_count]
        if invalid:
            raise SchemaError(f"no such edges: {sorted(invalid)}")
        intervals = maximal_intervals(edge_set)
        base = RelationRef.of(self.schema, self.relation_name)
        queries: Dict[str, Query] = {}
        relations: List[RelationSchema] = []
        for interval in intervals:
            attrs = self.interval_attributes(interval)
            outside = tuple(
                attr for attr in self.attributes if attr not in attrs
            )
            restricted: Query = TypedRestrict(
                base,
                tuple((attr, self.null_type) for attr in outside),
            )
            query = Project(restricted, attrs)
            relation_name = f"{self.relation_name}_{''.join(attrs)}"
            queries[relation_name] = query
            relations.append(
                RelationSchema(
                    relation_name,
                    attrs,
                    tuple(
                        self.nullable_types[self.attributes.index(a)]
                        for a in attrs
                    ),
                )
            )
        view_name = name or self._component_name(edge_set)
        view_schema = Schema(
            name=f"{view_name}.schema",
            relations=tuple(relations),
            enforce_column_types=False,
        )
        return View(view_name, self.schema, view_schema, QueryMapping(queries))

    def _component_name(self, edge_set: FrozenSet[Edge]) -> str:
        if not edge_set:
            return "Γ°[∅]"
        parts = [
            "".join(self.interval_attributes(interval))
            for interval in maximal_intervals(edge_set)
        ]
        return "Γ°" + "·".join(parts)

    def all_component_views(self) -> Tuple[View, ...]:
        """One view per edge subset -- the full component algebra's
        candidate set (``2^(k-1)`` views)."""
        views = []
        for mask in range(1 << self.edge_count):
            edge_set = frozenset(
                e for e in range(self.edge_count) if mask & (1 << e)
            )
            views.append(self.component_view(edge_set))
        return tuple(views)

    def edge_views(self) -> Tuple[View, ...]:
        """The atomic components (one per edge): the generators of the
        algebra (Example 2.3.4: ``Gamma_AB^o, Gamma_BC^o, Gamma_CD^o``)."""
        return tuple(
            self.component_view([edge]) for edge in range(self.edge_count)
        )

    # -- axioms as TGDs (for cross-validation and documentation) ----------------------------

    def _chain_guards(
        self, chain_vars: Tuple[Var, ...], start: int
    ) -> Tuple[Tuple[Var, TypeExpr], ...]:
        """Type guards tying each chain variable to its attribute type.

        These are the ``tau_A(x)`` conjuncts of the paper's axioms: they
        keep the rules from firing on bindings where a variable matched
        the null value.
        """
        return tuple(
            (var, AtomicType(self.attributes[start + offset]))
            for offset, var in enumerate(chain_vars)
        )

    def subsumption_tgds(self) -> Tuple[TupleGeneratingDependency, ...]:
        """Subsumption rules: segment ``[i, j]`` implies both length-
        ``(j-i)`` sub-segments (full TGDs with null constants)."""
        tgds = []
        null = Const(NULL)
        for start, end in valid_segments(self.width):
            if end - start < 2:
                continue
            chain_vars = tuple(
                Var(f"x{position}") for position in range(start, end + 1)
            )

            def padded(variables, segment):
                terms: List = [null] * self.width
                for offset, var in enumerate(variables):
                    terms[segment[0] + offset] = var
                return (self.relation_name, tuple(terms))

            body = (padded(chain_vars, (start, end)),)
            head = (
                padded(chain_vars[:-1], (start, end - 1)),
                padded(chain_vars[1:], (start + 1, end)),
            )
            tgds.append(
                TupleGeneratingDependency(
                    body,
                    head,
                    name=f"subsume[{start},{end}]",
                    guards=self._chain_guards(chain_vars, start),
                )
            )
        return tuple(tgds)

    def join_tgds(self) -> Tuple[TupleGeneratingDependency, ...]:
        """Join rules: all edges of a segment present implies the full
        segment tuple (includes every embedded join dependency)."""
        tgds = []
        null = Const(NULL)
        for start, end in valid_segments(self.width):
            if end - start < 2:
                continue
            chain_vars = tuple(
                Var(f"x{position}") for position in range(start, end + 1)
            )
            body = []
            for edge in segment_edges((start, end)):
                terms: List = [null] * self.width
                terms[edge] = chain_vars[edge - start]
                terms[edge + 1] = chain_vars[edge - start + 1]
                body.append((self.relation_name, tuple(terms)))
            head_terms: List = [null] * self.width
            for offset, var in enumerate(chain_vars):
                head_terms[start + offset] = var
            head = ((self.relation_name, tuple(head_terms)),)
            tgds.append(
                TupleGeneratingDependency(
                    tuple(body),
                    head,
                    name=f"join[{start},{end}]",
                    guards=self._chain_guards(chain_vars, start),
                )
            )
        return tuple(tgds)

    def __repr__(self) -> str:
        return (
            f"ChainSchema({''.join(self.attributes)}, "
            f"{self.state_count()} states)"
        )
