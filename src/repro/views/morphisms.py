"""Morphisms between views; definability and isomorphism (paper §2.2).

For views ``Gamma1, Gamma2`` of the same schema there is *at most one*
morphism ``Gamma1 -> Gamma2`` (Proposition 2.2.1), and it exists exactly
when ``Gamma1`` defines ``Gamma2`` -- implicitly iff explicitly, by
Theorem 2.2.2 (Beth).  Over a finite state space the criterion is
decidable: ``Gamma1`` defines ``Gamma2`` iff ``Pi(Gamma1)`` refines
``Pi(Gamma2)``, and the morphism's state table is read off the fibres.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import NotComparableError
from repro.kernel.config import fast_kernel_enabled
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.views.view import View


def defines(definer: View, defined: View, space: StateSpace) -> bool:
    """True iff *definer* (implicitly = explicitly) defines *defined*.

    Criterion of §2.2: ``Pi(definer)`` is finer than ``Pi(defined)``.
    Under the fast kernels the refinement check is one zip pass over the
    two image tables -- ``Pi(definer)`` refines ``Pi(defined)`` exactly
    when the state table *definer image -> defined image* is
    well-defined -- skipping Partition construction entirely.
    """
    if fast_kernel_enabled():
        witness: Dict[DatabaseInstance, DatabaseInstance] = {}
        for a, b in zip(
            definer.image_table(space), defined.image_table(space)
        ):
            if witness.setdefault(a, b) != b:
                return False
        return True
    return definer.kernel(space).refines(defined.kernel(space))


def view_leq(smaller: View, larger: View, space: StateSpace) -> bool:
    """The ordering of ``[View(D)]``: ``smaller <= larger`` iff *larger*
    defines *smaller*."""
    return defines(larger, smaller, space)


def view_morphism_table(
    source: View, target: View, space: StateSpace
) -> Dict[DatabaseInstance, DatabaseInstance]:
    """The unique morphism ``source -> target`` as a state table.

    Maps each state of the source view to the corresponding state of the
    target view.  Raises :class:`~repro.errors.NotComparableError` when
    no morphism exists (i.e. *source* does not define *target*).

    This is the function ``f'`` whose existence Theorem 2.2.2 guarantees
    and which Update Procedure 3.2.3 uses to filter update requests.
    """
    if not defines(source, target, space):
        raise NotComparableError(
            f"{source.name!r} does not define {target.name!r}; "
            "no view morphism exists"
        )
    source_table = source.image_table(space)
    target_table = target.image_table(space)
    morphism: Dict[DatabaseInstance, DatabaseInstance] = {}
    for index in range(len(space)):
        morphism[source_table[index]] = target_table[index]
    return morphism


def are_isomorphic(left: View, right: View, space: StateSpace) -> bool:
    """True iff the views are isomorphic (Proposition 2.2.1(b)).

    Equivalent to mutual definability, i.e. equal kernels; under the
    fast kernels this is two zip passes instead of materialising and
    hashing both kernel partitions.
    """
    if fast_kernel_enabled():
        return defines(left, right, space) and defines(right, left, space)
    return left.kernel(space) == right.kernel(space)
