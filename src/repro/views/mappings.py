"""Database mappings: the ``gamma`` of a view ``(V, gamma)``.

The paper defines a database mapping as an interpretation of the target
schema's language into the source's (§2.1); operationally each target
relation is given by a query over the source.  :class:`QueryMapping`
realises exactly that.  :class:`FunctionMapping` admits *arbitrary*
state functions -- the Bancilhon-Spyratos position that any function
defines a view -- which the paper argues against but which we need to
reproduce its counterexamples (e.g. the symmetric-difference view of
Example 1.3.6 could also be given this way).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Optional

from repro.engine.fingerprint import (
    contains_transient,
    stable_fingerprint,
    transient_token,
)
from repro.errors import EvaluationError, SchemaError
from repro.relational.instances import DatabaseInstance
from repro.relational.queries import Query
from repro.relational.schema import Schema
from repro.typealgebra.assignment import TypeAssignment


class DatabaseMapping:
    """Abstract database mapping between two schemas."""

    #: Whether :meth:`fingerprint` is stable across processes.  Mappings
    #: wrapping arbitrary callables set this ``False``; artifacts derived
    #: from them are then never persisted to the on-disk cache.
    is_content_addressed: bool = True

    def apply(
        self, instance: DatabaseInstance, assignment: TypeAssignment
    ) -> DatabaseInstance:
        """The induced state function ``gamma'`` on one state."""
        raise NotImplementedError

    def target_arities(self) -> Dict[str, int]:
        """Signature of the produced instances (name -> arity)."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Stable content hash keying the engine's artifact cache."""
        raise NotImplementedError

    def read_relations(self) -> Optional[FrozenSet[str]]:
        """Source relations this mapping reads, or ``None`` if unknown.

        When a (frozen) set is returned, :meth:`apply` is guaranteed to
        depend only on the named relations' contents -- the bulk kernel
        then evaluates image tables once per distinct restriction of a
        state to that read set.  ``None`` means "cannot bound the
        reads"; callers must fall back to per-state evaluation.
        """
        return None

    def distributes_over_union(self) -> bool:
        """True iff ``gamma'(I)`` is the row-wise union of single-row
        images: ``gamma'(I) = union of gamma'({r}) over rows r of I``
        (relation by relation, with ``gamma'`` of the empty state
        empty).

        Row-local mappings let the bulk kernel compile an image table
        per codec *slot* and derive every state's image as one mask
        union.  Defaults to ``False``; a mapping must opt in.
        """
        return False


class QueryMapping(DatabaseMapping):
    """A mapping defined by one query per target relation.

    This is the paper's notion of interpretation: every target relation
    symbol is interpreted by a formula (here: a relational-algebra
    query) over the source signature.
    """

    def __init__(self, queries: Mapping[str, Query]):
        if not isinstance(queries, Mapping):
            raise SchemaError("queries must be a mapping name -> Query")
        self._queries: Dict[str, Query] = dict(queries)

    @property
    def queries(self) -> Dict[str, Query]:
        """The defining queries (copy)."""
        return dict(self._queries)

    def apply(self, instance, assignment) -> DatabaseInstance:
        return DatabaseInstance(
            {
                name: query.evaluate(instance, assignment)
                for name, query in self._queries.items()
            }
        )

    def target_arities(self) -> Dict[str, int]:
        return {name: q.arity for name, q in self._queries.items()}

    def fingerprint(self) -> str:
        return stable_fingerprint("QueryMapping", self._queries)

    def read_relations(self) -> Optional[FrozenSet[str]]:
        reads: set = set()
        for query in self._queries.values():
            try:
                reads |= query.referenced_relations()
            except NotImplementedError:
                return None
        return frozenset(reads)

    def distributes_over_union(self) -> bool:
        return all(
            query.distributes_over_union()
            for query in self._queries.values()
        )

    @property
    def is_content_addressed(self) -> bool:  # type: ignore[override]
        # A query tree is declarative unless a Select smuggled in a raw
        # Python predicate, which only tokenizes per-process.
        return not contains_transient(self._queries)

    def __repr__(self) -> str:
        return f"QueryMapping({sorted(self._queries)})"


class FunctionMapping(DatabaseMapping):
    """A mapping defined by an arbitrary Python function on states.

    The function must be deterministic and total on the legal states it
    will be applied to.  Used for theoretic counterexamples; prefer
    :class:`QueryMapping` for anything meant to model a real view.
    """

    def __init__(
        self,
        func: Callable[[DatabaseInstance, TypeAssignment], DatabaseInstance],
        arities: Mapping[str, int],
        label: str = "",
    ):
        self._func = func
        self._arities = dict(arities)
        self.label = label

    is_content_addressed = False

    def apply(self, instance, assignment) -> DatabaseInstance:
        result = self._func(instance, assignment)
        if not isinstance(result, DatabaseInstance):
            raise EvaluationError(
                "function mapping must return a DatabaseInstance"
            )
        return result

    def target_arities(self) -> Dict[str, int]:
        return dict(self._arities)

    def fingerprint(self) -> str:
        # Arbitrary callables have no content hash; a per-process token
        # still lets repeated *uses* of this object share artifacts.
        return stable_fingerprint(
            "FunctionMapping", transient_token(self), self._arities, self.label
        )

    def __repr__(self) -> str:
        return f"FunctionMapping({self.label or self._func!r})"


class IdentityMapping(DatabaseMapping):
    """The identity mapping ``D -> D`` (defines the identity view ``1_D``)."""

    def __init__(self, schema: Schema):
        self._schema = schema

    def apply(self, instance, assignment) -> DatabaseInstance:
        return instance

    def target_arities(self) -> Dict[str, int]:
        return self._schema.arities()

    def fingerprint(self) -> str:
        return stable_fingerprint("IdentityMapping", self._schema)

    def read_relations(self) -> Optional[FrozenSet[str]]:
        return frozenset(self._schema.arities())

    def __repr__(self) -> str:
        return f"IdentityMapping({self._schema.name!r})"


class ZeroMapping(DatabaseMapping):
    """The zero mapping (defines the zero view ``0_D``).

    The zero view preserves the type assignment but contains no
    relations at all (paper §2.2); every state maps to the unique empty
    structure.
    """

    def apply(self, instance, assignment) -> DatabaseInstance:
        return DatabaseInstance({})

    def target_arities(self) -> Dict[str, int]:
        return {}

    def fingerprint(self) -> str:
        return stable_fingerprint("ZeroMapping")

    def read_relations(self) -> Optional[FrozenSet[str]]:
        return frozenset()

    def __repr__(self) -> str:
        return "ZeroMapping()"


class ComposedMapping(DatabaseMapping):
    """Composition ``outer . inner`` (apply *inner* first)."""

    def __init__(self, outer: DatabaseMapping, inner: DatabaseMapping):
        self.outer = outer
        self.inner = inner

    def apply(self, instance, assignment) -> DatabaseInstance:
        return self.outer.apply(self.inner.apply(instance, assignment), assignment)

    def target_arities(self) -> Dict[str, int]:
        return self.outer.target_arities()

    def fingerprint(self) -> str:
        return stable_fingerprint(
            "ComposedMapping", self.outer.fingerprint(), self.inner.fingerprint()
        )

    def read_relations(self) -> Optional[FrozenSet[str]]:
        # The outer mapping reads only the inner's *output*, so the
        # composition's base read set is exactly the inner's.
        return self.inner.read_relations()

    @property
    def is_content_addressed(self) -> bool:  # type: ignore[override]
        from repro.engine.fingerprint import is_content_addressed

        return is_content_addressed(self.outer) and is_content_addressed(
            self.inner
        )

    def __repr__(self) -> str:
        return f"ComposedMapping({self.outer!r} ∘ {self.inner!r})"


class PairingMapping(DatabaseMapping):
    """The pairing ``gamma1 x gamma2`` with disjointly renamed relations.

    Produces, for each state ``s``, an instance holding the relations of
    ``gamma1'(s)`` prefixed ``left.`` and those of ``gamma2'(s)``
    prefixed ``right.``.  This is the mapping underlying the product
    view used to test join complementarity (``gamma1 x gamma2``
    injective) directly.
    """

    def __init__(self, left: DatabaseMapping, right: DatabaseMapping):
        self.left = left
        self.right = right

    def apply(self, instance, assignment) -> DatabaseInstance:
        left_instance = self.left.apply(instance, assignment)
        right_instance = self.right.apply(instance, assignment)
        combined = {}
        for name in left_instance:
            combined[f"left.{name}"] = left_instance.relation(name)
        for name in right_instance:
            combined[f"right.{name}"] = right_instance.relation(name)
        return DatabaseInstance(combined)

    def target_arities(self) -> Dict[str, int]:
        arities = {
            f"left.{name}": arity
            for name, arity in self.left.target_arities().items()
        }
        arities.update(
            {
                f"right.{name}": arity
                for name, arity in self.right.target_arities().items()
            }
        )
        return arities

    def fingerprint(self) -> str:
        return stable_fingerprint(
            "PairingMapping", self.left.fingerprint(), self.right.fingerprint()
        )

    def read_relations(self) -> Optional[FrozenSet[str]]:
        left = self.left.read_relations()
        right = self.right.read_relations()
        if left is None or right is None:
            return None
        return left | right

    @property
    def is_content_addressed(self) -> bool:  # type: ignore[override]
        from repro.engine.fingerprint import is_content_addressed

        return is_content_addressed(self.left) and is_content_addressed(
            self.right
        )

    def __repr__(self) -> str:
        return f"PairingMapping({self.left!r}, {self.right!r})"
