"""The partial lattice of views: complements (paper §1.3, §2.2).

Views embed into ``Part(LDB(D))`` via kernels; join and meet are those
of partitions where they exist as views.  Two views are:

* **join complementary** iff ``gamma1 x gamma2`` is injective -- kernel
  supremum (common refinement) is discrete (Definition 1.3.1);
* **meet complementary** iff ``gamma1 x gamma2`` is surjective onto
  ``LDB(V1) x LDB(V2)`` (Definition 1.3.4) -- every pair of view states
  is jointly realised;
* **complementary** iff both, in which case every update to either view
  is possible with the other constant (Observation 1.3.5).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.relational.enumeration import StateSpace
from repro.views.mappings import PairingMapping
from repro.views.view import View


def are_join_complements(left: View, right: View, space: StateSpace) -> bool:
    """Definition 1.3.1(a): is ``gamma1 x gamma2`` injective?"""
    left_table = left.image_table(space)
    right_table = right.image_table(space)
    pairs = set(zip(left_table, right_table))
    return len(pairs) == len(space)


def are_meet_complements(left: View, right: View, space: StateSpace) -> bool:
    """Definition 1.3.4(a): is ``gamma1 x gamma2`` surjective onto the
    product of the view state sets?

    ``LDB(Vi)`` is taken to be the image of ``gamma_i`` (the paper's
    surjectivity assumption).
    """
    left_table = left.image_table(space)
    right_table = right.image_table(space)
    pairs = set(zip(left_table, right_table))
    return len(pairs) == len(set(left_table)) * len(set(right_table))


def are_complementary(left: View, right: View, space: StateSpace) -> bool:
    """Definition 1.3.4(b): join complementary and meet complementary.

    Equivalently: ``gamma1 x gamma2`` is a bijection onto the product of
    the view state sets, so any update to either view is possible while
    holding the other constant (Observation 1.3.5).
    """
    return are_join_complements(left, right, space) and are_meet_complements(
        left, right, space
    )


def find_join_complements(
    view: View, candidates: Iterable[View], space: StateSpace
) -> Tuple[View, ...]:
    """All candidates that are join complements of *view*.

    Example 1.3.6 / the Bancilhon-Spyratos non-uniqueness phenomenon:
    expect this to return *several* views in general.
    """
    return tuple(
        candidate
        for candidate in candidates
        if are_join_complements(view, candidate, space)
    )


def find_complementary(
    view: View, candidates: Iterable[View], space: StateSpace
) -> Tuple[View, ...]:
    """All candidates fully complementary to *view*."""
    return tuple(
        candidate
        for candidate in candidates
        if are_complementary(view, candidate, space)
    )


def product_view(left: View, right: View, name: str | None = None) -> View:
    """The product view pairing two views' states.

    Its kernel is the supremum of the two kernels, so *left* and *right*
    are join complementary exactly when the product view is injective --
    a convenient executable restatement of Definition 1.3.1 used in
    tests.
    """
    return View(
        name or f"({left.name} × {right.name})",
        left.base_schema,
        None,
        PairingMapping(left.mapping, right.mapping),
    )
