"""Implied constraints of a view (paper §1.1).

"An implied constraint of view ``Gamma = (V, gamma)`` is a constraint
on ``V`` which is true for every instance of the form ``gamma'(s)``" --
and the paper's fix for the surjectivity problem is to endow the view
schema with its implied constraints, so that illegal targets (like the
join-violating insert of Example 1.1.1) are simply not view states.

Over a finite state space the notion is decidable by quantification
over the image:

* :func:`is_implied` -- does one constraint hold in every image state?
* :func:`implied_functional_dependencies` -- all FDs over a view
  relation that the view implies (the classical dependency-inference
  question, answered semantically);
* :func:`implied_join_dependency` -- does the view imply a given JD?
* :func:`complete_view_schema` -- extend the view's schema with a set
  of candidate constraints that hold on the image, and report whether
  the completed schema is *exact* (its LDB equals the image -- the
  standing surjectivity assumption).  The paper notes (after Example
  1.1.1, citing [Hegn84]) that first-order candidates do not always
  suffice; :func:`surjectivity_deficit` measures exactly the gap.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Tuple

from repro.relational.constraints import (
    Constraint,
    FunctionalDependency,
    JoinDependency,
)
from repro.relational.enumeration import StateSpace
from repro.relational.schema import Schema
from repro.views.view import View


def is_implied(
    constraint: Constraint,
    view: View,
    space: StateSpace,
    view_schema: Schema,
) -> bool:
    """True iff *constraint* holds in every image state of the view."""
    return all(
        constraint.holds(image, view_schema, space.assignment)
        for image in view.image_states(space)
    )


def implied_functional_dependencies(
    view: View,
    space: StateSpace,
    relation: str,
    view_schema: Schema,
    max_lhs: int = 2,
) -> Tuple[FunctionalDependency, ...]:
    """All implied FDs ``X -> A`` on one view relation.

    Enumerates left-hand sides up to *max_lhs* attributes and single
    right-hand attributes, returning the (non-trivial) dependencies
    that hold in every image state.
    """
    attributes = view_schema.relation(relation).attributes
    found: List[FunctionalDependency] = []
    for size in range(1, max_lhs + 1):
        for lhs in itertools.combinations(attributes, size):
            for rhs in attributes:
                if rhs in lhs:
                    continue
                fd = FunctionalDependency(relation, lhs, (rhs,))
                if is_implied(fd, view, space, view_schema):
                    found.append(fd)
    return tuple(found)


def implied_join_dependency(
    view: View,
    space: StateSpace,
    relation: str,
    components: Tuple[Tuple[str, ...], ...],
    view_schema: Schema,
) -> bool:
    """Does the view imply ``relation : ⋈[components]``?

    Example 1.1.1's diagnosis: the join view implies ``⋈[SP, PJ]``.
    """
    return is_implied(
        JoinDependency(relation, components), view, space, view_schema
    )


def complete_view_schema(
    view: View,
    space: StateSpace,
    view_schema: Schema,
    candidates: Iterable[Constraint],
) -> Schema:
    """The view schema extended with every implied candidate constraint."""
    implied = tuple(
        constraint
        for constraint in candidates
        if is_implied(constraint, view, space, view_schema)
    )
    return view_schema.with_constraints(implied)


def surjectivity_deficit(
    view: View,
    space: StateSpace,
    view_schema: Schema,
    max_candidates: int = 1 << 22,
) -> int:
    """How many legal states of *view_schema* are not images.

    Zero means the schema's constraints capture the image exactly (the
    paper's surjectivity assumption holds); positive means further
    implied constraints are needed -- possibly ones not expressible
    with the schema's constraint vocabulary at all ([Hegn84]).
    """
    view_space = StateSpace.enumerate(
        view_schema, space.assignment, max_candidates
    )
    return len(view.surjectivity_gap(space, view_space))
