"""Views of a schema and the partial lattice they form (paper §0.1, §2.2).

A *view* of a base schema ``D`` is a pair ``Gamma = (V, gamma)`` where
``V`` is a schema and ``gamma`` a database mapping whose induced state
function ``gamma' : LDB(D) -> LDB(V)`` is surjective.  This package
provides:

* :mod:`~repro.views.mappings` -- database mappings, both query-defined
  (the paper's interpretations) and function-defined (for the
  Bancilhon-Spyratos-style arbitrary views used in counterexamples);
* :mod:`~repro.views.view` -- :class:`~repro.views.view.View` with
  cached image tables and kernels over a
  :class:`~repro.relational.enumeration.StateSpace`, plus the identity
  and zero views;
* :mod:`~repro.views.morphisms` -- the (at most one) morphism between
  two views, implicit/explicit definability (Theorem 2.2.2, decided by
  kernel refinement over the finite state space), and view isomorphism;
* :mod:`~repro.views.lattice` -- the embedding of views into
  ``Part(LDB(D))``: the ordering ``<=``, join/meet complements
  (Definitions 1.3.1 and 1.3.4), full complementarity, and product
  views.
"""

from repro.views.mappings import (
    ComposedMapping,
    DatabaseMapping,
    FunctionMapping,
    IdentityMapping,
    QueryMapping,
    ZeroMapping,
)
from repro.views.view import View, identity_view, zero_view
from repro.views.morphisms import (
    are_isomorphic,
    defines,
    view_leq,
    view_morphism_table,
)
from repro.views.implied import (
    complete_view_schema,
    implied_functional_dependencies,
    implied_join_dependency,
    is_implied,
    surjectivity_deficit,
)
from repro.views.lattice import (
    are_complementary,
    are_join_complements,
    are_meet_complements,
    find_join_complements,
    product_view,
)

__all__ = [
    "ComposedMapping",
    "DatabaseMapping",
    "FunctionMapping",
    "IdentityMapping",
    "QueryMapping",
    "View",
    "ZeroMapping",
    "are_complementary",
    "are_isomorphic",
    "are_join_complements",
    "are_meet_complements",
    "complete_view_schema",
    "implied_functional_dependencies",
    "implied_join_dependency",
    "is_implied",
    "surjectivity_deficit",
    "defines",
    "find_join_complements",
    "identity_view",
    "product_view",
    "view_leq",
    "view_morphism_table",
    "zero_view",
]
