"""Views ``Gamma = (V, gamma)`` with cached per-state-space analyses.

A :class:`View` couples a view schema with a database mapping from a
base schema.  All semantic questions (image, kernel, surjectivity) are
asked relative to a :class:`~repro.relational.enumeration.StateSpace`
of the base schema; results are cached per space, keyed by identity,
since state spaces are immutable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine.fingerprint import (
    is_content_addressed as fingerprint_is_content_addressed,
    stable_fingerprint,
)
from repro.errors import NotSurjectiveError, SchemaError
from repro.algebra.partitions import Partition
from repro.kernel.config import bulk_enabled
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance, sorted_instances
from repro.relational.schema import Schema
from repro.typealgebra.assignment import TypeAssignment
from repro.views.mappings import DatabaseMapping, IdentityMapping, ZeroMapping


class View:
    """A view of a base schema.

    Parameters
    ----------
    name:
        Display name (``Gamma_1`` etc.).
    base_schema:
        The base schema ``D``.
    view_schema:
        The view schema ``V``.  Its signature must match the mapping's
        target arities.  Pass ``None`` to mean "the image schema": a
        constraint-free schema whose legal states are *defined* to be
        the image of the mapping (the paper's standing surjectivity
        assumption then holds by construction).
    mapping:
        The database mapping ``gamma``.
    """

    __slots__ = (
        "name",
        "base_schema",
        "view_schema",
        "mapping",
        "_fingerprint",
        "_image_cache",
        "_kernel_cache",
        "_preimage_cache",
    )

    def __init__(
        self,
        name: str,
        base_schema: Schema,
        view_schema: Optional[Schema],
        mapping: DatabaseMapping,
    ):
        if view_schema is not None:
            declared = {
                rel.name: rel.arity for rel in view_schema.relations
            }
            if declared != mapping.target_arities():
                raise SchemaError(
                    f"view {name!r}: view schema signature {declared} does "
                    f"not match mapping signature {mapping.target_arities()}"
                )
        self.name = name
        self.base_schema = base_schema
        self.view_schema = view_schema
        self.mapping = mapping
        self._fingerprint: Optional[str] = None
        self._image_cache: Dict[int, Tuple[DatabaseInstance, ...]] = {}
        self._kernel_cache: Dict[int, Partition] = {}
        self._preimage_cache: Dict[int, Dict[DatabaseInstance, Tuple[DatabaseInstance, ...]]] = {}

    def __repr__(self) -> str:
        return f"View({self.name!r})"

    # -- fingerprinting ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of ``(V, gamma)`` (memoized).

        Two independently constructed but equal views fingerprint
        identically and therefore share every engine artifact (strong
        analysis, preimage index, update procedure).
        """
        if self._fingerprint is None:
            self._fingerprint = stable_fingerprint(
                "View",
                self.name,
                self.base_schema,
                self.view_schema,
                self.mapping,
            )
        return self._fingerprint

    @property
    def is_content_addressed(self) -> bool:
        """True iff the fingerprint is stable across processes."""
        return fingerprint_is_content_addressed(self.mapping)

    # -- pickling ----------------------------------------------------------------
    #
    # Per-space caches are keyed by ``id(space)``; after unpickling in a
    # different process those ids could collide with unrelated spaces, so
    # the caches are dropped.  The memoized fingerprint is dropped too:
    # transient fingerprints are only meaningful in-process.

    def __getstate__(self):
        return (self.name, self.base_schema, self.view_schema, self.mapping)

    def __setstate__(self, state) -> None:
        name, base_schema, view_schema, mapping = state
        self.name = name
        self.base_schema = base_schema
        self.view_schema = view_schema
        self.mapping = mapping
        self._fingerprint = None
        self._image_cache = {}
        self._kernel_cache = {}
        self._preimage_cache = {}

    # -- pointwise application --------------------------------------------------

    def apply(
        self, state: DatabaseInstance, assignment: TypeAssignment
    ) -> DatabaseInstance:
        """``gamma'(state)``."""
        return self.mapping.apply(state, assignment)

    # -- per-space analyses --------------------------------------------------------

    def image_table(self, space: StateSpace) -> Tuple[DatabaseInstance, ...]:
        """``gamma'`` tabulated over the space (aligned with its states).

        Under the bulk kernel, mappings that declare a read set
        (:meth:`~repro.views.mappings.DatabaseMapping.read_relations`)
        are evaluated once per *distinct restriction* of a state to that
        read set instead of once per state: two states whose codec masks
        agree on the read-set slots hold identical content on every
        relation the mapping can observe, so they share one image.
        """
        key = id(space)
        if key not in self._image_cache:
            if bulk_enabled():
                table = self._image_table_bulk(space)
            else:
                table = tuple(
                    self.mapping.apply(state, space.assignment)
                    for state in space.states
                )
            self._image_cache[key] = table
        return self._image_cache[key]

    def _image_table_bulk(
        self, space: StateSpace
    ) -> Tuple[DatabaseInstance, ...]:
        from repro.kernel.bulkops import StrideTicker, restriction_key_mask

        states = space.states
        mapping = self.mapping
        if isinstance(mapping, IdentityMapping):
            return tuple(states)
        if mapping.distributes_over_union():
            return self._image_table_row_local(space)
        reads = mapping.read_relations()
        if reads is None:
            return tuple(
                mapping.apply(state, space.assignment) for state in states
            )
        read_mask = restriction_key_mask(space.codec.slots, reads)
        images: Dict[int, DatabaseInstance] = {}
        table = []
        ticker = StrideTicker()
        for state, mask in zip(states, space.masks):
            ticker.tick()
            restriction = mask & read_mask
            image = images.get(restriction)
            if image is None:
                image = mapping.apply(state, space.assignment)
                images[restriction] = image
            table.append(image)
        ticker.flush()
        return tuple(table)

    def _image_table_row_local(
        self, space: StateSpace
    ) -> Tuple[DatabaseInstance, ...]:
        """Slot-compiled image table for row-local mappings.

        ``gamma'`` distributes over row unions, so each codec slot's
        single-row image is computed once; a state's *image signature*
        is then the union of its slots' signatures (one
        :func:`union_selected` per state), and each distinct signature
        is materialised *once*, directly from its bits -- every bit
        names one output row, so no state-level ``mapping.apply`` runs
        at all, and states sharing a signature share one image object.
        """
        from repro.kernel.bulkops import (
            StrideTicker,
            chunked_union_tables,
            union_selected_chunked,
        )
        from repro.relational.relations import Relation

        mapping = self.mapping
        assignment = space.assignment
        arities = self.base_schema.arities()
        empty = {
            name: Relation((), arity) for name, arity in arities.items()
        }
        # One single-row probe per codec slot; the output rows of each
        # probe index a shared signature space (bit -> one output row).
        signature_index: Dict[Tuple[str, Tuple], int] = {}
        bit_rows: list = []
        slot_signatures = []
        arity_of = mapping.target_arities()
        target_names = tuple(arity_of)
        ticker = StrideTicker()
        for name, row in space.codec.slots:
            ticker.tick()
            probe = DatabaseInstance(
                {**empty, name: Relation((row,), arities[name])}
            )
            image = mapping.apply(probe, assignment)
            signature = 0
            for target in target_names:
                for out_row in image.relation(target).rows:
                    key = (target, out_row)
                    index = signature_index.get(key)
                    if index is None:
                        index = len(signature_index)
                        signature_index[key] = index
                        bit_rows.append(key)
                    signature |= 1 << index
            slot_signatures.append(signature)

        def materialise(signature: int) -> DatabaseInstance:
            rows_by_target: Dict[str, list] = {
                name: [] for name in target_names
            }
            probe = signature
            while probe:  # reprolint: holds-guard -- bounded by the
                # signature popcount; the per-state loop is stride-ticked
                low = probe & -probe
                probe ^= low
                target, out_row = bit_rows[low.bit_length() - 1]
                rows_by_target[target].append(out_row)
            return DatabaseInstance(
                {
                    name: Relation(rows_by_target[name], arity_of[name])
                    for name in target_names
                }
            )

        tables = chunked_union_tables(slot_signatures)
        images: Dict[int, DatabaseInstance] = {}
        table = []
        for mask in space.masks:
            ticker.tick()
            signature = union_selected_chunked(tables, mask)
            image = images.get(signature)
            if image is None:
                image = materialise(signature)
                images[signature] = image
            table.append(image)
        ticker.flush()
        return tuple(table)

    def image_states(self, space: StateSpace) -> Tuple[DatabaseInstance, ...]:
        """The distinct view states, deterministically ordered."""
        return sorted_instances(set(self.image_table(space)))

    def kernel(self, space: StateSpace) -> Partition:
        """``Pi(Gamma) = ker(gamma')`` as a partition of the states."""
        key = id(space)
        if key not in self._kernel_cache:
            table = self.image_table(space)
            self._kernel_cache[key] = Partition.from_kernel(
                space.states, lambda s: table[space.index(s)]
            )
        return self._kernel_cache[key]

    def preimage_index(
        self, space: StateSpace
    ) -> Dict[DatabaseInstance, Tuple[DatabaseInstance, ...]]:
        """The full fibre index ``view state -> (gamma')^{-1}`` (cached).

        This is the tabulated inverse that every update strategy walks;
        the engine layer memoizes it as an artifact so that independent
        strategies over the same view and space share one table.
        """
        key = id(space)
        if key not in self._preimage_cache:
            fibres: Dict[DatabaseInstance, list] = {}
            for state, image in zip(space.states, self.image_table(space)):
                fibres.setdefault(image, []).append(state)
            self._preimage_cache[key] = {
                image: tuple(states) for image, states in fibres.items()
            }
        return self._preimage_cache[key]

    def preimages(
        self, space: StateSpace, view_state: DatabaseInstance
    ) -> Tuple[DatabaseInstance, ...]:
        """All base states mapping to *view_state* (cached per space)."""
        return self.preimage_index(space).get(view_state, ())

    # -- surjectivity (the paper's standing assumption, §1.1) ----------------------

    def is_surjective_onto(
        self, space: StateSpace, view_space: StateSpace
    ) -> bool:
        """True iff the image is all of the given view state space."""
        return set(self.image_table(space)) == set(view_space.states)

    def surjectivity_gap(
        self, space: StateSpace, view_space: StateSpace
    ) -> Tuple[DatabaseInstance, ...]:
        """View states not in the image -- the states whose absence of a
        reflection Example 1.1.1 demonstrates."""
        image = set(self.image_table(space))
        return tuple(t for t in view_space.states if t not in image)

    def check_surjective(
        self, space: StateSpace, view_space: StateSpace
    ) -> None:
        """Raise :class:`~repro.errors.NotSurjectiveError` with the gap."""
        gap = self.surjectivity_gap(space, view_space)
        if gap:
            raise NotSurjectiveError(
                f"view {self.name!r} misses {len(gap)} view state(s); "
                "add the implied constraints to the view schema"
            )

    def view_space(self, space: StateSpace) -> StateSpace:
        """The image as a state space of the view schema.

        When ``view_schema`` is ``None`` a constraint-free image schema
        is fabricated; either way the returned space's states are
        exactly the image (so surjectivity holds by construction, as the
        paper assumes after §1.1).
        """
        schema = self.view_schema
        if schema is None:
            from repro.relational.schema import RelationSchema

            arities = self.mapping.target_arities()
            schema = Schema(
                name=f"{self.name}.image",
                relations=tuple(
                    RelationSchema(
                        name,
                        tuple(f"c{i}" for i in range(arity)),
                    )
                    for name, arity in sorted(arities.items())
                ),
                enforce_column_types=False,
            )
        return StateSpace.from_states(
            schema, space.assignment, self.image_states(space), validate=False
        )


def identity_view(schema: Schema, name: str = "1_D") -> View:
    """The identity view ``1_D = (D, 1)`` -- a join complement of every
    view, under which only the identity update is possible (§1.3)."""
    return View(name, schema, schema, IdentityMapping(schema))


def zero_view(schema: Schema, name: str = "0_D") -> View:
    """The zero view ``0_D`` -- no relations, kernel indiscrete (§2.2)."""
    zero_schema = Schema(name="zero", relations=(), enforce_column_types=False)
    return View(name, schema, zero_schema, ZeroMapping())
