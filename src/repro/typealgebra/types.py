"""Type expressions: the free Boolean algebra over atomic types.

The paper's types (§2.1(a)) form a Boolean algebra under disjunction,
conjunction, and negation, with greatest element ``tau_u`` (universally
true) and least element ``tau_bot`` (universally false).  We realise this
as a small expression AST with Python operator overloads:

>>> a, b = AtomicType("A"), AtomicType("B")
>>> expr = (a | b) & ~AtomicType("N")
>>> sorted(t.name for t in atoms_of(expr))
['A', 'B', 'N']

Semantic questions (extension, equivalence) are answered relative to a
:class:`~repro.typealgebra.assignment.TypeAssignment`, which interprets
each atom as a finite set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator


class TypeExpr:
    """A Boolean combination of atomic types.

    Instances are immutable and hashable.  Combine with ``|``, ``&`` and
    ``~``.  Equality is *syntactic* (up to the dataclass fields); semantic
    equivalence is decided by
    :meth:`repro.typealgebra.assignment.TypeAssignment.equivalent`.
    """

    __slots__ = ()

    def __or__(self, other: "TypeExpr") -> "TypeExpr":
        if not isinstance(other, TypeExpr):
            return NotImplemented
        return Disjunction(self, other)

    def __and__(self, other: "TypeExpr") -> "TypeExpr":
        if not isinstance(other, TypeExpr):
            return NotImplemented
        return Conjunction(self, other)

    def __invert__(self) -> "TypeExpr":
        return Negation(self)

    def atoms(self) -> FrozenSet["AtomicType"]:
        """The atomic types occurring in this expression."""
        return frozenset(self._iter_atoms())

    def _iter_atoms(self) -> Iterator["AtomicType"]:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class AtomicType(TypeExpr):
    """An atomic (generator) type, identified by name.

    In the traditional framework each attribute ``A`` gives one atomic
    type ``tau_A``; null types are also atomic (see
    :class:`~repro.typealgebra.algebra.TypeAlgebra`).
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            # reprolint: disable=RL001 -- constructor validation of atom names; asserted by tests/typealgebra/test_types.py
            raise ValueError("atomic type name must be non-empty")

    def _iter_atoms(self) -> Iterator["AtomicType"]:
        yield self

    def __repr__(self) -> str:
        return f"τ[{self.name}]"


@dataclass(frozen=True, slots=True)
class TopType(TypeExpr):
    """The universally true type ``tau_u`` (greatest element)."""

    def _iter_atoms(self) -> Iterator[AtomicType]:
        return iter(())

    def __repr__(self) -> str:
        return "τ_⊤"


@dataclass(frozen=True, slots=True)
class BottomType(TypeExpr):
    """The universally false type ``tau_bot`` (least element)."""

    def _iter_atoms(self) -> Iterator[AtomicType]:
        return iter(())

    def __repr__(self) -> str:
        return "τ_⊥"


@dataclass(frozen=True, slots=True)
class Disjunction(TypeExpr):
    """``left v right`` -- a value has this type iff it has either."""

    left: TypeExpr
    right: TypeExpr

    def _iter_atoms(self) -> Iterator[AtomicType]:
        yield from self.left._iter_atoms()
        yield from self.right._iter_atoms()

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Conjunction(TypeExpr):
    """``left ^ right`` -- a value has this type iff it has both."""

    left: TypeExpr
    right: TypeExpr

    def _iter_atoms(self) -> Iterator[AtomicType]:
        yield from self.left._iter_atoms()
        yield from self.right._iter_atoms()

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Negation(TypeExpr):
    """``~operand`` -- a value has this type iff it does not have the operand."""

    operand: TypeExpr

    def _iter_atoms(self) -> Iterator[AtomicType]:
        yield from self.operand._iter_atoms()

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


#: The greatest element of every type algebra.
TOP: TypeExpr = TopType()

#: The least element of every type algebra.
BOTTOM: TypeExpr = BottomType()


def atoms_of(expr: TypeExpr) -> FrozenSet[AtomicType]:
    """Return the set of atomic types occurring in *expr*."""
    return expr.atoms()


def disjunction_of(exprs) -> TypeExpr:
    """Fold a sequence of type expressions into one disjunction.

    The empty disjunction is :data:`BOTTOM`.
    """
    result: TypeExpr = BOTTOM
    first = True
    for expr in exprs:
        result = expr if first else Disjunction(result, expr)
        first = False
    return result


def conjunction_of(exprs) -> TypeExpr:
    """Fold a sequence of type expressions into one conjunction.

    The empty conjunction is :data:`TOP`.
    """
    result: TypeExpr = TOP
    first = True
    for expr in exprs:
        result = expr if first else Conjunction(result, expr)
        first = False
    return result
