"""Type assignments: models of a type algebra's axioms (paper §2.1).

A type assignment fixes, once and for all within a situation, the finite
extension of each atomic type.  Users never update it; all state-space
enumeration and all view-update reasoning happens *relative to* a fixed
assignment ``mu``, exactly as the paper works with ``LDB(D, mu)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import TypeAlgebraError
from repro.typealgebra.types import (
    AtomicType,
    BottomType,
    Conjunction,
    Disjunction,
    Negation,
    TopType,
    TypeExpr,
)


@dataclass(frozen=True, eq=False)
class TypeAssignment:
    """An interpretation of atomic types as finite sets of values.

    The *universe* is the union of all atom extensions; negation is
    interpreted relative to it.  Instances are immutable and hashable.
    """

    domains: Mapping[AtomicType, FrozenSet[object]]
    _universe: FrozenSet[object] = field(init=False, repr=False, compare=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeAssignment):
            return NotImplemented
        return dict(self.domains) == dict(other.domains)

    def __hash__(self) -> int:
        return hash(frozenset(self.domains.items()))

    def __post_init__(self) -> None:
        frozen: Dict[AtomicType, FrozenSet[object]] = {}
        for atom, values in self.domains.items():
            if not isinstance(atom, AtomicType):
                raise TypeAlgebraError(
                    f"domain keys must be atomic types, got {atom!r}"
                )
            frozen[atom] = frozenset(values)
        object.__setattr__(self, "domains", frozen)
        universe = frozenset().union(*frozen.values()) if frozen else frozenset()
        object.__setattr__(self, "_universe", universe)

    @classmethod
    def from_names(
        cls, domains: Mapping[str, Iterable[object]]
    ) -> "TypeAssignment":
        """Convenience constructor keying domains by atom *name*."""
        return cls(
            {AtomicType(name): frozenset(vals) for name, vals in domains.items()}
        )

    @property
    def universe(self) -> FrozenSet[object]:
        """The union of all atomic-type extensions."""
        return self._universe

    def extension(self, expr: TypeExpr) -> FrozenSet[object]:
        """The set of universe values satisfying the type expression."""
        if isinstance(expr, AtomicType):
            try:
                return self.domains[expr]
            except KeyError:
                raise TypeAlgebraError(
                    f"assignment does not interpret atom {expr!r}"
                ) from None
        if isinstance(expr, TopType):
            return self._universe
        if isinstance(expr, BottomType):
            return frozenset()
        if isinstance(expr, Disjunction):
            return self.extension(expr.left) | self.extension(expr.right)
        if isinstance(expr, Conjunction):
            return self.extension(expr.left) & self.extension(expr.right)
        if isinstance(expr, Negation):
            return self._universe - self.extension(expr.operand)
        raise TypeAlgebraError(f"unknown type expression {expr!r}")

    def satisfies(self, value: object, expr: TypeExpr) -> bool:
        """True iff *value* is in the extension of *expr*."""
        return value in self.extension(expr)

    def equivalent(self, left: TypeExpr, right: TypeExpr) -> bool:
        """Semantic equivalence of two type expressions (same extension)."""
        return self.extension(left) == self.extension(right)

    def subtype(self, left: TypeExpr, right: TypeExpr) -> bool:
        """True iff every value of *left* is a value of *right*."""
        return self.extension(left) <= self.extension(right)

    def restrict(self, atoms: Iterable[AtomicType]) -> "TypeAssignment":
        """The sub-assignment interpreting only the given atoms."""
        atoms = tuple(atoms)
        missing = [a for a in atoms if a not in self.domains]
        if missing:
            raise TypeAlgebraError(f"atoms not interpreted: {missing!r}")
        return TypeAssignment({a: self.domains[a] for a in atoms})

    def sorted_extension(self, expr: TypeExpr) -> Tuple[object, ...]:
        """Extension of *expr* in a deterministic order (by ``repr``)."""
        return tuple(sorted(self.extension(expr), key=repr))

    def fingerprint(self) -> str:
        """Stable content hash of the atom extensions.

        Keys the engine's artifact cache: two assignments with equal
        domains share every ``LDB(D, mu)``-derived artifact.
        """
        from repro.engine.fingerprint import stable_fingerprint

        return stable_fingerprint("TypeAssignment", self.domains)
