"""The type algebra triple ``(T, K, A)`` and null values (paper §2.1).

The axioms ``A`` supported here are the ones the paper actually uses:

* *membership axioms* -- for each name ``k`` and atomic type ``tau``,
  whether ``tau(k)`` holds;
* *null-type axioms* -- ``tau_eta(eta) ^ (Ax)(tau_eta(x) -> x = eta)``,
  declaring a type with exactly one value (a value-inapplicable null);
* *disjointness axioms* -- pairs of atomic types declared to have empty
  intersection (the usual situation for distinct attribute domains).

A :class:`~repro.typealgebra.assignment.TypeAssignment` is checked against
these axioms by :meth:`TypeAlgebra.validate_assignment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import TypeAlgebraError
from repro.typealgebra.types import AtomicType


class NullValue:
    """The canonical value-inapplicable null value ``eta``.

    A single shared instance, :data:`NULL`, is used throughout the library
    so that null-padded tuples compare and hash consistently.  It is *not*
    SQL's three-valued-logic null: the paper's nulls are ordinary domain
    elements of a one-element type, and equality on them is classical.
    """

    _instance: "NullValue | None" = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "n"

    def __reduce__(self):
        return (NullValue, ())


#: The shared null value (rendered ``n``, as in the paper's examples).
NULL = NullValue()


@dataclass(frozen=True)
class TypeAlgebra:
    """A type algebra ``(T, K, A)``.

    Parameters
    ----------
    atoms:
        The atomic types generating the Boolean algebra ``T``.
    names:
        The constant symbols ``K``, as a mapping name -> value.  Null
        types contribute their null symbol automatically.
    memberships:
        For each name, the set of atomic-type names it belongs to.
    null_types:
        The subset of *atoms* axiomatised as null types: each is
        constrained to have exactly the one-element extension
        ``{names[symbol]}``, given as a mapping atomic-type-name ->
        null-symbol-name.
    disjoint_pairs:
        Pairs of atomic-type names axiomatised to be disjoint.
    """

    atoms: Tuple[AtomicType, ...]
    names: Mapping[str, object] = field(default_factory=dict)
    memberships: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    null_types: Mapping[str, str] = field(default_factory=dict)
    disjoint_pairs: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        atom_names = {a.name for a in self.atoms}
        if len(atom_names) != len(self.atoms):
            raise TypeAlgebraError("duplicate atomic type names")
        for null_atom, null_symbol in self.null_types.items():
            if null_atom not in atom_names:
                raise TypeAlgebraError(
                    f"null type {null_atom!r} is not a declared atom"
                )
            if null_symbol not in self.names:
                raise TypeAlgebraError(
                    f"null symbol {null_symbol!r} has no declared value"
                )
        for name, types in self.memberships.items():
            if name not in self.names:
                raise TypeAlgebraError(f"membership for unknown name {name!r}")
            unknown = set(types) - atom_names
            if unknown:
                raise TypeAlgebraError(
                    f"membership of {name!r} mentions unknown types {unknown}"
                )
        for left, right in self.disjoint_pairs:
            if left not in atom_names or right not in atom_names:
                raise TypeAlgebraError(
                    f"disjointness axiom mentions unknown types ({left}, {right})"
                )

    @classmethod
    def of_attributes(
        cls,
        attribute_names: Iterable[str],
        with_null: bool = False,
        disjoint: bool = True,
    ) -> "TypeAlgebra":
        """Build the standard attribute-style algebra.

        One atomic type per attribute name; optionally a null type
        ``eta`` (atom ``"eta"``, value :data:`NULL`); attribute types are
        pairwise disjoint (and disjoint from the null type) when
        *disjoint* is true -- the traditional non-interacting attributes
        of [Maie83], recovered inside the richer framework.
        """
        attribute_names = tuple(attribute_names)
        atoms = tuple(AtomicType(name) for name in attribute_names)
        names: Dict[str, object] = {}
        memberships: Dict[str, FrozenSet[str]] = {}
        null_types: Dict[str, str] = {}
        if with_null:
            atoms = atoms + (AtomicType("eta"),)
            names["eta"] = NULL
            memberships["eta"] = frozenset({"eta"})
            null_types["eta"] = "eta"
        pairs: Tuple[Tuple[str, str], ...] = ()
        if disjoint:
            all_names = [a.name for a in atoms]
            pairs = tuple(
                (all_names[i], all_names[j])
                for i in range(len(all_names))
                for j in range(i + 1, len(all_names))
            )
        return cls(
            atoms=atoms,
            names=names,
            memberships=memberships,
            null_types=null_types,
            disjoint_pairs=pairs,
        )

    def atom(self, name: str) -> AtomicType:
        """Look up an atomic type by name."""
        for candidate in self.atoms:
            if candidate.name == name:
                return candidate
        raise TypeAlgebraError(f"no atomic type named {name!r}")

    def has_atom(self, name: str) -> bool:
        """True iff an atomic type with this name is declared."""
        return any(candidate.name == name for candidate in self.atoms)

    def is_null_type(self, atom: AtomicType) -> bool:
        """True iff *atom* is axiomatised as a (one-valued) null type."""
        return atom.name in self.null_types

    def validate_assignment(self, assignment) -> None:
        """Check that *assignment* is a model of the axioms ``A``.

        Raises :class:`~repro.errors.TypeAlgebraError` on the first
        violated axiom; returns ``None`` if the assignment is a model.
        """
        for atom in self.atoms:
            if atom not in assignment.domains:
                raise TypeAlgebraError(f"assignment missing atom {atom!r}")
        for null_atom_name, null_symbol in self.null_types.items():
            atom = self.atom(null_atom_name)
            expected = frozenset({self.names[null_symbol]})
            if assignment.domains[atom] != expected:
                raise TypeAlgebraError(
                    f"null type {null_atom_name!r} must have extension "
                    f"{set(expected)!r}, got {set(assignment.domains[atom])!r}"
                )
        for name, value in self.names.items():
            declared = self.memberships.get(name, frozenset())
            for atom in self.atoms:
                holds = value in assignment.domains[atom]
                should_hold = atom.name in declared
                if holds != should_hold:
                    raise TypeAlgebraError(
                        f"name {name!r}: membership in {atom!r} is {holds}, "
                        f"axioms require {should_hold}"
                    )
        for left_name, right_name in self.disjoint_pairs:
            left = assignment.domains[self.atom(left_name)]
            right = assignment.domains[self.atom(right_name)]
            overlap = left & right
            if overlap:
                raise TypeAlgebraError(
                    f"types {left_name!r} and {right_name!r} must be "
                    f"disjoint but share {overlap!r}"
                )
