"""Type algebras: the Boolean algebra of unary type predicates (paper §2.1).

A *type algebra* is a triple ``(T, K, A)`` where ``T`` is a finite set of
unary predicate symbols closed under the Boolean operations, ``K`` is a set
of constant symbols (*names*), and ``A`` is a set of axioms rich enough to
decide ``tau(k)`` for every type ``tau`` and name ``k``.

This package provides:

* :class:`~repro.typealgebra.types.TypeExpr` and its subclasses -- the free
  Boolean algebra of type expressions over a set of atomic types, with
  the operations ``|`` (disjunction), ``&`` (conjunction) and ``~``
  (negation), plus the bounds :data:`~repro.typealgebra.types.TOP` and
  :data:`~repro.typealgebra.types.BOTTOM`;
* :class:`~repro.typealgebra.algebra.TypeAlgebra` -- the ``(T, K, A)``
  triple, including *null types* (types axiomatised to contain exactly one
  value, the paper's value-inapplicable nulls);
* :class:`~repro.typealgebra.assignment.TypeAssignment` -- a model of the
  axioms: an assignment of a finite set to each atomic type and of a value
  to each name.
"""

from repro.typealgebra.types import (
    TOP,
    BOTTOM,
    AtomicType,
    TypeExpr,
    atoms_of,
)
from repro.typealgebra.algebra import NullValue, TypeAlgebra, NULL
from repro.typealgebra.assignment import TypeAssignment

__all__ = [
    "TOP",
    "BOTTOM",
    "NULL",
    "AtomicType",
    "NullValue",
    "TypeAlgebra",
    "TypeAssignment",
    "TypeExpr",
    "atoms_of",
]
