"""A circuit breaker for deterministically failing derivations.

The engine's degradation ladder (bitset -> naive -> typed
:class:`~repro.errors.KernelFailureError`) is the right response to a
*transient* kernel crash; against a *deterministic* one it re-runs two
doomed builds on every request.  A :class:`CircuitBreaker` remembers,
per ``(kind, fingerprint)``, how many consecutive kernel failures a
derivation has produced, and once the threshold is crossed it stops
admitting ladder runs:

* in **fail-fast** mode (the default) further requests raise a typed
  :class:`~repro.errors.CircuitOpenError` immediately -- callers get
  the fail-closed verdict in microseconds instead of after a full
  bitset + naive build;
* in **pin-naive** mode further requests are *pinned* to the naive
  kernel: the engine builds directly on the naive rung, skipping the
  bitset attempt that keeps crashing.  In this mode successful-but-
  degraded builds (bitset crashed, naive succeeded) also count toward
  the threshold, since each one re-pays the doomed bitset attempt.

The breaker follows the classical state machine::

    CLOSED --- threshold consecutive failures ---> OPEN
    OPEN   --- cooldown elapsed -----------------> HALF-OPEN
    HALF-OPEN: exactly one probe runs the full ladder;
               success -> CLOSED, failure -> OPEN (fresh cooldown)

Everything is guarded by one lock and the clock is injectable, so the
state machine is thread-safe and unit-testable without sleeping.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import CircuitOpenError

__all__ = [
    "ALLOW",
    "BREAKER_COOLDOWN_ENV_VAR",
    "BREAKER_MODE_ENV_VAR",
    "BREAKER_THRESHOLD_ENV_VAR",
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_COOLDOWN_MS",
    "DEFAULT_THRESHOLD",
    "FAIL_FAST",
    "HALF_OPEN",
    "OPEN",
    "PIN_NAIVE",
    "PINNED",
    "PROBE",
]

#: Environment overrides for engines built without explicit knobs.
BREAKER_THRESHOLD_ENV_VAR = "REPRO_BREAKER_THRESHOLD"
BREAKER_COOLDOWN_ENV_VAR = "REPRO_BREAKER_COOLDOWN_MS"
BREAKER_MODE_ENV_VAR = "REPRO_BREAKER_MODE"

DEFAULT_THRESHOLD = 3
DEFAULT_COOLDOWN_MS = 30_000.0

#: Breaker modes.
FAIL_FAST = "fail-fast"
PIN_NAIVE = "pin-naive"
_MODES = (FAIL_FAST, PIN_NAIVE)

#: Circuit states (as reported by :meth:`CircuitBreaker.snapshot`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Admission verdicts returned by :meth:`CircuitBreaker.admit`.
ALLOW = "allow"  # closed circuit: run the normal ladder
PROBE = "probe"  # half-open: this caller is the single probe
PINNED = "pinned"  # open, pin-naive mode: build on the naive rung only


@dataclass
class _DerivationState:
    """Mutable breaker bookkeeping for one ``(kind, fingerprint)``."""

    failures: int = 0  # consecutive; reset on success
    state: str = CLOSED
    opened_at: float = 0.0
    trips: int = 0
    probing: bool = False


class CircuitBreaker:
    """Thread-safe per-derivation circuit breaker (see module docs)."""

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown_ms: float = DEFAULT_COOLDOWN_MS,
        mode: str = FAIL_FAST,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            # reprolint: disable=RL001 -- constructor validation of breaker knobs; asserted by tests/resilience/test_breaker.py
            raise ValueError("threshold must be positive")
        if cooldown_ms < 0:
            # reprolint: disable=RL001 -- constructor validation of breaker knobs; asserted by tests/resilience/test_breaker.py
            raise ValueError("cooldown_ms must be non-negative")
        if mode not in _MODES:
            # reprolint: disable=RL001 -- constructor validation of breaker knobs; asserted by tests/resilience/test_breaker.py
            raise ValueError(
                f"unknown breaker mode {mode!r}; expected one of {_MODES}"
            )
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.mode = mode
        self._clock = clock
        self._lock = threading.RLock()
        self._states: Dict[Tuple[str, str], _DerivationState] = {}

    @classmethod
    def from_env(
        cls,
        threshold: Optional[int] = None,
        cooldown_ms: Optional[float] = None,
        mode: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "CircuitBreaker":
        """A breaker from explicit knobs, falling back to environment.

        Malformed environment values raise eagerly (a typo'd threshold
        must not silently mean "default threshold").
        """
        if threshold is None:
            raw = os.environ.get(BREAKER_THRESHOLD_ENV_VAR)
            threshold = (
                DEFAULT_THRESHOLD
                if raw is None or not raw.strip()
                else int(raw)
            )
        if cooldown_ms is None:
            raw = os.environ.get(BREAKER_COOLDOWN_ENV_VAR)
            cooldown_ms = (
                DEFAULT_COOLDOWN_MS
                if raw is None or not raw.strip()
                else float(raw)
            )
        if mode is None:
            raw = os.environ.get(BREAKER_MODE_ENV_VAR)
            mode = FAIL_FAST if raw is None or not raw.strip() else raw.strip()
        return cls(
            threshold=threshold, cooldown_ms=cooldown_ms, mode=mode,
            clock=clock,
        )

    # -- admission ------------------------------------------------------------

    def admit(self, kind: str, fingerprint: str) -> str:
        """Gate one derivation attempt.

        Returns :data:`ALLOW` (closed circuit -- run the ladder),
        :data:`PROBE` (half-open -- this caller is the single probe, and
        must report back via ``record_success``/``record_failure``), or
        :data:`PINNED` (open in pin-naive mode -- build naive-only).
        Raises :class:`CircuitOpenError` when open in fail-fast mode.
        """
        with self._lock:
            state = self._states.get((kind, fingerprint))
            if state is None or state.state == CLOSED:
                return ALLOW
            now = self._clock()
            if (
                state.state == OPEN
                and (now - state.opened_at) * 1e3 >= self.cooldown_ms
            ):
                state.state = HALF_OPEN
                state.probing = False
            if state.state == HALF_OPEN and not state.probing:
                state.probing = True
                return PROBE
            # Open, or half-open with the probe already in flight.
            if self.mode == PIN_NAIVE:
                return PINNED
            remaining = max(
                0.0, self.cooldown_ms - (now - state.opened_at) * 1e3
            )
            raise CircuitOpenError(
                f"circuit open for derivation {kind!r} "
                f"(fingerprint {fingerprint[:12]}...): "
                f"{state.failures} consecutive kernel failures; "
                f"half-open probe in {remaining:.0f}ms, or call "
                "Engine.reset_breaker()",
                kind=kind,
                fingerprint=fingerprint,
                failures=state.failures,
                retry_after_ms=remaining,
            )

    # -- outcome reporting ----------------------------------------------------

    def record_success(self, kind: str, fingerprint: str) -> None:
        """A clean build: close the circuit and forget the derivation."""
        with self._lock:
            self._states.pop((kind, fingerprint), None)

    def record_degraded(self, kind: str, fingerprint: str) -> None:
        """A degraded build: bitset crashed, the naive retry succeeded.

        The request was served, so in fail-fast mode this is a success
        (there is nothing to fail fast *to*).  In pin-naive mode it is
        the very signal the breaker exists for: each degraded build
        re-pays a doomed bitset attempt that pinning would skip.
        """
        if self.mode == PIN_NAIVE:
            self._record_failure(kind, fingerprint)
        else:
            self.record_success(kind, fingerprint)

    def record_failure(self, kind: str, fingerprint: str) -> None:
        """A :class:`KernelFailureError`: count it, maybe open."""
        self._record_failure(kind, fingerprint)

    def _record_failure(self, kind: str, fingerprint: str) -> None:
        with self._lock:
            state = self._states.setdefault(
                (kind, fingerprint), _DerivationState()
            )
            state.failures += 1
            if state.state == HALF_OPEN:
                # The probe failed: back to open, fresh cooldown.
                state.state = OPEN
                state.opened_at = self._clock()
                state.trips += 1
                state.probing = False
            elif state.state == CLOSED:
                if state.failures >= self.threshold:
                    state.state = OPEN
                    state.opened_at = self._clock()
                    state.trips += 1
            else:
                # Already open (a pinned build failed): restart the
                # cooldown so probes back off while it keeps crashing.
                state.opened_at = self._clock()

    def retry_hint_ms(self) -> Optional[float]:
        """Milliseconds until the soonest open circuit allows a probe.

        ``None`` when nothing is open-and-cooling: every tracked
        derivation is closed, already half-open, or past its cooldown
        (in which case the next attempt *is* the recovery probe and
        should be admitted, not shed).  The serving tier's admission
        controller uses this to decide between shedding a request and
        letting it through to probe.
        """
        with self._lock:
            now = self._clock()
            pending = [
                self.cooldown_ms - (now - state.opened_at) * 1e3
                for state in self._states.values()
                if state.state == OPEN
            ]
            cooling = [ms for ms in pending if ms > 0]
            return min(cooling) if cooling else None

    # -- management -----------------------------------------------------------

    def reset(
        self, kind: Optional[str] = None, fingerprint: Optional[str] = None
    ) -> int:
        """Forget tracked derivations; return how many were cleared.

        ``reset()`` clears everything; ``reset(kind)`` clears one kind;
        ``reset(kind, fingerprint)`` clears one derivation.
        """
        with self._lock:
            matches = [
                key
                for key in self._states
                if (kind is None or key[0] == kind)
                and (fingerprint is None or key[1] == fingerprint)
            ]
            for key in matches:
                del self._states[key]
            return len(matches)

    def snapshot(self) -> Dict[str, object]:
        """A deep-copied view of the breaker for ``Engine.stats()``."""
        with self._lock:
            now = self._clock()
            entries = {}
            for (kind, fingerprint), state in sorted(self._states.items()):
                effective = state.state
                if (
                    effective == OPEN
                    and (now - state.opened_at) * 1e3 >= self.cooldown_ms
                ):
                    effective = HALF_OPEN
                entries[f"{kind}:{fingerprint[:12]}"] = {
                    "kind": kind,
                    "fingerprint": fingerprint,
                    "state": effective,
                    "failures": state.failures,
                    "trips": state.trips,
                }
            return {
                "mode": self.mode,
                "threshold": self.threshold,
                "cooldown_ms": self.cooldown_ms,
                "open": sum(
                    1
                    for entry in entries.values()
                    if entry["state"] != CLOSED
                ),
                "entries": entries,
            }
