"""The resilience layer: fail closed, never silently corrupt.

Constant-complement translation is only trustworthy if the system
either answers correctly or *visibly* refuses (the paper already models
refusal as a first-class outcome, Definition 0.1.2(c)).  This package
makes that guarantee operational for the machinery around the theory:

* :mod:`repro.resilience.guard` -- wall-clock deadlines and step
  budgets (:class:`ExecutionGuard`), checked cooperatively inside the
  enumeration and kernel hot loops, raising a typed
  :class:`~repro.errors.DeadlineExceededError` instead of hanging;
* :mod:`repro.resilience.faults` -- seeded, deterministic fault
  injection (:class:`FaultPlan`) consulted at named fault points by the
  store, the kernels, and enumeration, powering the chaos suite and the
  ``REPRO_FAULT_SEED`` CI matrix entry;
* :mod:`repro.resilience.locks` -- advisory cross-process file leases
  (:class:`FileLease`) around disk-cache builds, with TTL-based
  stale-lease takeover (``REPRO_CACHE_LOCK_TTL_MS``) and a startup
  sweep of dead writers' temp files;
* :mod:`repro.resilience.breaker` -- a per-derivation circuit breaker
  (:class:`CircuitBreaker`) that converts deterministic kernel crashes
  into fast typed :class:`~repro.errors.CircuitOpenError`\\ s (or pins
  the derivation to the naive kernel) instead of re-running the
  degradation ladder per request.

The degradation ladder (bitset kernel -> naive kernel -> typed
:class:`~repro.errors.KernelFailureError`) and the checksummed cache
envelope live in :mod:`repro.engine`, which consumes this package.
"""

from repro.resilience.faults import (
    CORRUPT,
    DELAY,
    FAULT_POINTS,
    FAULT_SEED_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RAISE,
    current_plan,
    fault_check,
    fault_corrupt,
    inject,
    install_plan,
)
from repro.resilience.guard import (
    DEADLINE_ENV_VAR,
    ExecutionGuard,
    current_guard,
    deadline_from_env,
    guarded,
)
from repro.resilience.locks import (
    DEFAULT_LOCK_TTL_MS,
    FileLease,
    LOCK_DISABLE_ENV_VAR,
    LOCK_TTL_ENV_VAR,
    leases_enabled,
    lock_ttl_ms,
    sweep_stale_lockfiles,
    sweep_stale_temp_files,
)
from repro.resilience.breaker import (
    BREAKER_COOLDOWN_ENV_VAR,
    BREAKER_MODE_ENV_VAR,
    BREAKER_THRESHOLD_ENV_VAR,
    CircuitBreaker,
    FAIL_FAST,
    PIN_NAIVE,
)

__all__ = [
    "BREAKER_COOLDOWN_ENV_VAR",
    "BREAKER_MODE_ENV_VAR",
    "BREAKER_THRESHOLD_ENV_VAR",
    "CORRUPT",
    "CircuitBreaker",
    "DEADLINE_ENV_VAR",
    "DEFAULT_LOCK_TTL_MS",
    "DELAY",
    "ExecutionGuard",
    "FAIL_FAST",
    "FAULT_POINTS",
    "FAULT_SEED_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "FileLease",
    "InjectedFault",
    "LOCK_DISABLE_ENV_VAR",
    "LOCK_TTL_ENV_VAR",
    "PIN_NAIVE",
    "RAISE",
    "current_guard",
    "current_plan",
    "deadline_from_env",
    "fault_check",
    "fault_corrupt",
    "guarded",
    "inject",
    "install_plan",
    "leases_enabled",
    "lock_ttl_ms",
    "sweep_stale_lockfiles",
    "sweep_stale_temp_files",
]
