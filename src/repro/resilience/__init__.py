"""The resilience layer: fail closed, never silently corrupt.

Constant-complement translation is only trustworthy if the system
either answers correctly or *visibly* refuses (the paper already models
refusal as a first-class outcome, Definition 0.1.2(c)).  This package
makes that guarantee operational for the machinery around the theory:

* :mod:`repro.resilience.guard` -- wall-clock deadlines and step
  budgets (:class:`ExecutionGuard`), checked cooperatively inside the
  enumeration and kernel hot loops, raising a typed
  :class:`~repro.errors.DeadlineExceededError` instead of hanging;
* :mod:`repro.resilience.faults` -- seeded, deterministic fault
  injection (:class:`FaultPlan`) consulted at named fault points by the
  store, the kernels, and enumeration, powering the chaos suite and the
  ``REPRO_FAULT_SEED`` CI matrix entry.

The degradation ladder (bitset kernel -> naive kernel -> typed
:class:`~repro.errors.KernelFailureError`) and the checksummed cache
envelope live in :mod:`repro.engine`, which consumes this package.
"""

from repro.resilience.faults import (
    CORRUPT,
    DELAY,
    FAULT_POINTS,
    FAULT_SEED_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RAISE,
    current_plan,
    fault_check,
    fault_corrupt,
    inject,
    install_plan,
)
from repro.resilience.guard import (
    DEADLINE_ENV_VAR,
    ExecutionGuard,
    current_guard,
    deadline_from_env,
    guarded,
)

__all__ = [
    "CORRUPT",
    "DEADLINE_ENV_VAR",
    "DELAY",
    "ExecutionGuard",
    "FAULT_POINTS",
    "FAULT_SEED_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RAISE",
    "current_guard",
    "current_plan",
    "deadline_from_env",
    "fault_check",
    "fault_corrupt",
    "guarded",
    "inject",
    "install_plan",
]
