"""Deadlines and cooperative cancellation for long derivations.

State-space enumeration is a powerset construction and most analyses
are polynomial in ``|LDB|``, which is itself exponential in the schema:
a pathological input can legitimately run forever.  The resilience
contract is that it must not do so *silently*.  An
:class:`ExecutionGuard` carries a wall-clock deadline and/or a step
budget; the enumeration and kernel hot loops call :meth:`tick` once per
candidate/state, and the guard raises a typed
:class:`~repro.errors.DeadlineExceededError` the moment either limit is
crossed -- cooperative cancellation, no threads, no signals.

Guards are installed per :class:`~threading.Thread` via the
:func:`guarded` context manager; hot loops fetch the innermost one with
:func:`current_guard` (``None`` when no limit is active, so the
unguarded fast path costs one thread-local read per loop).  The
``REPRO_DEADLINE_MS`` environment variable supplies a default deadline
for engine-driven derivations; ``Engine(deadline_ms=...)`` and the
harness ``--deadline`` flag override it per engine / per run.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceededError

__all__ = [
    "DEADLINE_ENV_VAR",
    "ExecutionGuard",
    "current_guard",
    "deadline_from_env",
    "guarded",
]

#: Environment variable supplying a default wall-clock deadline (ms).
DEADLINE_ENV_VAR = "REPRO_DEADLINE_MS"

#: Wall-clock checks happen every this many ticks; step-budget checks
#: happen on every tick (they are one integer comparison).
_CLOCK_CHECK_EVERY = 1024


class ExecutionGuard:
    """A wall-clock deadline plus step budget, checked cooperatively.

    ``deadline_ms`` bounds elapsed wall-clock time from construction;
    ``max_steps`` bounds the number of cooperative :meth:`tick` steps.
    Either may be ``None`` (unlimited).  The clock is only consulted
    every ``_CLOCK_CHECK_EVERY`` ticks, so a tick on the unexpired path
    is a couple of integer operations.
    """

    __slots__ = (
        "deadline_ms",
        "max_steps",
        "steps",
        "_clock",
        "_started",
        "_deadline_at",
        "_next_clock_check",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_ms is not None and deadline_ms < 0:
            # reprolint: disable=RL001 -- constructor validation of guard budgets; asserted by tests/resilience/test_guard.py
            raise ValueError("deadline_ms must be non-negative")
        if max_steps is not None and max_steps < 0:
            # reprolint: disable=RL001 -- constructor validation of guard budgets; asserted by tests/resilience/test_guard.py
            raise ValueError("max_steps must be non-negative")
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.steps = 0
        self._clock = clock
        self._started = clock()
        self._deadline_at = (
            None if deadline_ms is None else self._started + deadline_ms / 1e3
        )
        self._next_clock_check = _CLOCK_CHECK_EVERY

    # -- bookkeeping ----------------------------------------------------------

    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since the guard was created."""
        return (self._clock() - self._started) * 1e3

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left before the deadline (``None`` if unset)."""
        if self._deadline_at is None:
            return None
        return (self._deadline_at - self._clock()) * 1e3

    def expired(self) -> bool:
        """True iff either limit has been crossed (without raising)."""
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        return (
            self._deadline_at is not None
            and self._clock() > self._deadline_at
        )

    # -- the hot-path check ---------------------------------------------------

    def tick(self, steps: int = 1) -> None:
        """Count *steps* units of work; raise if a limit is crossed."""
        self.steps += steps
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip()
        if self._deadline_at is not None and (
            self.steps >= self._next_clock_check
        ):
            self._next_clock_check = self.steps + _CLOCK_CHECK_EVERY
            if self._clock() > self._deadline_at:
                self._trip()

    def check(self) -> None:
        """Check both limits immediately (no step counted, no batching).

        Used at derivation boundaries, where an expired guard should
        trip before more work starts even if the last loop never
        reached a clock-check tick.
        """
        if self.expired():
            self._trip()

    def _trip(self) -> None:
        parts = []
        if self._deadline_at is not None:
            parts.append(f"deadline {self.deadline_ms:g}ms")
        if self.max_steps is not None:
            parts.append(f"step budget {self.max_steps}")
        raise DeadlineExceededError(
            f"derivation exceeded its {' / '.join(parts) or 'limits'} "
            f"(elapsed {self.elapsed_ms():.1f}ms, {self.steps} steps)",
            elapsed_ms=self.elapsed_ms(),
            deadline_ms=self.deadline_ms,
            steps=self.steps,
            max_steps=self.max_steps,
        )


# -- the current-guard protocol -----------------------------------------------

_local = threading.local()


def current_guard() -> Optional[ExecutionGuard]:
    """The innermost active guard on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    return stack[-1]


@contextmanager
def guarded(guard: Optional[ExecutionGuard]) -> Iterator[
    Optional[ExecutionGuard]
]:
    """Install *guard* as the current guard within the block.

    ``guarded(None)`` is a no-op scope, so callers can write
    ``with guarded(maybe_guard):`` without branching.
    """
    if guard is None:
        yield None
        return
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(guard)
    try:
        yield guard
    finally:
        stack.pop()


def deadline_from_env() -> Optional[float]:
    """The ``REPRO_DEADLINE_MS`` value as a float, or ``None``.

    A malformed value raises ``ValueError`` eagerly rather than being
    silently ignored -- a typo'd deadline must not mean "no deadline".
    """
    raw = os.environ.get(DEADLINE_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    return float(raw)
