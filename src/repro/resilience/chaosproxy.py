"""A seeded in-process TCP chaos proxy for the remote artifact tier.

Fault points (:mod:`repro.resilience.faults`) inject failures *inside*
the client's code; the chaos proxy injects them *under* it, on the
wire, where the client cannot tell them from a real flaky network.  A
:class:`ChaosProxy` listens on a local port, forwards every connection
to an upstream server (normally a live ``artifactd``), and -- per
connection, decided by one seeded ``random.Random`` -- picks a fate:

* ``pass`` -- forward both directions verbatim;
* ``latency`` -- hold the response back for a fixed delay first (the
  client's per-op deadline is what absorbs this);
* ``reset`` -- accept the request, then close both sockets without
  answering (the client sees a connection reset / empty reply);
* ``truncate`` -- forward a prefix of the first response chunk, then
  close (a torn response; the envelope checksum or the HTTP framing
  catches it);
* ``corrupt`` -- flip bits in the response bytes (caught by the
  envelope checksum as a silent miss).

``corrupt_requests=True`` additionally damages *request* bytes, which
exercises the server's structural PUT gate (400) and the client's
retry of it.  Because the RNG is seeded and urllib opens one
connection per request, a fixed seed yields a fixed fate sequence --
chaos runs are reproducible, not flaky.

The proxy never coordinates with either side: it is plain sockets and
threads, safe to run inside a test process, and counts what it did
(:attr:`ChaosProxy.counters`) so suites can assert faults actually
fired.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["ChaosProxy"]

_CHUNK = 65536

#: Request bytes spared from corruption: roughly the header block, so
#: a damaged request still parses and reaches the server's envelope
#: gate instead of dying as framing garbage.
_HEADER_GUARD = 256

_PASS = "pass"
_LATENCY = "latency"
_RESET = "reset"
_TRUNCATE = "truncate"
_CORRUPT = "corrupt"


class ChaosProxy:
    """Forward TCP to *upstream*, injecting seeded wire-level faults."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        latency_rate: float = 0.0,
        latency_s: float = 0.05,
        reset_rate: float = 0.0,
        truncate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        corrupt_requests: bool = False,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.host = host
        self.port = port
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.reset_rate = reset_rate
        self.truncate_rate = truncate_rate
        self.corrupt_rate = corrupt_rate
        self.corrupt_requests = corrupt_requests
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = False
        self.counters: Dict[str, int] = {
            "connections": 0,
            _PASS: 0,
            _LATENCY: 0,
            _RESET: 0,
            _TRUNCATE: 0,
            _CORRUPT: 0,
            "request_corruptions": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(64)
            self.port = listener.getsockname()[1]
        except OSError:
            # A bind/listen failure (port in use, perms) must not leak
            # the socket it just made.
            listener.close()
            raise
        self._listener = listener
        self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        self._stopping = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            # reprolint: disable=RL008 -- socket teardown is best-effort; the accept loop exits on the closed fd either way
            except OSError:
                pass
        thread, self._accept_thread = self._accept_thread, None
        if thread is not None:
            thread.join(timeout=5)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- fate ------------------------------------------------------------------

    def _pick_fate(self) -> Tuple[str, bool]:
        """One connection's fate, drawn from the seeded RNG."""
        with self._lock:
            self.counters["connections"] += 1
            roll = self._rng.random()
            corrupt_request = (
                self.corrupt_requests
                and self._rng.random() < self.corrupt_rate
            )
        cumulative = 0.0
        for fate, rate in (
            (_RESET, self.reset_rate),
            (_TRUNCATE, self.truncate_rate),
            (_CORRUPT, self.corrupt_rate),
            (_LATENCY, self.latency_rate),
        ):
            cumulative += rate
            if roll < cumulative:
                return fate, corrupt_request
        return _PASS, corrupt_request

    def _flip_bits(self, data: bytes) -> bytes:
        if not data:
            return data
        mutated = bytearray(data)
        with self._lock:
            for _ in range(1 + len(mutated) // 512):
                position = self._rng.randrange(len(mutated))
                mutated[position] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)

    def _sleep_latency(self) -> None:
        time.sleep(self.latency_s)

    # -- pumping ---------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stopping:
            try:
                client, _ = listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(client,),
                daemon=True,
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        fate, corrupt_request = self._pick_fate()
        upstream: Optional[socket.socket] = None
        request_pump: Optional[threading.Thread] = None
        try:
            try:
                upstream = socket.create_connection(
                    self.upstream, timeout=10
                )
            except OSError:
                return
            with self._lock:
                self.counters[fate] += 1
                if corrupt_request:
                    self.counters["request_corruptions"] += 1
            request_pump = threading.Thread(
                target=self._pump_request,
                args=(client, upstream, corrupt_request),
                daemon=True,
            )
            request_pump.start()
            self._pump_response(upstream, client, fate)
        finally:
            # Close both ends *before* joining: the request pump is
            # usually parked in recv() on a client that keeps its write
            # side open until it has the response, and the close is
            # what unparks it.  Running in a finally keeps a surprise
            # exception mid-proxy (fault injection reaches this code)
            # from leaking two sockets per connection.
            self._close(client)
            if upstream is not None:
                self._close(upstream)
            if request_pump is not None:
                request_pump.join(timeout=10)

    def _pump_request(
        self,
        client: socket.socket,
        upstream: socket.socket,
        corrupt: bool,
    ) -> None:
        """Client -> upstream, optionally damaging the request body.

        Corruption flips bits only *past* the first few hundred bytes:
        damaging header bytes would just make the request unparseable
        (the reset fate already covers that), while damaging tail
        bytes lands in an uploaded envelope's payload -- the
        interesting case, where the server must refuse to store it.
        """
        offset = 0
        try:
            while True:
                data = client.recv(_CHUNK)
                if not data:
                    return
                if corrupt and offset + len(data) > _HEADER_GUARD:
                    guard = max(0, _HEADER_GUARD - offset)
                    data = data[:guard] + self._flip_bits(data[guard:])
                offset += len(data)
                upstream.sendall(data)
        except OSError:
            return

    def _pump_response(
        self,
        upstream: socket.socket,
        client: socket.socket,
        fate: str,
    ) -> None:
        """Upstream -> client, applying the connection's fate."""
        if fate == _RESET:
            # Answer with nothing at all: the client reads EOF where a
            # status line should be (RemoteDisconnected).
            return
        first_chunk = True
        try:
            while True:
                data = upstream.recv(_CHUNK)
                if not data:
                    return
                if first_chunk and fate == _LATENCY:
                    self._sleep_latency()
                if fate == _TRUNCATE:
                    client.sendall(data[: max(1, len(data) // 2)])
                    return
                if fate == _CORRUPT:
                    data = self._flip_bits(data)
                client.sendall(data)
                first_chunk = False
        except OSError:
            return

    @staticmethod
    def _close(sock: socket.socket) -> None:
        # shutdown() before close(): while the request pump blocks in
        # recv() on this socket, a bare close() defers the FIN until
        # that syscall returns (the kernel holds the file open), and
        # the peer would hang out its full timeout waiting for bytes.
        # shutdown() tears the connection down immediately.
        try:
            sock.shutdown(socket.SHUT_RDWR)
        # reprolint: disable=RL008 -- already-dead sockets reject shutdown; close below is the part that matters
        except OSError:
            pass
        try:
            sock.close()
        # reprolint: disable=RL008 -- socket teardown is best-effort; a leaked fd dies with the daemon thread
        except OSError:
            pass
