"""Advisory cross-process leases for the on-disk artifact cache.

Two processes that need the same persisted artifact should not both
build it: the build is pure but expensive, and concurrent writers
degenerate to wasted work plus last-writer-wins on disk.  A
:class:`FileLease` serialises them with the oldest portable primitive
there is -- a lockfile created with ``O_CREAT | O_EXCL`` next to the
artifact -- so the first process builds while the others wait, then
read the winner's envelope instead of rebuilding.

The lease is strictly *advisory* and strictly *cross-process*:

* **in-process** coordination is the store's single-flight registry
  (:class:`~repro.engine.store.ArtifactStore`), which is why a holder
  pid equal to our own is treated as a stale leak, not a peer;
* every failure mode -- unwritable directory, injected fault, timeout
  waiting for a holder -- degrades to *running unleased*.  The cache
  (and therefore its lock) must never be load-bearing: the worst
  outcome is the duplicate build the lease exists to avoid, never a
  missing artifact.

Stale leases cannot wedge the system.  The lockfile payload is
``"<pid> <unix-timestamp>"``; a holder whose pid is dead, or whose
lease has outlived the TTL (``REPRO_CACHE_LOCK_TTL_MS``, default 30 s),
is taken over.  ``REPRO_CACHE_LOCKS=off`` (or a non-positive TTL)
disables leasing entirely.

:func:`sweep_stale_temp_files` removes the per-pid ``*.tmp`` files a
crashed writer left behind, and :func:`sweep_stale_lockfiles` reclaims
the lease lockfiles of dead holders; storage backends
(:mod:`repro.engine.backends`) run them one-shot per path at
``open()``, surfacing the reclaimed count as their ``sweep_reclaimed``
stat.

Both lease transitions are registered fault points (``lock.acquire``,
``lock.release``) so the chaos suite can prove the advisory contract:
an injected crash in either is absorbed, never propagated.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Optional

from repro.resilience.faults import fault_check

__all__ = [
    "DEFAULT_LOCK_TTL_MS",
    "FileLease",
    "LOCK_DISABLE_ENV_VAR",
    "LOCK_TTL_ENV_VAR",
    "leases_enabled",
    "lock_ttl_ms",
    "sweep_stale_lockfiles",
    "sweep_stale_temp_files",
]

#: Environment variable overriding the stale-lease TTL (milliseconds).
LOCK_TTL_ENV_VAR = "REPRO_CACHE_LOCK_TTL_MS"

#: Environment variable disabling leases ("0", "off", "false", "no").
LOCK_DISABLE_ENV_VAR = "REPRO_CACHE_LOCKS"

#: Default TTL: a holder silent for this long is presumed dead.
DEFAULT_LOCK_TTL_MS = 30_000.0

#: Per-wait sleep ceiling (seconds); backoff doubles up to this cap so
#: waiters notice a released lease promptly without busy-spinning.
_MAX_SLEEP = 0.1

_DISABLING_VALUES = ("0", "off", "false", "no")


def lock_ttl_ms() -> float:
    """The stale-lease TTL in milliseconds (env override or default).

    A malformed value raises ``ValueError`` eagerly -- a typo'd TTL must
    not silently mean "default TTL".
    """
    raw = os.environ.get(LOCK_TTL_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_LOCK_TTL_MS
    return float(raw)


def leases_enabled() -> bool:
    """Whether cross-process leases are active for this process."""
    raw = os.environ.get(LOCK_DISABLE_ENV_VAR, "").strip().lower()
    if raw in _DISABLING_VALUES:
        return False
    return lock_ttl_ms() > 0


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0); unknown means alive."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the pid exists but is not ours to signal.
        return True
    return True


class FileLease:
    """An advisory, TTL-bounded lease on one cache artifact.

    ``acquire`` returns ``True`` when the lockfile was created (we are
    the builder) and ``False`` when the lease could not be taken --
    disabled, faulted, unwritable, or timed out behind a live holder.
    Either way the caller proceeds; the flags (:attr:`waited`,
    :attr:`took_over`, :attr:`timed_out`) tell the store what happened
    so it can re-check the disk cache and count the contention.
    """

    def __init__(
        self,
        target: Path,
        ttl_ms: Optional[float] = None,
        backoff: float = 0.01,
        max_wait_ms: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.target = Path(target)
        self.path = self.target.parent / f"{self.target.name}.lock"
        self.ttl_ms = lock_ttl_ms() if ttl_ms is None else ttl_ms
        self.backoff = backoff
        #: How long to wait behind a live holder before giving up and
        #: building unleased; defaults to one TTL (after which the
        #: holder is stale and taken over anyway).
        self.max_wait_ms = self.ttl_ms if max_wait_ms is None else max_wait_ms
        self._sleep = sleep
        self.acquired = False
        #: True if at least one backoff wait happened (contention).
        self.waited = False
        #: True if a stale holder's lockfile was removed.
        self.took_over = False
        #: True if the wait budget ran out behind a live holder.
        self.timed_out = False

    # -- acquisition ----------------------------------------------------------

    def acquire(self) -> bool:
        """Try to take the lease; never raises, never waits past TTL."""
        self.acquired = self.waited = False
        self.took_over = self.timed_out = False
        if self.ttl_ms <= 0 or not leases_enabled():
            return False
        try:
            fault_check("lock.acquire")
        except Exception:
            # Advisory: an injected (or real) acquisition failure means
            # we build unleased, not that the build fails.
            return False
        deadline = time.monotonic() + self.max_wait_ms / 1e3
        attempt = 0
        while True:
            try:
                fd = os.open(
                    str(self.path),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                if self._holder_stale():
                    self._remove_lockfile()
                    self.took_over = True
                    continue
                if time.monotonic() >= deadline:
                    self.timed_out = True
                    return False
                self.waited = True
                # Cap the exponent: past a few doublings the sleep is
                # pinned at _MAX_SLEEP anyway, and an unbounded 2**n
                # overflows float conversion on long waits.
                doublings = min(attempt, 16)
                self._sleep(min(self.backoff * (2**doublings), _MAX_SLEEP))
                attempt += 1
                continue
            except OSError:
                # Unwritable/vanished cache directory: run unleased.
                return False
            try:
                payload = f"{os.getpid()} {time.time()}"
                os.write(fd, payload.encode("ascii"))
            # reprolint: disable=RL008 -- lease diagnostics payload is advisory; an empty lockfile still locks
            except OSError:
                pass
            finally:
                os.close(fd)
            self.acquired = True
            return True

    def _holder_stale(self) -> bool:
        """Whether the current lockfile may be removed.

        A holder is stale when its pid is dead, when it is *this*
        process (in-process callers are serialised by the store's
        single-flight registry, so a same-pid lockfile is a leak from a
        faulted release), or when the lease has outlived the TTL.  An
        unreadable payload falls back to the file's mtime.
        """
        try:
            parts = self.path.read_text("ascii").split()
            pid = int(parts[0])
            stamped = float(parts[1])
        except (OSError, ValueError, IndexError):
            pid = 0
            try:
                stamped = self.path.stat().st_mtime
            except OSError:
                return False  # vanished: the holder released; retry
        if pid == os.getpid():
            return True
        if pid and not _pid_alive(pid):
            return True
        return (time.time() - stamped) * 1e3 > self.ttl_ms

    # -- release --------------------------------------------------------------

    def release(self) -> None:
        """Give the lease back (no-op unless held); never raises."""
        if not self.acquired:
            return
        self.acquired = False
        try:
            fault_check("lock.release")
        except Exception:
            # A faulted release leaks the lockfile on purpose: the
            # stale-lease takeover path is what recovers it, and the
            # chaos suite exercises exactly that.
            return
        self._remove_lockfile()

    def _remove_lockfile(self) -> None:
        try:
            self.path.unlink(missing_ok=True)
        # reprolint: disable=RL008 -- lockfile removal is best-effort; a leftover lease is taken over after the TTL
        except OSError:
            pass

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "FileLease":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def sweep_stale_temp_files(cache_dir: str) -> int:
    """Delete ``*.tmp`` files left by dead writers; return the count.

    The store's atomic-save protocol writes through per-pid temp names
    (``<artifact>.<pid>.tmp``); a writer that dies mid-save leaks one.
    Temp files belonging to live pids (including our own) are in use
    and left alone.  Best-effort throughout: an unreadable directory
    sweeps nothing.
    """
    swept = 0
    try:
        candidates = list(Path(cache_dir).glob("*.tmp"))
    except OSError:
        return 0
    for path in candidates:
        parts = path.name.rsplit(".", 2)
        if len(parts) != 3:
            continue
        try:
            pid = int(parts[1])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            path.unlink(missing_ok=True)
            swept += 1
        except OSError:
            continue
    return swept


def _unlink_if_unchanged(path: Path, expected: str) -> bool:
    """Unlink *path* only while its payload still reads *expected*.

    Between a sweeper's staleness check and its unlink, a sibling
    process may reclaim the same stale lease and a *new, live* holder
    may recreate the same lockfile path.  Unlinking blindly at that
    point deletes the live holder's lease -- the double-delete race.
    Re-reading immediately before the unlink shrinks the window to a
    single read/unlink pair and turns the common interleaving into a
    skip: a changed (or vanished) payload means someone else owns the
    path now, so it is left alone and not counted as swept.
    """
    try:
        if path.read_text("ascii") != expected:
            return False
        path.unlink(missing_ok=True)
        return True
    except OSError:
        return False


def sweep_stale_lockfiles(lease_dir: str) -> int:
    """Delete ``*.lock`` files whose holder pid is dead; return the count.

    Lease lockfiles carry a ``"<pid> <unix-timestamp>"`` payload; a
    holder that crashed without releasing leaves one behind.  The TTL
    takeover recovers such leases lazily (the next contender waits one
    TTL); this sweep recovers them eagerly at backend open, so the
    first build after a crash pays nothing.  Lockfiles of live pids --
    including our own -- are real leases and left alone, as are files
    with unreadable payloads (the TTL path owns those).  The unlink is
    guarded by a payload re-read (:func:`_unlink_if_unchanged`): when
    several processes open the same backend concurrently and race the
    same dead holder's file, the loser of the race must not delete the
    lease a *new* holder wrote there in between.  Best-effort
    throughout: an unreadable directory sweeps nothing.
    """
    swept = 0
    try:
        candidates = list(Path(lease_dir).glob("*.lock"))
    except OSError:
        return 0
    for path in candidates:
        try:
            payload = path.read_text("ascii")
            pid = int(payload.split()[0])
        except (OSError, ValueError, IndexError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        if _unlink_if_unchanged(path, payload):
            swept += 1
    return swept
