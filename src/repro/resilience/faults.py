"""Deterministic fault injection for the resilience layer.

A :class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s.  Call
sites in the engine, store, and kernels consult the current plan at
*named fault points* (:data:`FAULT_POINTS`); a matching rule raises an
exception, corrupts bytes, or sleeps.  Everything is driven by one
seeded RNG, so the same plan consulted by the same program fires the
same faults -- chaos tests are reproducible, not flaky.

Two ways to activate a plan:

* programmatically, with ``install_plan(plan)`` or the scoped
  :func:`inject` context manager (what the chaos suite uses);
* via the ``REPRO_FAULT_SEED`` environment variable, read once at
  import, which installs :meth:`FaultPlan.light` -- low-rate transient
  I/O failures, cache-byte corruption, and micro-delays, all of which
  the system must absorb without a single test failing.  CI runs the
  full suite under this plan.

Injected exceptions default to :class:`InjectedFault`, which is
deliberately **not** a :class:`~repro.errors.ReproError`: it simulates
an unexpected crash, and the chaos suite asserts the system converts it
into a structured outcome or a typed error before it reaches a caller.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from contextlib import contextmanager

__all__ = [
    "CORRUPT",
    "DELAY",
    "FAULT_POINTS",
    "FAULT_SEED_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RAISE",
    "current_plan",
    "fault_check",
    "fault_corrupt",
    "inject",
    "install_plan",
]

#: Environment variable enabling the light background plan.
FAULT_SEED_ENV_VAR = "REPRO_FAULT_SEED"

#: Every named fault point a call site consults.  The chaos suite
#: parametrises over this registry, so adding a call site without
#: registering it here leaves it untested -- keep them in sync.
FAULT_POINTS: Tuple[str, ...] = (
    "store.load",
    "store.save",
    "backend.open",
    "lock.acquire",
    "lock.release",
    "kernel.encode",
    "kernel.poset",
    "kernel.analysis",
    "kernel.bulk",
    "enumeration.step",
    "server.admit",
    "server.drain",
    "remote.get",
    "remote.put",
    "remote.lease",
)

RAISE = "raise"
CORRUPT = "corrupt"
DELAY = "delay"
_KINDS = (RAISE, CORRUPT, DELAY)


class InjectedFault(RuntimeError):
    """The default injected exception: an *unexpected* crash.

    Not a ``ReproError`` on purpose -- the whole point of injecting it
    is to prove the system never lets it escape untyped.
    """


@dataclass
class FaultRule:
    """One fault: where it fires, what it does, and how often."""

    #: Fault point name (exact match against :data:`FAULT_POINTS`).
    point: str
    kind: str = RAISE
    #: Probability of firing per consultation (decided by the plan RNG).
    rate: float = 1.0
    #: Fire at most this many times (``None`` = unlimited).
    times: Optional[int] = None
    #: Only fire under this kernel mode (``None`` = both).
    kernel: Optional[str] = None
    #: Factory for the exception a ``raise`` rule throws.
    exception: Callable[[], BaseException] = InjectedFault
    #: Seconds a ``delay`` rule sleeps.
    delay: float = 0.0
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            # reprolint: disable=RL001 -- validation of fault-rule kinds; asserted by tests/resilience/test_faults.py
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Rule matching and probabilistic firing draw from one
    ``random.Random(seed)``, so a fixed plan consulted by a fixed
    program produces a fixed fault sequence.  The :attr:`log` records
    every firing as ``(point, kind)`` for test assertions.
    """

    def __init__(
        self, seed: int = 0, rules: Tuple[FaultRule, ...] = ()
    ) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self.log: List[Tuple[str, str]] = []
        self._rng = random.Random(seed)

    @classmethod
    def light(cls, seed: int = 1) -> "FaultPlan":
        """The background plan CI runs the whole suite under.

        Every rule here is *recoverable by design*: transient I/O
        errors are absorbed by the store's bounded retry, corrupted
        cache bytes by the integrity envelope (silent miss + rebuild),
        failed lease acquisitions by the advisory contract (the build
        simply runs unleased), and delays are just latency.  Rates are
        low enough that the bounded retries fail all attempts with
        negligible probability.
        """
        io_error = lambda: OSError("injected transient I/O failure")  # noqa: E731
        return cls(
            seed=seed,
            rules=(
                FaultRule("store.load", RAISE, rate=0.02, exception=io_error),
                FaultRule("store.save", RAISE, rate=0.02, exception=io_error),
                FaultRule("store.load", CORRUPT, rate=0.02),
                FaultRule("lock.acquire", RAISE, rate=0.02),
                FaultRule(
                    "enumeration.step", DELAY, rate=0.001, delay=0.0002
                ),
            ),
        )

    # -- matching -------------------------------------------------------------

    def _matches(self, rule: FaultRule, point: str) -> bool:
        if rule.point != point:
            return False
        if rule.times is not None and rule.fired >= rule.times:
            return False
        if rule.kernel is not None:
            from repro.kernel.config import kernel_mode

            if kernel_mode() != rule.kernel:
                return False
        return rule.rate >= 1.0 or self._rng.random() < rule.rate

    # -- consultation ---------------------------------------------------------

    def check(self, point: str) -> None:
        """Consult the raise/delay rules for *point* (may raise/sleep)."""
        for rule in self.rules:
            if rule.kind == CORRUPT:
                continue
            if self._matches(rule, point):
                rule.fired += 1
                self.log.append((point, rule.kind))
                if rule.kind == DELAY:
                    # reprolint: disable=RL009 -- the delay fault IS the injected blocking: chaos tests must observe a stalled loop, and production plans never configure DELAY at loop-reachable points
                    time.sleep(rule.delay)
                else:
                    # reprolint: disable=RL001 -- deliberately raises the configured exception type: fault injection must simulate untyped failures too
                    raise rule.exception()

    def corrupt(self, point: str, data: bytes) -> bytes:
        """Pass *data* through the corrupt rules for *point*."""
        for rule in self.rules:
            if rule.kind != CORRUPT:
                continue
            if self._matches(rule, point):
                rule.fired += 1
                self.log.append((point, rule.kind))
                data = self._corrupt_bytes(data)
        return data

    def _corrupt_bytes(self, data: bytes) -> bytes:
        """Deterministically damage *data* (bit flips or truncation)."""
        if not data:
            return b"\xff"
        mutated = bytearray(data)
        if self._rng.random() < 0.25:
            return bytes(mutated[: self._rng.randrange(len(mutated))])
        for _ in range(1 + len(mutated) // 256):
            position = self._rng.randrange(len(mutated))
            mutated[position] ^= 1 << self._rng.randrange(8)
        return bytes(mutated)


# -- the current-plan protocol ------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install *plan* process-wide (``None`` disables injection)."""
    global _PLAN
    _PLAN = plan


def current_plan() -> Optional[FaultPlan]:
    """The active plan, or ``None`` (the common, zero-fault case)."""
    return _PLAN


@contextmanager
def inject(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope *plan* as the active plan within the block."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fault_check(point: str) -> None:
    """Consult the active plan at *point* (no-op without a plan)."""
    plan = _PLAN
    if plan is not None:
        plan.check(point)


def fault_corrupt(point: str, data: bytes) -> bytes:
    """Corruption hook for byte payloads (identity without a plan)."""
    plan = _PLAN
    if plan is not None:
        return plan.corrupt(point, data)
    return data


def _plan_from_env() -> Optional[FaultPlan]:
    raw = os.environ.get(FAULT_SEED_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    return FaultPlan.light(int(raw))


# Read once at import: the environment plan is a process-lifetime
# setting (CI's chaos matrix entry), not something to toggle at runtime
# -- use install_plan()/inject() for that.
_PLAN = _plan_from_env()
