"""Strong views: the ⊥-poset analysis of a view mapping (paper §2.3).

A view ``Gamma = (V, gamma)`` is *strong* when, for each type
assignment, ``gamma' : LDB(D, mu) -> LDB(V, mu)`` is a strong morphism
of ⊥-posets: monotone, bottom-preserving, surjective (onto its image,
which *is* ``LDB(V, mu)`` by the standing assumption), admitting least
preimages with a monotone least right inverse ``gamma#``, and downward
stationary.

:func:`analyze_view` performs the analysis over one state space and
returns a :class:`StrongViewAnalysis` carrying the verdict, the failed
conditions, and -- when the view is strong -- the tables for
``gamma#`` and the endomorphism ``gamma^Theta = gamma# . gamma``
(Lemma 2.3.1), which drive the constructive update translator of
Theorem 3.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import NotStrongError, ReproError
from repro.algebra.morphisms import PosetMorphism
from repro.algebra.poset import FinitePoset
from repro.kernel.config import bulk_enabled, fast_kernel_enabled
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.views.view import View


@dataclass
class StrongViewAnalysis:
    """The result of analysing one view over one state space."""

    view: View
    space: StateSpace
    #: ``gamma'`` as a poset morphism LDB(D) -> image(gamma').
    morphism: PosetMorphism
    is_monotone: bool
    preserves_bottom: bool
    admits_least_preimages: bool
    sharp_is_monotone: bool
    is_downward_stationary: bool
    #: ``gamma# : view state -> least preimage`` (None unless strong-ish).
    sharp: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    #: ``gamma^Theta : base state -> base state`` (None unless strong-ish).
    theta: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    #: Memoized :meth:`theta_key` (the bitset kernel seeds it directly).
    _theta_key_cache: Optional[Tuple[int, ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_strong(self) -> bool:
        """The full Definition §2.3 conjunction."""
        return (
            self.is_monotone
            and self.preserves_bottom
            and self.admits_least_preimages
            and self.sharp_is_monotone
            and self.is_downward_stationary
        )

    def failures(self) -> Tuple[str, ...]:
        """Names of the failed conditions."""
        failed = []
        if not self.is_monotone:
            failed.append("monotone")
        if not self.preserves_bottom:
            failed.append("preserves-bottom")
        if not self.admits_least_preimages:
            failed.append("least-preimages")
        if not self.sharp_is_monotone:
            failed.append("sharp-monotone")
        if not self.is_downward_stationary:
            failed.append("downward-stationary")
        return tuple(failed)

    def require_strong(self) -> "StrongViewAnalysis":
        """Return self, or raise :class:`~repro.errors.NotStrongError`."""
        if not self.is_strong:
            raise NotStrongError(
                f"view {self.view.name!r} is not strong "
                f"(failed: {', '.join(self.failures())})",
                analysis=self,
            )
        return self

    # -- derived structure (strong views only) --------------------------------

    def theta_morphism(self) -> PosetMorphism:
        """``gamma^Theta`` as a poset endomorphism of the state space."""
        self.require_strong()
        if self.theta is None:
            raise NotStrongError(
                f"view {self.view.name!r} passed the strongness check"
                " but carries no endomorphism table: least preimages"
                " were not admitted (Lemma 2.3.1 requires gamma^Theta"
                " = lp . gamma to be total)",
                analysis=self,
            )
        return PosetMorphism(self.space.poset, self.space.poset, self.theta)

    def fixpoints(self) -> Tuple[DatabaseInstance, ...]:
        """``lp(gamma')``: the least preimages = fixpoints of theta."""
        self.require_strong()
        states = self.space.states
        return tuple(
            states[i]
            for i, k in enumerate(self._theta_indices())
            if k == i
        )

    def _theta_indices(self) -> Tuple[int, ...]:
        """The endomorphism as state indices (memoized; no strongness
        requirement, so the pointwise order is computable on any
        analysis that carries a theta table)."""
        if self._theta_key_cache is None:
            if self.theta is None:
                raise ReproError(
                    f"view {self.view.name!r} has no endomorphism table "
                    "(least preimages not admitted)"
                )
            index = self.space.index
            self._theta_key_cache = tuple(
                index(self.theta[s]) for s in self.space.states
            )
        return self._theta_key_cache

    def theta_key(self) -> Tuple[int, ...]:
        """A canonical hashable key for the endomorphism.

        Two strong views are isomorphic iff they induce the same
        endomorphism of the base state space; this key (theta as a tuple
        of state indices) therefore identifies views up to isomorphism.
        """
        self.require_strong()
        return self._theta_indices()


def image_poset(view: View, space: StateSpace) -> FinitePoset:
    """The view states under relation-wise inclusion."""
    if fast_kernel_enabled():
        from repro.kernel.strongfast import image_poset_bitset

        return image_poset_bitset(view.image_states(space))
    return FinitePoset.from_leq(
        view.image_states(space), lambda a, b: a.issubset(b)
    )


def analyze_view(view: View, space: StateSpace) -> StrongViewAnalysis:
    """Analyse a view's mapping as a ⊥-poset morphism (Definition §2.3).

    The target poset is the image of ``gamma'`` (the paper's standing
    surjectivity assumption makes this ``LDB(V, mu)``), so surjectivity
    holds by construction and is not a separate condition here.

    Under the bulk kernel (the default) the analysis runs on word-packed
    mask families; the bitset kernel runs it on down-set masks and index
    vectors (:mod:`repro.kernel.strongfast`); set ``REPRO_KERNEL=naive``
    for the original tuple-by-tuple predicates.  All three produce
    identical analyses (enforced by ``tests/kernel/``).
    """
    if bulk_enabled():
        from repro.kernel.strongfast import analyze_view_bulk

        return analyze_view_bulk(view, space)
    if fast_kernel_enabled():
        from repro.kernel.strongfast import analyze_view_bitset

        return analyze_view_bitset(view, space)
    target = image_poset(view, space)
    table = {
        state: image
        for state, image in zip(space.states, view.image_table(space))
    }
    morphism = PosetMorphism(space.poset, target, table)
    is_monotone = morphism.is_monotone()
    preserves_bottom = morphism.preserves_bottom()
    admits_lp = morphism.admits_least_preimages()
    sharp_table: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    theta_table: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    sharp_monotone = False
    downward_stationary = False
    if admits_lp:
        sharp = morphism.least_right_inverse()
        sharp_monotone = sharp.is_morphism()
        downward_stationary = morphism.is_downward_stationary()
        sharp_table = sharp.table
        theta_table = {
            state: sharp_table[table[state]] for state in space.states
        }
    return StrongViewAnalysis(
        view=view,
        space=space,
        morphism=morphism,
        is_monotone=is_monotone,
        preserves_bottom=preserves_bottom,
        admits_least_preimages=admits_lp,
        sharp_is_monotone=sharp_monotone,
        is_downward_stationary=downward_stationary,
        sharp=sharp_table,
        theta=theta_table,
    )


def is_strong_view(view: View, space: StateSpace) -> bool:
    """Convenience wrapper over :func:`analyze_view`."""
    return analyze_view(view, space).is_strong
