"""Generalized strong views: isomorphism transport (paper §2.3, end).

"A view which is isomorphic to a strong view ... is called a
generalized strong view ... Most of our subsequent results carry over
to this more general case."

A view ``Gamma`` that is isomorphic (mutually definable, equal kernels)
to a strong view ``Sigma`` inherits ``Sigma``'s update support: an
update request on ``Gamma`` is carried across the isomorphism, solved
on ``Sigma`` with its strong complement constant, and the solution is
the same base state.  :func:`find_strong_partner` locates such a
``Sigma`` among candidates; :class:`GeneralizedComponentTranslator`
performs the transported translation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import NotStrongError, UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.components import Component
from repro.core.constant_complement import ComponentTranslator
from repro.core.strong import analyze_view
from repro.core.update import UpdateStrategy
from repro.views.morphisms import are_isomorphic, view_morphism_table
from repro.views.view import View


def is_generalized_strong(
    view: View, candidates: Iterable[View], space: StateSpace
) -> bool:
    """True iff *view* is isomorphic to some strong view among the
    candidates (or is itself strong)."""
    return find_strong_partner(view, candidates, space) is not None


def find_strong_partner(
    view: View, candidates: Iterable[View], space: StateSpace
) -> Optional[View]:
    """A strong view isomorphic to *view*, if any.

    *view* itself is checked first (a strong view is trivially its own
    partner).
    """
    if analyze_view(view, space).is_strong:
        return view
    for candidate in candidates:
        if not are_isomorphic(view, candidate, space):
            continue
        if analyze_view(candidate, space).is_strong:
            return candidate
    return None


class GeneralizedComponentTranslator(UpdateStrategy):
    """Update a generalized strong view via its strong partner.

    The isomorphism gives mutually inverse view morphisms
    ``f : Gamma -> Sigma`` and ``g : Sigma -> Gamma``; a request
    ``(s1, t2)`` on ``Gamma`` becomes ``(s1, f(t2))`` on ``Sigma``,
    solved by the component translator.  Because the two views have the
    same kernel, the solution reflects the original request exactly.
    """

    def __init__(
        self,
        view: View,
        partner_component: Component,
        space: StateSpace,
    ):
        super().__init__(view, space)
        partner = partner_component.view
        if not are_isomorphic(view, partner, space):
            raise NotStrongError(
                f"{view.name!r} is not isomorphic to {partner.name!r}; "
                "no isomorphism transport possible"
            )
        self.partner = partner_component
        #: ``f``: Gamma states -> Sigma states.
        self.forward: Dict[DatabaseInstance, DatabaseInstance] = (
            view_morphism_table(view, partner, space)
        )
        self._inner = ComponentTranslator.for_component(
            partner_component, space
        )

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """Translate via the strong partner."""
        if target not in self.forward:
            raise UpdateRejected(
                f"{target!r} is not a legal state of view {self.view.name!r}",
                reason="illegal-view-state",
            )
        solution = self._inner.apply(state, self.forward[target])
        achieved = self.view.apply(solution, self.space.assignment)
        if achieved != target:  # pragma: no cover - isomorphism guarantees
            raise UpdateRejected(
                "transported solution does not reflect the request",
                reason="image-mismatch",
            )
        return solution
