"""Constant-complement translators (paper §1.3 and Theorem 3.1.1).

Two implementations of the Bancilhon-Spyratos translation, with the
same semantics where both apply:

* :class:`ConstantComplementTranslator` -- the *enumerative reference
  translator*.  Given any join complement, it tabulates
  ``(gamma1'(s), gamma2'(s)) -> s`` over the state space (injective by
  Definition 1.3.1) and answers update requests by lookup.  Works for
  arbitrary complements, including the badly behaved ones the paper
  warns about; cost is O(|LDB|) space and a table build.

* :class:`ComponentTranslator` -- the *constructive translator* of
  Theorem 3.1.1 for strongly complemented strong views: the solution
  to ``(s1, (t1, t2))`` with ``Gamma2`` constant is
  ``s2 = gamma1#(t2) v gamma2^Theta(s1)`` -- join (in practice:
  relation-wise union) of the least preimage of the new view state
  with the complement's part of the current state.  Per-update cost is
  O(|instance|); no enumeration of solutions is needed.

Benchmark S1 measures the two against each other; the test suite
asserts they agree on every state of every example universe.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import (
    AmbiguousSolutionError,
    NotAComplementError,
    NotStrongError,
    UpdateRejected,
)
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.components import Component, are_strong_complements
from repro.core.strong import StrongViewAnalysis
from repro.core.update import UpdateStrategy
from repro.views.view import View


class ConstantComplementTranslator(UpdateStrategy):
    """Enumerative translation with an arbitrary join complement.

    Implements Theorem 1.3.2 directly: the solution with constant
    complement, when it exists, is unique; we find it by a precomputed
    index over the state space.
    """

    def __init__(
        self,
        view: View,
        complement: View,
        space: StateSpace,
        check_complement: bool = True,
    ):
        super().__init__(view, space)
        self.complement = complement
        view_table = view.image_table(space)
        comp_table = complement.image_table(space)
        index: Dict[
            Tuple[DatabaseInstance, DatabaseInstance], DatabaseInstance
        ] = {}
        for state, view_state, comp_state in zip(
            space.states, view_table, comp_table
        ):
            key = (view_state, comp_state)
            if key in index:
                if check_complement:
                    raise NotAComplementError(
                        f"{complement.name!r} is not a join complement of "
                        f"{view.name!r}: states {index[key]!r} and {state!r} "
                        "agree on both views"
                    )
                raise AmbiguousSolutionError(
                    f"two states share ({view.name}, {complement.name}) "
                    "images"
                )
            index[key] = state
        self._index = index
        self._comp_table = {
            state: comp_state
            for state, comp_state in zip(space.states, comp_table)
        }

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """The unique solution keeping the complement constant."""
        comp_state = self._comp_table[state]
        try:
            return self._index[(target, comp_state)]
        except KeyError:
            raise UpdateRejected(
                f"no state realises view={target!r} with "
                f"{self.complement.name!r} constant",
                reason="not-constant-achievable",
            ) from None


class ComponentTranslator(UpdateStrategy):
    """Constructive translation for a component (Theorem 3.1.1).

    Requires the view and its complement to be strong complements of
    each other; by the theorem every update request then has a unique
    solution with the complement constant, computed in closed form as
    the join of ``gamma1#(t2)`` and ``gamma2^Theta(s1)``.
    """

    def __init__(
        self,
        view_analysis: StrongViewAnalysis,
        complement_analysis: StrongViewAnalysis,
        space: StateSpace,
        check_complement: bool = True,
    ):
        super().__init__(view_analysis.view, space)
        view_analysis.require_strong()
        complement_analysis.require_strong()
        if check_complement and not are_strong_complements(
            view_analysis, complement_analysis
        ):
            raise NotAComplementError(
                f"{complement_analysis.view.name!r} is not the strong "
                f"complement of {view_analysis.view.name!r}"
            )
        self.view_analysis = view_analysis
        self.complement_analysis = complement_analysis

    @classmethod
    def for_component(
        cls, component: Component, space: StateSpace
    ) -> "ComponentTranslator":
        """Build from a resolved :class:`~repro.core.components.Component`."""
        if component.complement is None:
            raise NotAComplementError(
                f"component {component.name!r} has no resolved complement"
            )
        return cls(
            component.analysis,
            component.complement.analysis,
            space,
            check_complement=False,
        )

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """``s2 = gamma1#(t2) v gamma2^Theta(s1)``.

        By Theorem 3.1.1 the join always exists and is the unique
        solution with constant complement; the method re-verifies the
        image conditions and raises :class:`UpdateRejected` (rather than
        returning a wrong state) if the target is not a legal view state
        at all.
        """
        sharp = self.view_analysis.sharp
        theta_c = self.complement_analysis.theta
        if sharp is None or theta_c is None:
            missing = "gamma#" if sharp is None else "gamma'^Theta"
            raise NotStrongError(
                f"constant-complement translation for view"
                f" {self.view.name!r} requires both strong analyses"
                f" to carry their tables, but {missing} is missing:"
                " Theorem 3.1.1 presumes a strongly complemented"
                " strong view pair (least preimages on the view,"
                " endomorphism on the complement)"
            )
        if target not in sharp:
            raise UpdateRejected(
                f"{target!r} is not a legal state of view "
                f"{self.view.name!r}",
                reason="illegal-view-state",
            )
        part_new = sharp[target]
        part_kept = theta_c[state]
        solution = self.space.join(part_new, part_kept)
        if solution is None:
            raise UpdateRejected(
                "no least upper bound of the component parts exists; "
                "the complement pair is not strong",
                reason="no-join",
            )
        return solution


def translators_agree(
    enumerative: ConstantComplementTranslator,
    constructive: ComponentTranslator,
) -> bool:
    """Exhaustively verify the two translators coincide (test helper)."""
    space = enumerative.space
    targets = enumerative.view.image_states(space)
    for state in space.states:
        for target in targets:
            try:
                expected = enumerative.apply(state, target)
            except UpdateRejected:
                expected = None
            try:
                actual = constructive.apply(state, target)
            except UpdateRejected:
                actual = None
            if expected != actual:
                return False
    return True
