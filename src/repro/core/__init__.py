"""The paper's contribution: canonical view update support.

This package implements Sections 1 and 3 of the paper on top of the
substrates in :mod:`repro.relational`, :mod:`repro.algebra`, and
:mod:`repro.views`:

* :mod:`~repro.core.update` -- update specifications and update
  strategies (Definitions 0.1.1, 0.1.2);
* :mod:`~repro.core.admissibility` -- the four requirements of §1.2
  (nonextraneous, functorial, symmetric, state independent) and the
  composite notion of an *admissible* strategy (Definition 1.2.14),
  each checkable exhaustively over a finite state space with
  counterexample reporting;
* :mod:`~repro.core.strong` -- strong views: the analysis of a view
  mapping as a ⊥-poset morphism, producing ``gamma#`` (least right
  inverse) and ``gamma^Theta`` (the endomorphism) when they exist
  (§2.3);
* :mod:`~repro.core.components` -- the **component algebra**: the
  Boolean algebra of strongly complemented strong views
  (Theorem 2.3.3 / Lemma 2.3.2), with discovery from candidate views,
  complements, meets and joins;
* :mod:`~repro.core.constant_complement` -- constant-complement
  translators: the enumerative reference translator (any join
  complement; Theorem 1.3.2) and the constructive component translator
  ``s2 = gamma1#(t2) v gamma2^Theta(s1)`` (Theorem 3.1.1);
* :mod:`~repro.core.procedure` -- Update Procedure 3.2.3 for arbitrary
  views through a strong join complement, including the
  complement-independence of the Main Update Theorem 3.2.2;
* :mod:`~repro.core.system` -- a façade tying it all together for
  application code.
"""

from repro.core.update import (
    TabulatedStrategy,
    UpdateRequest,
    UpdateSpecification,
    UpdateStrategy,
)
from repro.core.admissibility import (
    AdmissibilityReport,
    all_solutions,
    is_admissible,
    is_functorial,
    is_minimal_solution,
    is_nonextraneous_solution,
    is_state_independent,
    is_symmetric,
    minimal_solution,
    nonextraneous_solutions,
)
from repro.core.strong import StrongViewAnalysis, analyze_view
from repro.core.components import (
    Component,
    ComponentAlgebra,
    are_strong_complements,
)
from repro.core.constant_complement import (
    ComponentTranslator,
    ConstantComplementTranslator,
)
from repro.core.procedure import UpdateProcedure, strong_join_complements
from repro.core.system import ViewUpdateSystem
from repro.core.operations import (
    Delete,
    Insert,
    Replace,
    UpdateOperation,
    UpdateScript,
    run_view_script,
)
from repro.core.generalized import (
    GeneralizedComponentTranslator,
    find_strong_partner,
    is_generalized_strong,
)

__all__ = [
    "AdmissibilityReport",
    "Delete",
    "GeneralizedComponentTranslator",
    "Insert",
    "Replace",
    "UpdateOperation",
    "UpdateScript",
    "find_strong_partner",
    "is_generalized_strong",
    "run_view_script",
    "Component",
    "ComponentAlgebra",
    "ComponentTranslator",
    "ConstantComplementTranslator",
    "StrongViewAnalysis",
    "TabulatedStrategy",
    "UpdateProcedure",
    "UpdateRequest",
    "UpdateSpecification",
    "UpdateStrategy",
    "ViewUpdateSystem",
    "all_solutions",
    "analyze_view",
    "are_strong_complements",
    "is_admissible",
    "is_functorial",
    "is_minimal_solution",
    "is_nonextraneous_solution",
    "is_state_independent",
    "is_symmetric",
    "minimal_solution",
    "nonextraneous_solutions",
    "strong_join_complements",
]
