"""A façade tying the machinery together for application code.

:class:`ViewUpdateSystem` is what a downstream user instantiates: give
it a base schema, a type assignment, and (optionally) a pre-built state
space; register views; call :meth:`build_component_algebra` with
candidate complements; then service updates with :meth:`update` --
which routes each request through the paper's Update Procedure 3.2.3
using the *smallest* available strong join complement, guaranteeing the
canonical (complement-independent, admissible) reflection of
Theorem 3.2.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ReproError, UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.schema import Schema
from repro.typealgebra.assignment import TypeAssignment
from repro.core.components import Component, ComponentAlgebra
from repro.core.procedure import UpdateProcedure, strong_join_complements
from repro.core.update import UpdateStrategy
from repro.views.view import View


class ViewUpdateSystem:
    """Canonical view-update support for one base schema.

    Parameters
    ----------
    schema:
        The base schema ``D``.
    assignment:
        The fixed type assignment ``mu``.
    space:
        A pre-built state space; enumerated from the schema when
        omitted (small universes only).
    """

    def __init__(
        self,
        schema: Schema,
        assignment: TypeAssignment,
        space: Optional[StateSpace] = None,
    ):
        self.schema = schema
        self.assignment = assignment
        self.space = space or StateSpace.enumerate(schema, assignment)
        if not self.schema.has_null_model_property(assignment):
            raise ReproError(
                f"schema {schema.name!r} lacks the null model property; "
                "the results of Section 3 do not apply"
            )
        self._views: Dict[str, View] = {}
        self._algebra: Optional[ComponentAlgebra] = None
        self._procedures: Dict[str, UpdateProcedure] = {}

    # -- registration -------------------------------------------------------------

    def register_view(self, view: View) -> View:
        """Register a user view; returns it for chaining."""
        if view.base_schema is not self.schema:
            raise ReproError(
                f"view {view.name!r} is over a different base schema"
            )
        self._views[view.name] = view
        self._procedures.pop(view.name, None)
        return view

    def view(self, name: str) -> View:
        """Look up a registered view."""
        try:
            return self._views[name]
        except KeyError:
            raise ReproError(
                f"no view named {name!r}; have {sorted(self._views)}"
            ) from None

    @property
    def views(self) -> Tuple[View, ...]:
        """All registered views."""
        return tuple(self._views.values())

    # -- component algebra -------------------------------------------------------------

    def build_component_algebra(
        self, candidates: Iterable[View]
    ) -> ComponentAlgebra:
        """Discover the component algebra from candidate views.

        Registered views are automatically included as candidates.
        """
        all_candidates = list(candidates) + list(self._views.values())
        self._algebra = ComponentAlgebra.discover(self.space, all_candidates)
        self._procedures.clear()
        return self._algebra

    @property
    def component_algebra(self) -> ComponentAlgebra:
        """The discovered algebra; raises if not built yet."""
        if self._algebra is None:
            raise ReproError(
                "component algebra not built; call build_component_algebra()"
            )
        return self._algebra

    # -- update servicing --------------------------------------------------------------

    def procedure_for(self, view_name: str) -> UpdateProcedure:
        """The canonical update procedure for a view.

        Uses the *smallest* strong join complement in the algebra --
        the one that permits the most updates (Theorem 3.2.2 guarantees
        the choice does not affect the reflections that succeed).
        """
        if view_name not in self._procedures:
            view = self.view(view_name)
            complements = strong_join_complements(view, self.component_algebra)
            if not complements:
                raise ReproError(
                    f"view {view_name!r} has no strong join complement in "
                    "the component algebra; register more candidates"
                )
            self._procedures[view_name] = UpdateProcedure(
                view, complements[0], self.space
            )
        return self._procedures[view_name]

    def update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
    ) -> DatabaseInstance:
        """Reflect a view update to the base schema.

        Returns the new base state, or raises
        :class:`~repro.errors.UpdateRejected` when the update is not
        supported (the formal "undefined" outcome).
        """
        if base_state not in self.space:
            raise UpdateRejected(
                "current base state is not a legal database",
                reason="illegal-base-state",
            )
        return self.procedure_for(view_name).apply(base_state, view_target)

    def explain_update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
    ) -> str:
        """A human-readable account of how an update was reflected."""
        procedure = self.procedure_for(view_name)
        view = self.view(view_name)
        current_view = view.apply(base_state, self.assignment)
        lines = [
            f"view {view_name!r}: {current_view!r} -> {view_target!r}",
            f"constant complement: {procedure.complement.name!r}",
            f"filtered through: {procedure.filter_component.name!r}",
        ]
        try:
            solution = procedure.apply(base_state, view_target)
        except UpdateRejected as exc:
            lines.append(f"REJECTED: {exc} (reason={exc.reason})")
            return "\n".join(lines)
        from repro.relational.display import render_update

        lines.append("ACCEPTED; base changes:")
        for change_line in render_update(base_state, solution).splitlines():
            lines.append(f"  {change_line}")
        return "\n".join(lines)
