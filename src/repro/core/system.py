"""A façade tying the machinery together for application code.

:class:`ViewUpdateSystem` is what a downstream user instantiates: give
it a base schema, a type assignment, and (optionally) a pre-built state
space; register views; call :meth:`build_component_algebra` with
candidate complements; then service updates with :meth:`update` --
which routes each request through the paper's Update Procedure 3.2.3
using the *smallest* available strong join complement, guaranteeing the
canonical (complement-independent, admissible) reflection of
Theorem 3.2.2.

Since the engine layer landed this class is a thin wrapper over an
:class:`~repro.engine.engine.Session`: every expensive derivation
(state space, component algebra, update procedures) is memoized in the
engine's artifact store and shared with any other session over equal
inputs.  :meth:`update` keeps the legacy raise-on-reject contract;
use :meth:`Session.update` directly for structured
:class:`~repro.engine.engine.UpdateOutcome` results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.engine.engine import Engine, Session, current_engine
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.schema import Schema
from repro.typealgebra.assignment import TypeAssignment
from repro.core.components import ComponentAlgebra
from repro.core.procedure import UpdateProcedure
from repro.errors import UpdateRejected
from repro.views.view import View


class ViewUpdateSystem:
    """Canonical view-update support for one base schema.

    Parameters
    ----------
    schema:
        The base schema ``D``.
    assignment:
        The fixed type assignment ``mu``.
    space:
        A pre-built state space; enumerated through the engine when
        omitted (small universes only).
    engine:
        The engine servicing this system; defaults to the ambient
        :func:`~repro.engine.engine.current_engine`.
    """

    def __init__(
        self,
        schema: Schema,
        assignment: TypeAssignment,
        space: Optional[StateSpace] = None,
        engine: Optional[Engine] = None,
    ):
        self.engine = engine if engine is not None else current_engine()
        # The session checks the null model property *before* any
        # state-space enumeration, so inapplicable schemas fail fast.
        self._session: Session = self.engine.session(
            schema, assignment, space
        )

    # -- session delegation -------------------------------------------------------

    @property
    def session(self) -> Session:
        """The underlying engine session."""
        return self._session

    @property
    def schema(self) -> Schema:
        return self._session.schema

    @property
    def assignment(self) -> TypeAssignment:
        return self._session.assignment

    @property
    def space(self) -> StateSpace:
        return self._session.space

    # -- registration -------------------------------------------------------------

    def register_view(self, view: View) -> View:
        """Register a user view; returns it for chaining."""
        return self._session.register_view(view)

    def view(self, name: str) -> View:
        """Look up a registered view."""
        return self._session.view(name)

    @property
    def views(self) -> Tuple[View, ...]:
        """All registered views."""
        return self._session.views

    # -- component algebra -------------------------------------------------------------

    def build_component_algebra(
        self, candidates: Iterable[View]
    ) -> ComponentAlgebra:
        """Discover the component algebra from candidate views.

        Registered views are automatically included as candidates.
        """
        return self._session.build_component_algebra(candidates)

    @property
    def component_algebra(self) -> ComponentAlgebra:
        """The discovered algebra; raises if not built yet."""
        return self._session.component_algebra

    # -- update servicing --------------------------------------------------------------

    def procedure_for(self, view_name: str) -> UpdateProcedure:
        """The canonical update procedure for a view.

        Uses the *smallest* strong join complement in the algebra --
        the one that permits the most updates (Theorem 3.2.2 guarantees
        the choice does not affect the reflections that succeed).
        """
        return self._session.procedure_for(view_name)

    def update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
    ) -> DatabaseInstance:
        """Reflect a view update to the base schema.

        Returns the new base state, or raises
        :class:`~repro.errors.UpdateRejected` when the update is not
        supported (the formal "undefined" outcome).
        """
        return self._session.update(view_name, base_state, view_target).require()

    def explain_update(
        self,
        view_name: str,
        base_state: DatabaseInstance,
        view_target: DatabaseInstance,
    ) -> str:
        """A human-readable account of how an update was reflected."""
        procedure = self.procedure_for(view_name)
        view = self.view(view_name)
        current_view = view.apply(base_state, self.assignment)
        lines = [
            f"view {view_name!r}: {current_view!r} -> {view_target!r}",
            f"constant complement: {procedure.complement.name!r}",
            f"filtered through: {procedure.filter_component.name!r}",
        ]
        try:
            solution = procedure.apply(base_state, view_target)
        except UpdateRejected as exc:
            lines.append(f"REJECTED: {exc} (reason={exc.reason})")
            return "\n".join(lines)
        from repro.relational.display import render_update

        lines.append("ACCEPTED; base changes:")
        for change_line in render_update(base_state, solution).splitlines():
            lines.append(f"  {change_line}")
        return "\n".join(lines)
