"""The component algebra: Boolean algebra of strongly complemented
strong views (paper §2.3, Theorem 2.3.3 and Lemma 2.3.2).

A **component** of a schema is a strong view possessing a strong
complement.  Key facts implemented/verified here:

* two strong views are *strong complements* iff the product of their
  endomorphisms, ``s -> (gamma1^Theta(s), gamma2^Theta(s))``, is a
  ⊥-poset isomorphism onto the product of their fixpoint posets
  (Lemma 2.3.2(b)); strong complements are unique (Theorem 2.3.3(b));
* the ordering of strong views agrees with the pointwise ordering of
  their endomorphisms (Theorem 2.3.3(a));
* the strongly complemented strong views form a Boolean algebra
  (:class:`ComponentAlgebra` builds and *verifies* it via
  :class:`~repro.algebra.boolean_algebra.FiniteBooleanAlgebra`).

Views inducing the same endomorphism of the base state space are
isomorphic; components are therefore identified by their
``theta_key``, and each :class:`Component` carries one representative
view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import (
    NotAComplementError,
    NotABooleanAlgebraError,
    ReproError,
)
from repro.algebra.boolean_algebra import FiniteBooleanAlgebra
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.strong import StrongViewAnalysis, analyze_view
from repro.views.view import View, identity_view, zero_view


def theta_leq(left: StrongViewAnalysis, right: StrongViewAnalysis) -> bool:
    """Pointwise order of endomorphisms: ``theta1(s) <= theta2(s)`` always.

    By Theorem 2.3.3(a) this coincides with the view ordering
    ``Gamma1 <= Gamma2`` for strong views (cross-validated in tests
    against kernel refinement).

    Since every ``theta`` value is itself a state, the pointwise subset
    tests are single bit probes of the state poset's order matrix.
    """
    if left.theta is None or right.theta is None:
        raise ReproError(
            "theta_leq needs analyses carrying endomorphism tables "
            "(both views must admit least preimages)"
        )
    below = left.space.poset.leq_matrix()
    return all(
        (below[hi] >> lo) & 1
        for lo, hi in zip(left._theta_indices(), right._theta_indices())
    )


def are_strong_complements(
    left: StrongViewAnalysis, right: StrongViewAnalysis
) -> bool:
    """Lemma 2.3.2(b): is ``theta1 x theta2`` a ⊥-poset isomorphism onto
    the product of the two fixpoint posets?

    Decided without materialising the product poset:

    1. *cardinality*: a bijection requires
       ``|fix(theta1)| * |fix(theta2)| == |LDB|`` -- this kills almost
       every non-complement pair instantly;
    2. *injectivity*: the pairs ``(theta1(s), theta2(s))`` are distinct
       (with (1), they then exhaust the product set);
    3. *order*: ``x <= y  iff  theta1(x) <= theta1(y) and
       theta2(x) <= theta2(y)``.  Per state ``y``, the right-hand side
       is a mask -- the union of ``{x : theta1(x) = f}`` selectors over
       the fixpoints ``f <= theta1(y)``, intersected with the theta2
       analogue -- memoized per distinct theta value, so the whole check
       is one mask comparison per state instead of ``n^2`` bit probes.
    """
    if not (left.is_strong and right.is_strong):
        return False
    if left.theta is None or right.theta is None:
        raise ReproError(
            "strong analyses must carry endomorphism tables"
        )
    space = left.space
    n = len(space.states)
    if len(left.fixpoints()) * len(right.fixpoints()) != n:
        return False
    if len(left.fixpoints()) == n or len(right.fixpoints()) == n:
        # One endomorphism is the identity, so (by the cardinality
        # check) the other is constant: the pairs are distinct because
        # the identity leg already is, and the order condition collapses
        # to ``x <= y iff x <= y`` (the constant leg never constrains;
        # the identity leg reflects exactly).
        return True
    left_index = left._theta_indices()
    right_index = right._theta_indices()
    if len(set(zip(left_index, right_index))) != n:
        return False
    below = space.poset.leq_matrix()

    left_sel: Dict[int, int] = {}
    right_sel: Dict[int, int] = {}
    for x in range(n):
        f = left_index[x]
        left_sel[f] = left_sel.get(f, 0) | (1 << x)
        f = right_index[x]
        right_sel[f] = right_sel.get(f, 0) | (1 << x)

    def pull_table(sel: Dict[int, int]) -> Dict[int, int]:
        # {x : theta(x) <= f} per fixpoint f.  Restricting each down-set
        # to the fixpoint support keeps the bit walk O(|fixpoints|)
        # instead of O(|LDB|) per entry.
        support = 0
        for f in sel:
            support |= 1 << f
        table: Dict[int, int] = {}
        for fy in sel:
            mask = 0
            probe = below[fy] & support
            while probe:
                f = (probe & -probe).bit_length() - 1
                probe &= probe - 1
                mask |= sel[f]
            table[fy] = mask
        return table

    left_pulled = pull_table(left_sel)
    right_pulled = pull_table(right_sel)
    for y in range(n):
        componentwise = (
            left_pulled[left_index[y]] & right_pulled[right_index[y]]
        )
        if componentwise != below[y]:
            return False
    return True


@dataclass
class Component:
    """A strongly complemented strong view, as an algebra element."""

    name: str
    view: View
    analysis: StrongViewAnalysis
    key: Tuple[int, ...]
    #: Set by :class:`ComponentAlgebra` once complements are resolved.
    complement: Optional["Component"] = None

    def __repr__(self) -> str:
        return f"Component({self.name!r})"

    @property
    def theta(self) -> Dict[DatabaseInstance, DatabaseInstance]:
        """The endomorphism table ``gamma^Theta``."""
        if self.analysis.theta is None:
            raise ReproError(
                f"component {self.name!r} has no endomorphism table"
            )
        return self.analysis.theta

    @property
    def sharp(self) -> Dict[DatabaseInstance, DatabaseInstance]:
        """The least-right-inverse table ``gamma#``."""
        if self.analysis.sharp is None:
            raise ReproError(
                f"component {self.name!r} has no least-right-inverse table"
            )
        return self.analysis.sharp

    def fixpoints(self) -> Tuple[DatabaseInstance, ...]:
        """The least preimages (the component's "part" of each state)."""
        return self.analysis.fixpoints()


class ComponentAlgebra:
    """The Boolean algebra of components of a schema over a state space.

    Build with :meth:`discover`, passing candidate views; the identity
    and zero views are always included (they are the top and bottom).
    Construction *verifies* the Boolean algebra axioms -- Theorem 2.3.3's
    claim is executed, not assumed -- and resolves every element's unique
    complement.

    Note: the theorem guarantees the set of *all* strongly complemented
    strong views forms a Boolean algebra; a partial candidate set may
    fail closure under meet/join, in which case construction raises
    :class:`~repro.errors.NotABooleanAlgebraError` naming the gap.
    """

    def __init__(
        self,
        space: StateSpace,
        components: Tuple[Component, ...],
        algebra: FiniteBooleanAlgebra,
    ):
        self.space = space
        self._components = components
        self._by_key: Dict[Tuple[int, ...], Component] = {
            c.key: c for c in components
        }
        self._by_name: Dict[str, Component] = {c.name: c for c in components}
        self.algebra = algebra

    # -- construction -------------------------------------------------------------

    @classmethod
    def discover(
        cls,
        space: StateSpace,
        candidates: Iterable[View],
        include_bounds: bool = True,
        require_boolean: bool = True,
    ) -> "ComponentAlgebra":
        """Find the components among *candidates* and build the algebra.

        Steps: analyse each candidate; keep the strong ones; dedupe by
        endomorphism (isomorphic views collapse); pair up strong
        complements by the Lemma 2.3.2(b) criterion; keep the
        complemented ones; verify the Boolean algebra axioms over the
        pointwise endomorphism order.
        """
        analyses: List[StrongViewAnalysis] = []
        views: List[View] = list(candidates)
        if include_bounds:
            views.append(identity_view(space.schema))
            views.append(zero_view(space.schema))
        for view in views:
            analysis = analyze_view(view, space)
            if analysis.is_strong:
                analyses.append(analysis)

        # Dedupe isomorphic views (same endomorphism).
        by_key: Dict[Tuple[int, ...], StrongViewAnalysis] = {}
        for analysis in analyses:
            by_key.setdefault(analysis.theta_key(), analysis)

        # Keep the strongly complemented ones.
        keys = list(by_key)
        complemented: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        for key in keys:
            if key in complemented:
                continue
            for other in keys:
                if are_strong_complements(by_key[key], by_key[other]):
                    complemented[key] = other
                    complemented[other] = key
                    break

        components = tuple(
            Component(
                name=by_key[key].view.name,
                view=by_key[key].view,
                analysis=by_key[key],
                key=key,
            )
            for key in keys
            if key in complemented
        )
        if not components:
            raise NotAComplementError(
                "no strongly complemented strong views among the candidates"
            )

        component_of = {c.key: c for c in components}
        try:
            algebra = FiniteBooleanAlgebra(
                [c.key for c in components],
                lambda a, b: theta_leq(
                    component_of[a].analysis, component_of[b].analysis
                ),
            )
        except NotABooleanAlgebraError:
            if require_boolean:
                raise
            raise
        instance = cls(space, components, algebra)
        # Resolve complements: the algebra complement and the strong
        # complement coincide (Lemma 2.3.2); link them on the objects.
        for component in components:
            complement_key = algebra.complement(component.key)
            component.complement = instance._by_key[complement_key]
        return instance

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def components(self) -> Tuple[Component, ...]:
        """All elements."""
        return self._components

    def named(self, name: str) -> Component:
        """Look up an element by view name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ReproError(
                f"no component named {name!r}; have {sorted(self._by_name)}"
            ) from None

    def component_of_view(self, view: View) -> Component:
        """The element a (strong) view corresponds to, by endomorphism."""
        analysis = analyze_view(view, self.space).require_strong()
        key = analysis.theta_key()
        try:
            return self._by_key[key]
        except KeyError:
            raise NotAComplementError(
                f"view {view.name!r} is strong but not in this algebra "
                "(it may lack a strong complement among the candidates)"
            ) from None

    # -- Boolean operations -------------------------------------------------------------

    @property
    def top(self) -> Component:
        """The identity view ``1_D``."""
        return self._by_key[self.algebra.top]

    @property
    def bottom(self) -> Component:
        """The zero view ``0_D``."""
        return self._by_key[self.algebra.bottom]

    def leq(self, left: Component, right: Component) -> bool:
        """The component order (endomorphisms pointwise)."""
        return self.algebra.leq(left.key, right.key)

    def meet(self, left: Component, right: Component) -> Component:
        """Greatest lower bound."""
        return self._by_key[self.algebra.meet(left.key, right.key)]

    def join(self, left: Component, right: Component) -> Component:
        """Least upper bound."""
        return self._by_key[self.algebra.join(left.key, right.key)]

    def complement_of(self, component: Component) -> Component:
        """The unique strong complement (Theorem 2.3.3(b))."""
        return self._by_key[self.algebra.complement(component.key)]

    def atoms(self) -> Tuple[Component, ...]:
        """The atomic components."""
        return tuple(self._by_key[k] for k in self.algebra.atoms())

    def is_boolean(self) -> bool:
        """The algebra was verified at construction; re-verify the
        powerset-of-atoms isomorphism as a sanity check."""
        return self.algebra.is_isomorphic_to_powerset_of_atoms()

    def __repr__(self) -> str:
        return (
            f"ComponentAlgebra({len(self)} components, "
            f"{len(self.atoms())} atoms)"
        )
