"""The admissibility battery: Requirements 1-4 of paper §1.2.

An update strategy is **admissible** (Definition 1.2.14) when it is

1. *nonextraneous* -- no reflected update contains changes unnecessary
   to achieve the requested view state (Requirement 1, Definition
   1.2.4);
2. *functorial* -- identity updates reflect as no change, and reflecting
   a composite update equals composing the reflections (Requirement 2,
   Definition 1.2.8);
3. *symmetric* -- every allowed update can be undone (Requirement 3,
   Definition 1.2.11);
4. *state independent* -- whether an update is allowed depends only on
   information visible in the view (Requirement 4, Definition 1.2.13).

All four are decidable by exhaustive checking over a finite state
space.  Each check returns the first counterexample found, so failures
are self-documenting (and drive experiments E2-E6).

On the wording of Definition 1.2.4: solutions to an update from ``s1``
are uniquely determined by their change-set ``s1 Δ s2`` (since
``s2 = s1 Δ (s1 Δ s2)``), and a solution is *nonextraneous* when no
other solution achieves the goal with a strictly smaller change-set,
*minimal* when its change-set is contained in every other solution's.
Proposition 1.2.6 (a minimal solution, when it exists, is the only
nonextraneous one) holds with these readings and is verified in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.update import UpdateStrategy
from repro.views.view import View


# -- solutions (Definition 0.1.2(b)) -------------------------------------------


def all_solutions(
    view: View,
    space: StateSpace,
    target: DatabaseInstance,
) -> Tuple[DatabaseInstance, ...]:
    """All base states whose image under the view is *target*."""
    return view.preimages(space, target)


def _deltas(
    current: DatabaseInstance, solutions: Tuple[DatabaseInstance, ...]
) -> List[DatabaseInstance]:
    return [current.delta(solution) for solution in solutions]


def _nonextraneous_flags(deltas: List[DatabaseInstance]) -> List[bool]:
    """flags[i] iff no other delta is strictly contained in deltas[i].

    Sorting by change-set size lets each delta be compared only against
    the strictly smaller ones.
    """
    order = sorted(range(len(deltas)), key=lambda i: deltas[i].total_rows())
    flags = [True] * len(deltas)
    for rank, i in enumerate(order):
        size_i = deltas[i].total_rows()
        for j in order[:rank]:
            if deltas[j].total_rows() < size_i and deltas[j].issubset(
                deltas[i]
            ):
                flags[i] = False
                break
    return flags


def is_nonextraneous_solution(
    view: View,
    space: StateSpace,
    current: DatabaseInstance,
    solution: DatabaseInstance,
) -> bool:
    """No other solution's change-set is strictly contained in this one's."""
    my_delta = current.delta(solution)
    my_size = my_delta.total_rows()
    target = view.apply(solution, space.assignment)
    for other in all_solutions(view, space, target):
        if other == solution:
            continue
        other_delta = current.delta(other)
        if other_delta.total_rows() < my_size and other_delta.issubset(
            my_delta
        ):
            return False
    return True


def is_minimal_solution(
    view: View,
    space: StateSpace,
    current: DatabaseInstance,
    solution: DatabaseInstance,
) -> bool:
    """This solution's change-set is contained in every other's."""
    my_delta = current.delta(solution)
    target = view.apply(solution, space.assignment)
    return all(
        my_delta.issubset(current.delta(other))
        for other in all_solutions(view, space, target)
    )


def nonextraneous_solutions(
    view: View,
    space: StateSpace,
    current: DatabaseInstance,
    target: DatabaseInstance,
    solutions: Optional[Tuple[DatabaseInstance, ...]] = None,
) -> Tuple[DatabaseInstance, ...]:
    """All nonextraneous solutions of ``(current, (gamma'(current), target))``.

    Example 1.2.5 exhibits a request with *two* incomparable
    nonextraneous solutions -- the reason minimality cannot be required
    in general.  Solutions are enumerated once and their change-sets
    compared pairwise (no per-candidate rescans).  Callers holding a
    precomputed fibre (e.g. from the engine's preimage-index artifact)
    pass it as *solutions* to skip the lookup.
    """
    if solutions is None:
        solutions = all_solutions(view, space, target)
    flags = _nonextraneous_flags(_deltas(current, solutions))
    return tuple(s for s, keep in zip(solutions, flags) if keep)


def minimal_solution(
    view: View,
    space: StateSpace,
    current: DatabaseInstance,
    target: DatabaseInstance,
    solutions: Optional[Tuple[DatabaseInstance, ...]] = None,
) -> Optional[DatabaseInstance]:
    """The minimal solution if one exists, else ``None``.

    The minimal solution, if any, has the smallest change-set; check
    that candidate against all others.  *solutions*, when given, is the
    precomputed fibre of *target*.
    """
    if solutions is None:
        solutions = all_solutions(view, space, target)
    if not solutions:
        return None
    deltas = _deltas(current, solutions)
    best = min(range(len(solutions)), key=lambda i: deltas[i].total_rows())
    if all(deltas[best].issubset(delta) for delta in deltas):
        return solutions[best]
    return None


# -- strategy-level checks -----------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one admissibility check with an optional counterexample."""

    name: str
    passed: bool
    counterexample: Optional[str] = None

    def __bool__(self) -> bool:
        return self.passed


def check_nonextraneous(strategy: UpdateStrategy) -> CheckResult:
    """Requirement 1: every supplied solution is nonextraneous."""
    view, space = strategy.view, strategy.space
    for state, target, result in strategy.defined_pairs():
        if not is_nonextraneous_solution(view, space, state, result):
            return CheckResult(
                "nonextraneous",
                False,
                f"rho({state!r}, {target!r}) = {result!r} is extraneous",
            )
    return CheckResult("nonextraneous", True)


def check_functorial(strategy: UpdateStrategy) -> CheckResult:
    """Requirement 2 (Definition 1.2.8): identity and composition laws."""
    view, space = strategy.view, strategy.space
    assignment = space.assignment
    # (a) identity updates reflect as no change.
    for state in space.states:
        image = view.apply(state, assignment)
        if not strategy.defined(state, image):
            return CheckResult(
                "functorial",
                False,
                f"identity update undefined at {state!r}",
            )
        if strategy.apply(state, image) != state:
            return CheckResult(
                "functorial",
                False,
                f"identity update moves {state!r}",
            )
    # (b) composition: rho(s1, t3) == rho(rho(s1, t2), t3) whenever both
    # of the right-hand applications are defined.
    table = strategy.as_table()
    targets = view.image_states(space)
    for (state, mid_target), mid_state in table.items():
        for target in targets:
            if (mid_state, target) not in table:
                continue
            composed = table[(mid_state, target)]
            direct = table.get((state, target))
            if direct != composed:
                return CheckResult(
                    "functorial",
                    False,
                    f"composition law fails: rho(s1={state!r}, t3={target!r})"
                    f" = {direct!r} but via t2={mid_target!r} = {composed!r}",
                )
    return CheckResult("functorial", True)


def check_symmetric(strategy: UpdateStrategy) -> CheckResult:
    """Requirement 3 (Definition 1.2.11): every update can be undone."""
    view, space = strategy.view, strategy.space
    assignment = space.assignment
    for state, target, result in strategy.defined_pairs():
        original = view.apply(state, assignment)
        if not strategy.defined(result, original):
            return CheckResult(
                "symmetric",
                False,
                f"update {original!r} -> {target!r} at {state!r} cannot "
                "be undone",
            )
    return CheckResult("symmetric", True)


def check_state_independent(strategy: UpdateStrategy) -> CheckResult:
    """Requirement 4 (Definition 1.2.13): definedness depends only on the
    view state, not on which preimage the base is in."""
    view, space = strategy.view, strategy.space
    kernel = view.kernel(space)
    targets = view.image_states(space)
    for block in kernel.blocks:
        members = sorted(block, key=repr)
        for target in targets:
            defined_flags = {strategy.defined(s, target) for s in members}
            if len(defined_flags) > 1:
                return CheckResult(
                    "state_independent",
                    False,
                    f"update to {target!r} is allowed in some but not all "
                    f"base states with the same view image",
                )
    return CheckResult("state_independent", True)


def find_functoriality_violation(
    strategy: UpdateStrategy,
    max_checks: int = 1_000_000,
) -> Optional[str]:
    """Search for a composition-law violation with early exit.

    Cheaper than :func:`check_functorial` when a violation is common:
    strategy applications are memoised and the search stops at the first
    counterexample (or after *max_checks* triples).  Returns a
    description, or ``None`` if no violation was found within budget.
    """
    from repro.errors import UpdateRejected

    view, space = strategy.view, strategy.space
    targets = view.image_states(space)
    memo: dict = {}

    def apply(state, target):
        key = (state, target)
        if key not in memo:
            try:
                memo[key] = strategy.apply(state, target)
            except UpdateRejected:
                memo[key] = None
        return memo[key]

    checks = 0
    for state in space.states:
        for mid_target in targets:
            mid_state = apply(state, mid_target)
            if mid_state is None:
                continue
            for target in targets:
                checks += 1
                if checks > max_checks:
                    return None
                composed = apply(mid_state, target)
                if composed is None:
                    continue
                direct = apply(state, target)
                if direct != composed:
                    return (
                        f"rho(s1, t3) = {direct!r} but "
                        f"rho(rho(s1, t2), t3) = {composed!r} "
                        f"for s1={state!r}, t2={mid_target!r}, t3={target!r}"
                    )
    return None


def find_symmetry_violation(
    strategy: UpdateStrategy,
    max_checks: int = 1_000_000,
) -> Optional[str]:
    """Search for an un-undoable update with early exit.

    Returns a description of the first violation of Definition 1.2.11,
    or ``None`` if none was found within budget.
    """
    view, space = strategy.view, strategy.space
    assignment = space.assignment
    targets = view.image_states(space)
    checks = 0
    for state in space.states:
        original = view.apply(state, assignment)
        for target in targets:
            checks += 1
            if checks > max_checks:
                return None
            if not strategy.defined(state, target):
                continue
            result = strategy.apply(state, target)
            if not strategy.defined(result, original):
                return (
                    f"update {original!r} -> {target!r} from {state!r} "
                    "cannot be undone"
                )
    return None


@dataclass
class AdmissibilityReport:
    """The full battery for a strategy (Definition 1.2.14)."""

    nonextraneous: CheckResult
    functorial: CheckResult
    symmetric: CheckResult
    state_independent: CheckResult

    @property
    def is_admissible(self) -> bool:
        """All four requirements pass."""
        return bool(
            self.nonextraneous
            and self.functorial
            and self.symmetric
            and self.state_independent
        )

    def checks(self) -> Tuple[CheckResult, ...]:
        """The individual results."""
        return (
            self.nonextraneous,
            self.functorial,
            self.symmetric,
            self.state_independent,
        )

    def failures(self) -> Tuple[CheckResult, ...]:
        """The failing checks (with counterexamples)."""
        return tuple(c for c in self.checks() if not c.passed)

    def summary(self) -> str:
        """One line per check."""
        lines = []
        for check in self.checks():
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"{check.name:>18}: {status}")
            if check.counterexample:
                lines.append(f"{'':>20}{check.counterexample}")
        return "\n".join(lines)


def analyze_admissibility(strategy: UpdateStrategy) -> AdmissibilityReport:
    """Run the full battery on a strategy."""
    return AdmissibilityReport(
        nonextraneous=check_nonextraneous(strategy),
        functorial=check_functorial(strategy),
        symmetric=check_symmetric(strategy),
        state_independent=check_state_independent(strategy),
    )


def is_admissible(strategy: UpdateStrategy) -> bool:
    """Definition 1.2.14: nonextraneous + functorial + symmetric +
    state independent."""
    return analyze_admissibility(strategy).is_admissible


def is_functorial(strategy: UpdateStrategy) -> bool:
    """Requirement 2 alone."""
    return bool(check_functorial(strategy))


def is_symmetric(strategy: UpdateStrategy) -> bool:
    """Requirement 3 alone."""
    return bool(check_symmetric(strategy))


def is_state_independent(strategy: UpdateStrategy) -> bool:
    """Requirement 4 alone."""
    return bool(check_state_independent(strategy))
