"""Update Procedure 3.2.3: updating arbitrary views through components.

Let ``Gamma1`` be *any* view of ``D`` (not necessarily strong).  A
component ``Gamma2`` is a **strong join complement** of ``Gamma1`` when
``Gamma2^c <= Gamma1`` -- the complement of ``Gamma2`` in the component
algebra is definable from ``Gamma1`` (Section 3.2).  By Lemma 3.2.1 such
a ``Gamma2`` is in particular an ordinary join complement.

The procedure to service an update ``(s1, (t1, t2))`` on ``Gamma1`` with
constant ``Gamma2``:

1. let ``f : Gamma1 -> Gamma2^c`` be the unique view morphism
   (Theorem 2.2.2 guarantees it);
2. translate the *filtered* update ``(s1, (f'(t1), f'(t2)))`` on the
   component ``Gamma2^c``, which succeeds uniquely and admissibly by
   Theorem 3.1.1;
3. if ``gamma1'(s2) = t2`` the update succeeds; otherwise it is not
   possible with ``Gamma2`` constant and is rejected.

The **Main Update Theorem 3.2.2** asserts (a) any solution so obtained
is admissible, and (b) the solution is the same for *every* strong join
complement for which one exists -- :func:`translations_coincide`
verifies (b) exhaustively, and experiment E10 reports it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import NotComparableError, UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.core.components import Component, ComponentAlgebra
from repro.core.constant_complement import ComponentTranslator
from repro.core.update import UpdateStrategy
from repro.views.morphisms import defines, view_morphism_table
from repro.views.view import View


def is_strong_join_complement(
    view: View, component: Component, space: StateSpace
) -> bool:
    """Section 3.2: ``component`` is a strong join complement of *view*
    iff ``component.complement <= view`` in ``View(D)``."""
    if component.complement is None:
        return False
    return defines(view, component.complement.view, space)


def strong_join_complements(
    view: View, algebra: ComponentAlgebra
) -> Tuple[Component, ...]:
    """All components of the algebra that are strong join complements of
    *view*, smallest (finest filter) first."""
    space = algebra.space
    found = tuple(
        component
        for component in algebra
        if is_strong_join_complement(view, component, space)
    )
    rank = {
        c.key: sum(1 for other in found if algebra.leq(other, c))
        for c in found
    }
    return tuple(sorted(found, key=lambda c: (rank[c.key], c.name)))


class UpdateProcedure(UpdateStrategy):
    """Update Procedure 3.2.3 for one view / strong-join-complement pair."""

    def __init__(
        self,
        view: View,
        complement: Component,
        space: StateSpace,
    ):
        super().__init__(view, space)
        if complement.complement is None:
            raise NotComparableError(
                f"component {complement.name!r} has no resolved complement"
            )
        self.complement = complement
        self.filter_component = complement.complement
        if not defines(view, self.filter_component.view, space):
            raise NotComparableError(
                f"{complement.name!r} is not a strong join complement of "
                f"{view.name!r}: its complement "
                f"{self.filter_component.name!r} is not defined by the view"
            )
        #: The unique morphism f : Gamma1 -> Gamma2^c, as a state table.
        self.filter_morphism: Dict[DatabaseInstance, DatabaseInstance] = (
            view_morphism_table(view, self.filter_component.view, space)
        )
        self._inner = ComponentTranslator.for_component(
            self.filter_component, space
        )

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """Service ``(state, (gamma1'(state), target))`` per 3.2.3."""
        if target not in self.filter_morphism:
            raise UpdateRejected(
                f"{target!r} is not a legal state of view {self.view.name!r}",
                reason="illegal-view-state",
            )
        filtered_target = self.filter_morphism[target]
        solution = self._inner.apply(state, filtered_target)
        achieved = self.view.apply(solution, self.space.assignment)
        if achieved != target:
            raise UpdateRejected(
                f"update to {target!r} cannot be effected with "
                f"{self.complement.name!r} constant (achieved {achieved!r})",
                reason="image-mismatch",
            )
        return solution


def translations_coincide(
    view: View,
    complements: Iterable[Component],
    space: StateSpace,
) -> bool:
    """Main Update Theorem 3.2.2(b), checked exhaustively.

    For every state and every target view state, every strong join
    complement for which the update succeeds must yield the *same*
    solution.  Returns ``False`` with the first disagreement (used by
    experiment E10; the test suite asserts ``True`` on the paper's
    universes).
    """
    procedures = [
        UpdateProcedure(view, component, space) for component in complements
    ]
    if not procedures:
        return True
    targets = view.image_states(space)
    for state in space.states:
        for target in targets:
            solutions = set()
            for procedure in procedures:
                try:
                    solutions.add(procedure.apply(state, target))
                except UpdateRejected:
                    continue
            if len(solutions) > 1:
                return False
    return True
