"""Update specifications and update strategies (paper §0.1).

* An **update specification** for a schema is a pair of legal states
  ``(s1, s2)`` -- current and desired (Definition 0.1.1).
* An **update specification for a view** ``Gamma`` is
  ``(s1, (t1, t2))`` with ``gamma'(s1) = t1`` (Definition 0.1.2(a)); a
  *solution* is an ``s2`` with ``gamma'(s2) = t2``.
* An **update strategy** is a partial function
  ``rho : LDB(D) x LDB(V) -> LDB(D)`` (Definition 0.1.2(c)); partiality
  is expressed by raising :class:`~repro.errors.UpdateRejected`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Tuple

from repro.errors import UpdateRejected
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.views.view import View


@dataclass(frozen=True)
class UpdateSpecification:
    """A base-schema update specification ``(s1, s2)`` (Definition 0.1.1)."""

    current: DatabaseInstance
    desired: DatabaseInstance

    def is_identity(self) -> bool:
        """True iff nothing changes."""
        return self.current == self.desired

    def delta_size(self) -> int:
        """Number of changed tuples."""
        return self.current.delta_size(self.desired)


@dataclass(frozen=True)
class UpdateRequest:
    """A view update specification ``(s1, (t1, t2))`` (Definition 0.1.2(a)).

    ``t1`` is determined by ``s1`` (it is ``gamma'(s1)``); it is stored
    explicitly so the object is self-describing and checkable.
    """

    base_state: DatabaseInstance
    view_current: DatabaseInstance
    view_desired: DatabaseInstance

    def check_consistent(self, view: View, assignment) -> None:
        """Verify ``gamma'(s1) = t1``; raise ``ValueError`` otherwise."""
        actual = view.apply(self.base_state, assignment)
        if actual != self.view_current:
            # reprolint: disable=RL001 -- documented ValueError on malformed request tuples; asserted by tests/core/test_update.py
            raise ValueError(
                f"inconsistent update request: gamma'(s1) != t1 for view "
                f"{view.name!r}"
            )

    @classmethod
    def for_view(
        cls,
        view: View,
        assignment,
        base_state: DatabaseInstance,
        view_desired: DatabaseInstance,
    ) -> "UpdateRequest":
        """Build a request, computing ``t1 = gamma'(s1)``."""
        return cls(base_state, view.apply(base_state, assignment), view_desired)


class UpdateStrategy:
    """An update strategy ``rho`` for a view (Definition 0.1.2(c)).

    Subclasses implement :meth:`apply`, raising
    :class:`~repro.errors.UpdateRejected` where ``rho`` is undefined.
    """

    #: The view this strategy serves.
    view: View
    #: The state space the strategy is defined over.
    space: StateSpace

    def __init__(self, view: View, space: StateSpace):
        self.view = view
        self.space = space

    def apply(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> DatabaseInstance:
        """``rho(state, target)``; raises ``UpdateRejected`` if undefined."""
        raise NotImplementedError

    def defined(
        self, state: DatabaseInstance, target: DatabaseInstance
    ) -> bool:
        """True iff ``rho`` is defined at this pair."""
        try:
            self.apply(state, target)
            return True
        except UpdateRejected:
            return False

    def defined_pairs(
        self,
    ) -> Iterator[Tuple[DatabaseInstance, DatabaseInstance, DatabaseInstance]]:
        """Iterate ``(s1, t2, rho(s1, t2))`` over the whole domain.

        Exhaustive -- meant for admissibility analysis on small spaces.
        """
        targets = self.view.image_states(self.space)
        for state in self.space.states:
            for target in targets:
                try:
                    result = self.apply(state, target)
                except UpdateRejected:
                    continue
                yield state, target, result

    def as_table(
        self,
    ) -> Dict[Tuple[DatabaseInstance, DatabaseInstance], DatabaseInstance]:
        """Tabulate the strategy over its whole (defined) domain."""
        return {
            (state, target): result
            for state, target, result in self.defined_pairs()
        }


class TabulatedStrategy(UpdateStrategy):
    """A strategy given by an explicit table ``(s1, t2) -> s2``.

    Useful for constructing counterexample strategies in tests and for
    freezing the output of another strategy.
    """

    def __init__(
        self,
        view: View,
        space: StateSpace,
        table: Mapping[Tuple[DatabaseInstance, DatabaseInstance], DatabaseInstance],
    ):
        super().__init__(view, space)
        self._table = dict(table)

    def apply(self, state, target):
        try:
            return self._table[(state, target)]
        except KeyError:
            raise UpdateRejected(
                f"update not in table for view {self.view.name!r}",
                reason="not-in-table",
            ) from None


class CallableStrategy(UpdateStrategy):
    """A strategy wrapping a Python callable ``(s1, t2) -> s2``."""

    def __init__(
        self,
        view: View,
        space: StateSpace,
        func: Callable[[DatabaseInstance, DatabaseInstance], DatabaseInstance],
        label: str = "",
    ):
        super().__init__(view, space)
        self._func = func
        self.label = label

    def apply(self, state, target):
        return self._func(state, target)

    def __repr__(self) -> str:
        return f"CallableStrategy({self.label or self._func!r})"
