"""Tuple-level update operations: inserts, deletes, replacements.

Definition 0.1.1 notes that "insertions, deletions, and replacements
are commonly considered special cases" of the state-pair notion of
update.  This module provides those special cases as first-class
objects: each operation knows how to turn a current (view) state into
the desired next state, and operations compose into scripts.  The
façade-level helpers then route the resulting state-pair update
through whatever strategy serves the view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import UpdateRejected
from repro.relational.instances import DatabaseInstance


class UpdateOperation:
    """A tuple-level edit, applicable to any database state.

    Subclasses implement :meth:`target_state`.  Operations are *strict*:
    inserting a present tuple or deleting an absent one raises
    :class:`~repro.errors.UpdateRejected` (reason ``"no-op"``), so a
    script's effect is always exactly what it says.  Use
    :meth:`lenient` for the idempotent reading.
    """

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        """The state after this operation."""
        raise NotImplementedError

    def inverse(self) -> "UpdateOperation":
        """The operation undoing this one."""
        raise NotImplementedError

    def lenient(self) -> "LenientOperation":
        """An idempotent wrapper (no-ops pass through silently)."""
        return LenientOperation(self)


@dataclass(frozen=True)
class Insert(UpdateOperation):
    """Insert one tuple into one relation."""

    relation: str
    row: Tuple[object, ...]

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        if tuple(self.row) in state.relation(self.relation):
            raise UpdateRejected(
                f"{self.row!r} already present in {self.relation!r}",
                reason="no-op",
            )
        return state.inserting(self.relation, self.row)

    def inverse(self) -> "Delete":
        return Delete(self.relation, self.row)

    def __repr__(self) -> str:
        return f"+{self.relation}{tuple(self.row)!r}"


@dataclass(frozen=True)
class Delete(UpdateOperation):
    """Delete one tuple from one relation."""

    relation: str
    row: Tuple[object, ...]

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        if tuple(self.row) not in state.relation(self.relation):
            raise UpdateRejected(
                f"{self.row!r} not present in {self.relation!r}",
                reason="no-op",
            )
        return state.deleting(self.relation, self.row)

    def inverse(self) -> "Insert":
        return Insert(self.relation, self.row)

    def __repr__(self) -> str:
        return f"-{self.relation}{tuple(self.row)!r}"


@dataclass(frozen=True)
class Replace(UpdateOperation):
    """Replace one tuple by another within one relation."""

    relation: str
    old_row: Tuple[object, ...]
    new_row: Tuple[object, ...]

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        relation = state.relation(self.relation)
        if tuple(self.old_row) not in relation:
            raise UpdateRejected(
                f"{self.old_row!r} not present in {self.relation!r}",
                reason="no-op",
            )
        if tuple(self.new_row) in relation:
            raise UpdateRejected(
                f"{self.new_row!r} already present in {self.relation!r}",
                reason="no-op",
            )
        return state.deleting(self.relation, self.old_row).inserting(
            self.relation, self.new_row
        )

    def inverse(self) -> "Replace":
        return Replace(self.relation, self.new_row, self.old_row)

    def __repr__(self) -> str:
        return (
            f"{self.relation}: {tuple(self.old_row)!r} -> "
            f"{tuple(self.new_row)!r}"
        )


@dataclass(frozen=True)
class LenientOperation(UpdateOperation):
    """Idempotent wrapper: a no-op outcome passes through unchanged."""

    inner: UpdateOperation

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        try:
            return self.inner.target_state(state)
        except UpdateRejected as exc:
            if exc.reason == "no-op":
                return state
            raise

    def inverse(self) -> "LenientOperation":
        return LenientOperation(self.inner.inverse())


class UpdateScript:
    """A sequence of operations applied left to right.

    The script's *target* is computed against a given starting state;
    its inverse is the reversed sequence of inverses, so
    ``script.inverse().target_state(script.target_state(s)) == s``
    whenever the forward script applies.
    """

    def __init__(self, operations: Iterable[UpdateOperation] = ()):
        self.operations: Tuple[UpdateOperation, ...] = tuple(operations)

    def then(self, operation: UpdateOperation) -> "UpdateScript":
        """A new script with one more operation."""
        return UpdateScript(self.operations + (operation,))

    def target_state(self, state: DatabaseInstance) -> DatabaseInstance:
        """Apply all operations in order."""
        for operation in self.operations:
            state = operation.target_state(state)
        return state

    def inverse(self) -> "UpdateScript":
        """The undo script."""
        return UpdateScript(
            tuple(op.inverse() for op in reversed(self.operations))
        )

    def __len__(self) -> int:
        return len(self.operations)

    def __repr__(self) -> str:
        return f"UpdateScript({list(self.operations)!r})"


def run_view_script(
    system,
    view_name: str,
    base_state: DatabaseInstance,
    script: UpdateScript | UpdateOperation,
) -> DatabaseInstance:
    """Apply a tuple-level script to a view and reflect it to the base.

    Computes the view's current state, edits it with *script*, and
    routes the resulting state-pair update through the system's
    canonical procedure for the view.  Returns the new base state.
    """
    if isinstance(script, UpdateOperation):
        script = UpdateScript([script])
    view = system.view(view_name)
    current = view.apply(base_state, system.assignment)
    target = script.target_state(current)
    return system.update(view_name, base_state, target)
