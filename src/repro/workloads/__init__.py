"""Workloads: the paper's example universes and random generators.

* :mod:`~repro.workloads.scenarios` -- faithful executable builds of
  every universe the paper's examples use: the SPJ join schema of
  Example 1.1.1 (both the paper-exact instance and a small enumerable
  variant), the inverted SPJ schema of Example 1.2.5, the two-unary
  R/S/T⊕ universe of Example 1.3.6, and the ABCD chain of Examples
  2.1.1 / 2.3.4 / 3.2.4 (paper-exact domains for instance-level checks,
  small domains for exhaustive state-space analyses);
* :mod:`~repro.workloads.generators` -- seeded random schemas,
  instances, and update workloads for the scaling and comparison
  benchmarks (S1-S4).
"""

from repro.workloads.scenarios import (
    SPJScenario,
    TwoUnaryScenario,
    abcd_chain_paper,
    abcd_chain_small,
    abcd_chain_tiny,
    paper_chain_instance,
    spj_inverse_scenario,
    spj_mini_scenario,
    spj_paper_instance,
    spj_scenario,
    two_unary_scenario,
)
from repro.workloads.generators import (
    random_chain_states,
    random_two_unary_states,
    random_update_workload,
)

__all__ = [
    "SPJScenario",
    "TwoUnaryScenario",
    "abcd_chain_paper",
    "abcd_chain_small",
    "abcd_chain_tiny",
    "paper_chain_instance",
    "random_chain_states",
    "random_two_unary_states",
    "random_update_workload",
    "spj_inverse_scenario",
    "spj_mini_scenario",
    "spj_paper_instance",
    "spj_scenario",
    "two_unary_scenario",
]
