"""Seeded random workload generators for the scaling benchmarks.

All generators take an explicit ``seed`` and use a private
``random.Random`` so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.views.view import View
from repro.decomposition.chain import ChainSchema


def random_chain_states(
    chain: ChainSchema, count: int, seed: int = 0
) -> Tuple[DatabaseInstance, ...]:
    """Random legal states of a chain schema (uniform over edge sets)."""
    rng = random.Random(seed)
    states = []
    for _ in range(count):
        edges = []
        for edge in range(chain.edge_count):
            pairs = chain.edge_pairs(edge)
            edges.append(
                frozenset(p for p in pairs if rng.random() < 0.5)
            )
        states.append(chain.state_from_edges(edges))
    return tuple(states)


def random_two_unary_states(
    domain: Sequence[str], count: int, seed: int = 0
) -> Tuple[DatabaseInstance, ...]:
    """Random states of the two-unary-relation schema of Example 1.3.6."""
    rng = random.Random(seed)
    states = []
    for _ in range(count):
        r_rows = {(x,) for x in domain if rng.random() < 0.5}
        s_rows = {(x,) for x in domain if rng.random() < 0.5}
        states.append(DatabaseInstance({"R": r_rows, "S": s_rows}))
    return tuple(states)


def random_update_workload(
    view: View,
    space: StateSpace,
    count: int,
    seed: int = 0,
) -> Tuple[Tuple[DatabaseInstance, DatabaseInstance], ...]:
    """Random (base state, target view state) update requests.

    Targets are drawn from the view's image, so every request is
    solvable in principle (the paper's surjectivity assumption); whether
    a given *strategy* accepts it is exactly what the comparison
    benchmarks measure.
    """
    rng = random.Random(seed)
    states = space.states
    targets = view.image_states(space)
    workload = []
    for _ in range(count):
        workload.append(
            (states[rng.randrange(len(states))], targets[rng.randrange(len(targets))])
        )
    return tuple(workload)


def random_subsets(
    items: Sequence, count: int, seed: int = 0, probability: float = 0.5
) -> List[frozenset]:
    """Random subsets of a ground sequence (helper for property tests)."""
    rng = random.Random(seed)
    return [
        frozenset(x for x in items if rng.random() < probability)
        for _ in range(count)
    ]
