"""The paper's example universes, built faithfully and executably.

Every example in the paper gets a builder here; integration tests and
the experiment harness consume these rather than re-constructing
instances ad hoc.  Where the paper's domains make exhaustive state
enumeration impractical (Example 1.1.1 uses 3-4 values per attribute),
a *small* variant with 2-value domains is provided alongside the
*paper-exact* instance; all the phenomena (side effects, extraneous
updates, missing minimal solutions, non-functoriality, ...) are
domain-size independent and reproduce in the small variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.engine import current_engine
from repro.relational.constraints import JoinDependency
from repro.relational.enumeration import StateSpace
from repro.relational.instances import DatabaseInstance
from repro.relational.queries import (
    Difference,
    NaturalJoin,
    Project,
    RelationRef,
    Union,
)
from repro.relational.schema import RelationSchema, Schema
from repro.typealgebra.assignment import TypeAssignment
from repro.views.mappings import QueryMapping
from repro.views.view import View
from repro.decomposition.chain import ChainSchema


# ---------------------------------------------------------------------------
# Example 1.1.1 family: base R_SP, R_PJ; view = join R_SPJ
# ---------------------------------------------------------------------------


@dataclass
class SPJScenario:
    """The supplier-part-job universe of Example 1.1.1.

    ``schema`` has two binary relations and *no constraints whatever*;
    ``join_view`` maps a state to the join ``R_SPJ``.  ``view_schema``
    (when built with the join dependency) carries the implied constraint
    ``⋈[SP, PJ]`` that restores surjectivity (§1.1).
    """

    schema: Schema
    assignment: TypeAssignment
    join_view: View
    view_schema_plain: Schema
    view_schema_with_jd: Schema
    space: Optional[StateSpace] = None

    def view_space_plain(self) -> StateSpace:
        """LDB of the unconstrained view schema (not all are images)."""
        return current_engine().space(self.view_schema_plain, self.assignment)

    def view_space_with_jd(self) -> StateSpace:
        """LDB of the view schema with the implied join dependency."""
        return current_engine().space(self.view_schema_with_jd, self.assignment)


def _spj_build(
    suppliers: Tuple[str, ...],
    parts: Tuple[str, ...],
    jobs: Tuple[str, ...],
    enumerate_space: bool,
) -> SPJScenario:
    schema = Schema(
        name="D_spj",
        relations=(
            RelationSchema("R_SP", ("S", "P")),
            RelationSchema("R_PJ", ("P", "J")),
        ),
    )
    assignment = TypeAssignment.from_names(
        {"S": suppliers, "P": parts, "J": jobs}
    )
    join_query = NaturalJoin(
        RelationRef.of(schema, "R_SP"), RelationRef.of(schema, "R_PJ")
    )
    join_view = View(
        "Γ_SPJ", schema, None, QueryMapping({"R_SPJ": join_query})
    )
    view_relation = RelationSchema("R_SPJ", ("S", "P", "J"))
    view_schema_plain = Schema(name="V_spj", relations=(view_relation,))
    view_schema_with_jd = Schema(
        name="V_spj_jd",
        relations=(view_relation,),
        constraints=(JoinDependency("R_SPJ", (("S", "P"), ("P", "J"))),),
    )
    space = (
        current_engine().space(schema, assignment) if enumerate_space else None
    )
    return SPJScenario(
        schema=schema,
        assignment=assignment,
        join_view=join_view,
        view_schema_plain=view_schema_plain,
        view_schema_with_jd=view_schema_with_jd,
        space=space,
    )


def spj_scenario() -> SPJScenario:
    """Small SPJ universe (2 values per attribute; 256 states)."""
    return _spj_build(("s1", "s2"), ("p1", "p2"), ("j1", "j2"), True)


def spj_mini_scenario() -> SPJScenario:
    """Minimal SPJ universe (1 supplier, 2 parts, 2 jobs; 64 states).

    Large enough to exhibit the non-functoriality of Example 1.2.7 and
    the symmetry failure of Example 1.2.10, small enough for exhaustive
    strategy analyses in unit tests.
    """
    return _spj_build(("s1",), ("p1", "p2"), ("j1", "j2"), True)


def spj_paper_instance() -> Tuple[SPJScenario, DatabaseInstance]:
    """The paper-exact Example 1.1.1 instance, without state enumeration.

    Returns the scenario (paper domains) and the printed base instance:
    R_SP = {(s1,p1), (s1,p2), (s2,p3)},
    R_PJ = {(p1,j1), (p1,j2), (p3,j1), (p4,j3)}.
    """
    scenario = _spj_build(
        ("s1", "s2", "s3"),
        ("p1", "p2", "p3", "p4"),
        ("j1", "j2", "j3", "j4"),
        False,
    )
    instance = DatabaseInstance(
        {
            "R_SP": {("s1", "p1"), ("s1", "p2"), ("s2", "p3")},
            "R_PJ": {
                ("p1", "j1"),
                ("p1", "j2"),
                ("p3", "j1"),
                ("p4", "j3"),
            },
        }
    )
    return scenario, instance


# ---------------------------------------------------------------------------
# Example 1.2.5 family: base R_SPJ with ⋈[SP, PJ]; views = projections
# ---------------------------------------------------------------------------


@dataclass
class SPJInverseScenario:
    """Example 1.2.5: the join schema "turned around"."""

    schema: Schema
    assignment: TypeAssignment
    sp_view: View
    pj_view: View
    space: StateSpace
    #: The paper's initial instance (adapted to the scenario's domains).
    initial: DatabaseInstance


def spj_inverse_scenario() -> SPJInverseScenario:
    """Base ``R_SPJ`` constrained by ``⋈[SP, PJ]``; views π_SP, π_PJ.

    Domains kept small (S: 3, P: 2, J: 2) so the space enumerates; the
    initial instance mirrors the paper's
    {(s1,p1,j1), (s1,p1,j2), (s2,p2,j2)} (with j2 for the third row --
    any row with a distinct part works the same).
    """
    schema = Schema(
        name="D_spj_inv",
        relations=(RelationSchema("R_SPJ", ("S", "P", "J")),),
        constraints=(JoinDependency("R_SPJ", (("S", "P"), ("P", "J"))),),
    )
    assignment = TypeAssignment.from_names(
        {"S": ("s1", "s2", "s3"), "P": ("p1", "p2"), "J": ("j1", "j2")}
    )
    base = RelationRef.of(schema, "R_SPJ")
    sp_view = View(
        "Γ_SP", schema, None, QueryMapping({"R_SP": Project(base, ("S", "P"))})
    )
    pj_view = View(
        "Γ_PJ", schema, None, QueryMapping({"R_PJ": Project(base, ("P", "J"))})
    )
    space = current_engine().space(schema, assignment)
    initial = DatabaseInstance(
        {
            "R_SPJ": {
                ("s1", "p1", "j1"),
                ("s1", "p1", "j2"),
                ("s2", "p2", "j2"),
            }
        }
    )
    return SPJInverseScenario(
        schema=schema,
        assignment=assignment,
        sp_view=sp_view,
        pj_view=pj_view,
        space=space,
        initial=initial,
    )


# ---------------------------------------------------------------------------
# Example 1.3.6 family: two unary relations; complements galore
# ---------------------------------------------------------------------------


@dataclass
class TwoUnaryScenario:
    """Example 1.3.6: R, S unary, no constraints; three mutual complements.

    ``gamma1`` keeps R, ``gamma2`` keeps S, ``gamma3`` computes the
    symmetric difference T.  Any two are complementary, but only the
    first two are strong views.
    """

    schema: Schema
    assignment: TypeAssignment
    gamma1: View
    gamma2: View
    gamma3: View
    space: StateSpace
    #: The paper's example instance: R = {a1, a2}, S = {a2, a3}.
    initial: DatabaseInstance

    def boolean_function_views(self) -> Dict[str, View]:
        """The 16 views ``T_f = {x : f(x in R, x in S)}``.

        A systematic family for complement counting (experiment E7):
        exactly four of them (S, not-S, XOR, XNOR) are join complements
        of ``gamma1``, of which only S is a strong view.
        """
        from repro.views.mappings import FunctionMapping

        views: Dict[str, View] = {}
        universe = sorted(self.assignment.universe, key=repr)

        def make(name: str, truth: Tuple[bool, bool, bool, bool]) -> View:
            # truth = f(0,0), f(0,1), f(1,0), f(1,1)
            def func(instance, assignment, truth=truth):
                rows = set()
                r_rows = {row[0] for row in instance.relation("R")}
                s_rows = {row[0] for row in instance.relation("S")}
                for x in universe:
                    index = 2 * (x in r_rows) + (x in s_rows)
                    if truth[index]:
                        rows.add((x,))
                from repro.relational.instances import DatabaseInstance
                from repro.relational.relations import Relation

                return DatabaseInstance({"T": Relation(rows, 1)})

            return View(
                name,
                self.schema,
                None,
                FunctionMapping(func, {"T": 1}, label=name),
            )

        for code in range(16):
            truth = tuple(bool(code & (1 << i)) for i in range(4))
            views[f"T_f{code:02d}"] = make(f"T_f{code:02d}", truth)
        return views


def two_unary_scenario(domain: Tuple[str, ...] = ("a1", "a2", "a3", "a4")) -> TwoUnaryScenario:
    """Build the Example 1.3.6 universe (default domain of 4 values)."""
    schema = Schema(
        name="D_rs",
        relations=(
            RelationSchema("R", ("A",)),
            RelationSchema("S", ("B",)),
        ),
    )
    assignment = TypeAssignment.from_names({"A": domain, "B": domain})
    r_ref = RelationRef.of(schema, "R")
    s_ref = RelationRef.of(schema, "S")
    gamma1 = View("Γ1", schema, None, QueryMapping({"R": r_ref}))
    gamma2 = View("Γ2", schema, None, QueryMapping({"S": s_ref}))
    symmetric_difference = Union(
        Difference(r_ref, s_ref), Difference(s_ref, r_ref)
    )
    gamma3 = View("Γ3", schema, None, QueryMapping({"T": symmetric_difference}))
    space = current_engine().space(schema, assignment)
    initial = DatabaseInstance(
        {"R": {("a1",), ("a2",)}, "S": {("a2",), ("a3",)}}
    )
    return TwoUnaryScenario(
        schema=schema,
        assignment=assignment,
        gamma1=gamma1,
        gamma2=gamma2,
        gamma3=gamma3,
        space=space,
        initial=initial,
    )


# ---------------------------------------------------------------------------
# Example 2.1.1 family: the ABCD chain
# ---------------------------------------------------------------------------


def abcd_chain_tiny() -> ChainSchema:
    """ABCD chain with singleton domains (8 states) for fast unit tests."""
    return ChainSchema(
        ("A", "B", "C", "D"),
        {"A": ("a1",), "B": ("b1",), "C": ("c1",), "D": ("d1",)},
    )


def abcd_chain_small() -> ChainSchema:
    """ABCD chain with small domains (64 states) for exhaustive analyses.

    The C domain has two values so that the ``Gamma_ABD`` projection of
    Example 3.2.4 genuinely loses information: only ``Γ°BCD`` (and the
    trivial top) is a strong join complement of it, exactly as the paper
    states -- with singleton inner domains everything would degenerate
    to being definable.
    """
    return ChainSchema(
        ("A", "B", "C", "D"),
        {"A": ("a1", "a2"), "B": ("b1",), "C": ("c1", "c2"), "D": ("d1",)},
    )


def abcd_chain_paper() -> ChainSchema:
    """ABCD chain with the paper's Example 2.1.1 domains.

    The state space is astronomically large; use this only for
    instance-level checks (legality of the printed instance, pointwise
    view application), never for enumeration.
    """
    return ChainSchema(
        ("A", "B", "C", "D"),
        {
            "A": ("a1", "a2"),
            "B": ("b1", "b2", "b3"),
            "C": ("c1", "c3", "c4"),
            "D": ("d1", "d4"),
        },
    )


def paper_chain_instance(chain: ChainSchema) -> DatabaseInstance:
    """The exact instance printed in Example 2.1.1.

    Built from its edge sets via the structure theorem; the test suite
    verifies the materialised tuples match the paper's table verbatim.
    """
    return chain.state_from_edges(
        [
            {("a1", "b1"), ("a2", "b2"), ("a2", "b3")},
            {("b1", "c1"), ("b3", "c3")},
            {("c1", "d1"), ("c4", "d4")},
        ]
    )
