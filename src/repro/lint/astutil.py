"""Shared AST helpers for reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

_PARENT = "_reprolint_parent"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def set_parents(tree: ast.AST) -> None:
    """Annotate every node with its parent (idempotent)."""
    if getattr(tree, _PARENT, _PARENT) is None:
        return  # already annotated (root parent is None)
    setattr(tree, _PARENT, None)
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, _PARENT, None)
    while current is not None:
        yield current
        current = getattr(current, _PARENT, None)


def enclosing_function(node: ast.AST) -> Optional[FunctionNode]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: Tuple[str, ...] = ()
    current = node
    while isinstance(current, ast.Attribute):
        parts = (current.attr,) + parts
        current = current.value
    if isinstance(current, ast.Name):
        return ".".join((current.id,) + parts)
    return None


def first_body_line(node: ast.AST) -> int:
    body = getattr(node, "body", None)
    if body:
        return int(body[0].lineno)
    return int(getattr(node, "lineno", 1))


def is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )
