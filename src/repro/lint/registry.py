"""Rule base class and the rule registry.

A rule is a class with a stable ``id`` (``RL001``..), a short ``name``,
a one-line ``summary``, and a ``check(project)`` method yielding raw
:class:`~repro.lint.findings.Finding` objects.  Suppression filtering
is the runner's job, not the rule's: rules report everything they see,
and the runner drops findings covered by an inline
``# reprolint: disable`` at the finding's line.

Rules register themselves with the :func:`register` decorator at import
time; importing :mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.lint.project import Project


class Rule:
    """Base class for reprolint rules."""

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            path=path, line=line, rule=self.id, message=message
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id or not cls.name:
        raise LintError(
            f"rule class {cls.__name__} must set 'id' and 'name'"
        )
    if cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every rule module.
    import repro.lint.rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise LintError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
