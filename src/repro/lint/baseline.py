"""The committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that are accepted as-is.
Policy (see DESIGN.md "Static guarantees"): the committed baseline is
kept **empty** -- every violation is either fixed or carries an inline
``# reprolint: disable`` with a justification, which keeps the reason
next to the code it excuses.  The baseline mechanism exists for
transitions: a new rule can land with its pre-existing findings
grandfathered (``--update-baseline``) and then be burned down, without
ever turning the CI job red in between.

Matching is on ``(rule, path, message)`` -- deliberately line-free, so
unrelated edits that shift a grandfathered finding a few lines do not
resurrect it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

_Key = Tuple[str, str, str]


def _key(rule: str, path: str, message: str) -> _Key:
    return (rule, path, message)


@dataclass
class Baseline:
    path: str
    entries: Set[_Key] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(path=path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            raise LintError(
                f"unreadable baseline file {path!r}: {exc}"
            ) from exc
        if (
            not isinstance(data, dict)
            or not isinstance(data.get("findings"), list)
        ):
            raise LintError(
                f"baseline file {path!r} must be a JSON object with a"
                " 'findings' list"
            )
        entries: Set[_Key] = set()
        for item in data["findings"]:
            try:
                entries.add(
                    _key(item["rule"], item["path"], item["message"])
                )
            except (TypeError, KeyError) as exc:
                raise LintError(
                    f"malformed baseline entry in {path!r}: {item!r}"
                ) from exc
        return cls(path=path, entries=entries)

    def contains(self, finding: Finding) -> bool:
        return (
            _key(finding.rule, finding.path, finding.message)
            in self.entries
        )

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        return [f for f in findings if not self.contains(f)]

    def write(self, findings: Iterable[Finding]) -> None:
        payload = {
            "comment": (
                "reprolint baseline: grandfathered findings. Policy is"
                " to keep this empty -- prefer fixing, or an inline"
                " '# reprolint: disable=RLxxx -- why' at the site."
            ),
            "findings": [
                f.baseline_key()
                for f in sorted(set(findings))
            ],
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
