"""The interprocedural call graph the flow rules walk.

RL001--RL008 are per-file checks; the concurrency rules (RL009--RL012)
need to know what is *reachable*: an ``async def`` in ``serving/`` is
only as loop-safe as everything it transitively calls, and a lock is
only deadlock-free with respect to every acquisition reachable while it
is held.  This module builds one shared, best-effort call graph over a
lint :class:`~repro.lint.project.Project`:

* **per-module symbol tables** -- top-level functions, classes with
  their methods and base names, import bindings (``import m as x``,
  ``from m import n``), module-global type annotations;
* **name/attribute call resolution** -- bare names, ``self.method()``,
  ``self.attr.method()`` through attribute types inferred from
  ``__init__`` assignments and annotations, ``module.func()`` through
  import bindings, and local variables assigned from known
  constructors;
* **dotted-module matching by path suffix** -- ``repro.engine.store``
  resolves to whichever project file's path ends in
  ``repro/engine/store.py``, so resolution works identically on the
  real tree and on fixture trees with short import paths;
* **async/sync coloring and reachability** -- multi-source BFS with
  parent pointers, so rules can render the call chain that makes a
  finding reachable;
* **executor off-load detection** -- a callable passed *by value* into
  ``run_in_executor`` / ``Executor.submit`` / ``threading.Thread
  (target=...)`` gets **no** call edge (it runs on a worker thread,
  not in the caller); instead it is recorded as a *thread entry
  point*.  Forwarders like ``AsyncSession._off_loop`` -- functions that
  pass one of their own parameters into ``run_in_executor`` -- forward
  the exemption to their call sites, which is exactly why the
  off-load at ``src/repro/serving/session.py`` exempts everything
  routed through it.

Everything is a static approximation: resolution that fails silently
produces *no* edge (under-approximation), which the rules accept --
reprolint is a reviewer, not a verifier.  The graph is built once per
:class:`Project` and cached on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.project import Project, SourceFile
from repro.lint.astutil import dotted_name, set_parents

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleTable",
    "get_callgraph",
]

#: Attribute slot the built graph is cached under on the Project.
_CACHE_ATTR = "_reprolint_callgraph"

#: (rel_path, qualified function name) -- the node identity.
FuncKey = Tuple[str, str]

#: Typing wrappers unwrapped when reading a type annotation.
_TYPE_WRAPPERS = frozenset({"Optional", "Final", "ClassVar"})

#: Call names whose *argument* is a callable executed on a worker
#: thread: (canonical-or-attr name, positional index of the callable,
#: keyword name of the callable).
_OFFLOAD_FORMS: Tuple[Tuple[str, int, Optional[str]], ...] = (
    ("run_in_executor", 1, None),
    ("submit", 0, None),
)
_THREAD_CTORS = frozenset(
    {"threading.Thread", "multiprocessing.Process"}
)


def _ann_type(node: Optional[ast.AST]) -> Optional[str]:
    """The bare class name of an annotation (``Optional[X]`` -> X)."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base and base.split(".")[-1] in _TYPE_WRAPPERS:
            return _ann_type(node.slice)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _ann_type(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    dotted = dotted_name(node)
    if dotted:
        return dotted.split(".")[-1]
    return None


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    key: FuncKey
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    file: SourceFile
    qualname: str
    is_async: bool
    cls_name: Optional[str] = None
    #: Local variable name -> inferred class name (last segment).
    local_types: Dict[str, str] = field(default_factory=dict)
    #: Parameter positions forwarded into an executor off-load (so a
    #: call to this function treats those arguments as thread entry
    #: points, not on-loop callees).
    offload_params: Set[int] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.qualname.split(".")[-1]

    def body_nodes(self) -> Iterator[ast.AST]:
        """Nodes of this function's own body, skipping nested defs."""
        stack: List[ast.AST] = list(
            ast.iter_child_nodes(self.node)
        )
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class ClassInfo:
    """One class: methods, base names, inferred attribute types."""

    name: str
    node: ast.ClassDef
    file: SourceFile
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Dotted base-class names as written.
    bases: List[str] = field(default_factory=list)
    #: ``self.attr`` -> inferred class name (last segment).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleTable:
    """The per-file symbol table."""

    file: SourceFile
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Local name -> ("module", dotted) or ("symbol", module, name).
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Module-level variable name -> inferred class name.
    global_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with its source location."""

    caller: FuncKey
    callee: FuncKey
    line: int


@dataclass(frozen=True)
class ThreadEntry:
    """A callable handed to an executor/thread by value."""

    target: FuncKey
    #: Where the hand-off happens.
    site_path: str
    site_line: int


class CallGraph:
    """Symbol tables + call edges + reachability over one project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleTable] = {}
        self.functions: Dict[FuncKey, FunctionInfo] = {}
        self.edges: Dict[FuncKey, List[CallSite]] = {}
        self.thread_entries: List[ThreadEntry] = []
        #: dotted suffix -> sorted rel_paths whose module path ends so.
        self._module_index: Dict[str, List[str]] = {}
        #: class name -> sorted (rel_path, ClassInfo).
        self._class_index: Dict[str, List[Tuple[str, ClassInfo]]] = {}
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        for source in self.project.parsed():
            if source.tree is None:  # parsed() filters; narrow anyway
                continue
            set_parents(source.tree)
            self._index_module_path(source)
            self.modules[source.rel_path] = self._table_for(source)
        for path in sorted(self._module_index):
            self._module_index[path].sort()
        for table in self.modules.values():
            for cls in table.classes.values():
                self._class_index.setdefault(cls.name, []).append(
                    (table.file.rel_path, cls)
                )
        for entries in self._class_index.values():
            entries.sort(key=lambda item: item[0])
        # Two passes: off-load forwarders must be known before edges
        # are drawn, or a call through ``_off_loop`` would edge its
        # callable argument onto the loop.
        for table in self.modules.values():
            for info in self._functions_of(table):
                self._mark_offload_params(table, info)
        for table in self.modules.values():
            for info in self._functions_of(table):
                self._infer_local_types(table, info)
                self._collect_edges(table, info)

    def _index_module_path(self, source: SourceFile) -> None:
        segments = source.rel_path[: -len(".py")].split("/")
        if segments and segments[-1] == "__init__":
            segments = segments[:-1]
        for start in range(len(segments)):
            suffix = ".".join(segments[start:])
            if suffix:
                self._module_index.setdefault(suffix, []).append(
                    source.rel_path
                )

    def _table_for(self, source: SourceFile) -> ModuleTable:
        table = ModuleTable(file=source)
        body = source.tree.body if source.tree is not None else []
        for stmt in body:
            self._scan_import(table, stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._add_function(table, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(table, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                inferred = _ann_type(stmt.annotation)
                if inferred:
                    table.global_types[stmt.target.id] = inferred
            elif isinstance(stmt, ast.Assign):
                inferred = self._ctor_type(table, stmt.value)
                if inferred:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            table.global_types[target.id] = inferred
        return table

    def _scan_import(self, table: ModuleTable, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    table.imports[alias.asname] = ("module", alias.name)
                else:
                    head = alias.name.split(".")[0]
                    table.imports[head] = ("module", head)
        elif isinstance(stmt, ast.ImportFrom):
            module = self._absolute_module(table.file, stmt)
            if module is None:
                return
            for alias in stmt.names:
                local = alias.asname or alias.name
                table.imports[local] = ("symbol", module, alias.name)

    def _absolute_module(
        self, source: SourceFile, stmt: ast.ImportFrom
    ) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        segments = source.rel_path[: -len(".py")].split("/")
        if segments and segments[-1] == "__init__":
            segments = segments[:-1]
        # level=1 is the containing package; each extra level strips
        # one more package segment.
        base = segments[: -stmt.level] if stmt.level <= len(
            segments
        ) else []
        parts = list(base)
        if stmt.module:
            parts.extend(stmt.module.split("."))
        return ".".join(parts) if parts else None

    def _add_function(
        self,
        table: ModuleTable,
        node: ast.AST,
        cls: Optional[ClassInfo],
        prefix: str = "",
    ) -> None:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        qualname = (
            f"{prefix}{node.name}"
            if not cls
            else f"{cls.name}.{prefix}{node.name}"
        )
        info = FunctionInfo(
            key=(table.file.rel_path, qualname),
            node=node,
            file=table.file,
            qualname=qualname,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls_name=cls.name if cls else None,
        )
        self.functions[info.key] = info
        if cls is not None and not prefix:
            cls.methods[node.name] = info
        elif not prefix:
            table.functions[node.name] = info
        # Nested defs become addressable functions of their own (they
        # matter as executor off-load targets).
        for child in node.body:
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._add_function(
                    table,
                    child,
                    cls,
                    prefix=f"{prefix}{node.name}.",
                )

    def _add_class(self, table: ModuleTable, node: ast.ClassDef) -> None:
        cls = ClassInfo(name=node.name, node=node, file=table.file)
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted:
                cls.bases.append(dotted)
        table.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._add_function(table, stmt, cls)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                inferred = _ann_type(stmt.annotation)
                if inferred:
                    cls.attr_types[stmt.target.id] = inferred
        init = cls.methods.get("__init__")
        if init is not None:
            self._infer_attr_types(table, cls, init)

    def _infer_attr_types(
        self, table: ModuleTable, cls: ClassInfo, init: FunctionInfo
    ) -> None:
        params: Dict[str, str] = {}
        args = init.node.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            inferred = _ann_type(arg.annotation)
            if inferred:
                params[arg.arg] = inferred
        for node in init.body_nodes():
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            inferred = _ann_type(annotation)
            if inferred is None and value is not None:
                inferred = self._value_type(table, params, value)
            if inferred and target.attr not in cls.attr_types:
                cls.attr_types[target.attr] = inferred

    def _value_type(
        self,
        table: ModuleTable,
        params: Dict[str, str],
        value: ast.AST,
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            return params.get(value.id) or table.global_types.get(
                value.id
            )
        if isinstance(value, ast.IfExp):
            return self._value_type(
                table, params, value.body
            ) or self._value_type(table, params, value.orelse)
        return self._ctor_type(table, value)

    def _ctor_type(
        self, table: ModuleTable, value: Optional[ast.AST]
    ) -> Optional[str]:
        """Class name when *value* is a ``SomeClass(...)`` call."""
        if not isinstance(value, ast.Call):
            return None
        dotted = dotted_name(value.func)
        if not dotted:
            return None
        last = dotted.split(".")[-1]
        head = dotted.split(".")[0]
        # Only CapWord call targets look like constructors; anything
        # else is a function whose return type we do not chase.
        if not last[:1].isupper():
            return None
        if head in table.imports or head in table.classes:
            return last
        return last if "." not in dotted else None

    # -- type inference inside bodies -----------------------------------------

    def _infer_local_types(
        self, table: ModuleTable, info: FunctionInfo
    ) -> None:
        params: Dict[str, str] = {}
        args = info.node.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            inferred = _ann_type(arg.annotation)
            if inferred:
                params[arg.arg] = inferred
        info.local_types.update(params)
        cls = (
            table.classes.get(info.cls_name) if info.cls_name else None
        )
        for node in info.body_nodes():
            target = None
            value = None
            annotation = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                annotation = node.annotation
            if not isinstance(target, ast.Name):
                continue
            inferred = _ann_type(annotation)
            if inferred is None and value is not None:
                inferred = self._expr_type(table, cls, info, value)
            if inferred:
                info.local_types.setdefault(target.id, inferred)

    def _expr_type(
        self,
        table: ModuleTable,
        cls: Optional[ClassInfo],
        info: FunctionInfo,
        value: ast.AST,
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            return info.local_types.get(
                value.id
            ) or table.global_types.get(value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and cls is not None
        ):
            return cls.attr_types.get(value.attr)
        if isinstance(value, ast.IfExp):
            return self._expr_type(
                table, cls, info, value.body
            ) or self._expr_type(table, cls, info, value.orelse)
        return self._ctor_type(table, value)

    def receiver_type(
        self, info: FunctionInfo, expr: ast.AST
    ) -> Optional[str]:
        """Inferred class name of a call receiver expression."""
        table = self.modules.get(info.file.rel_path)
        if table is None:
            return None
        cls = (
            table.classes.get(info.cls_name) if info.cls_name else None
        )
        return self._expr_type(table, cls, info, expr)

    # -- canonical external names ---------------------------------------------

    def canonical_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """The import-resolved dotted name of a call target.

        ``sleep(...)`` after ``from time import sleep`` canonicalises
        to ``time.sleep``; ``np.array`` after ``import numpy as np``
        to ``numpy.array``; unimported bare names pass through (so
        builtins like ``open`` keep their name).  ``self...`` chains
        return ``None``.
        """
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        return self.canonical_name(info.file, dotted)

    def canonical_name(
        self, source: SourceFile, dotted: str
    ) -> Optional[str]:
        parts = dotted.split(".")
        if parts[0] == "self":
            return None
        table = self.modules.get(source.rel_path)
        if table is None:
            return dotted
        binding = table.imports.get(parts[0])
        if binding is None:
            return dotted
        if binding[0] == "module":
            return ".".join([binding[1]] + parts[1:])
        _, module, symbol = binding
        return ".".join([module, symbol] + parts[1:])

    # -- call resolution ------------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[ModuleTable]:
        """The project file whose module path ends in *dotted*.

        The index is keyed by dotted suffixes of project-relative
        paths, so absolute imports (``repro.resilience.faults``) are
        retried with leading package segments peeled off until a
        suffix matches.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidates = self._module_index.get(".".join(parts[start:]))
            if candidates:
                return self.modules.get(candidates[0])
        return None

    def resolve_class(
        self, table: ModuleTable, name: str
    ) -> Optional[ClassInfo]:
        """A class by (last-segment) name: local, imported, or global."""
        local = table.classes.get(name)
        if local is not None:
            return local
        binding = table.imports.get(name)
        if binding is not None and binding[0] == "symbol":
            target = self.resolve_module(binding[1])
            if target is not None:
                found = target.classes.get(binding[2])
                if found is not None:
                    return found
        indexed = self._class_index.get(name)
        if indexed and len(indexed) == 1:
            return indexed[0][1]
        return None

    def _method_on(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        found = cls.methods.get(method)
        if found is not None or _depth > 4:
            return found
        table = self.modules.get(cls.file.rel_path)
        for base in cls.bases:
            base_cls = (
                self.resolve_class(table, base.split(".")[-1])
                if table is not None
                else None
            )
            if base_cls is not None and base_cls is not cls:
                found = self._method_on(
                    base_cls, method, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def resolve_callable_ref(
        self, info: FunctionInfo, expr: ast.AST
    ) -> Optional[FunctionInfo]:
        """A function *referenced by value* (no call parentheses)."""
        table = self.modules[info.file.rel_path]
        if isinstance(expr, ast.Name):
            # Nested defs of the enclosing function first.
            nested = self.functions.get(
                (info.file.rel_path, f"{info.qualname}.{expr.id}")
            )
            if nested is not None:
                return nested
            if expr.id in table.functions:
                return table.functions[expr.id]
            binding = table.imports.get(expr.id)
            if binding is not None and binding[0] == "symbol":
                target = self.resolve_module(binding[1])
                if target is not None:
                    return target.functions.get(binding[2])
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] == "self" and info.cls_name:
            cls = table.classes.get(info.cls_name)
            if cls is None:
                return None
            if len(parts) == 2:
                return self._method_on(cls, parts[1])
            if len(parts) == 3:
                attr_cls = cls.attr_types.get(parts[1])
                if attr_cls:
                    resolved = self.resolve_class(table, attr_cls)
                    if resolved is not None:
                        return self._method_on(resolved, parts[2])
            return None
        if len(parts) >= 2:
            # ``var.method`` on a typed local/global receiver.
            recv = info.local_types.get(
                parts[0]
            ) or table.global_types.get(parts[0])
            if recv and len(parts) == 2:
                resolved = self.resolve_class(table, recv)
                if resolved is not None:
                    return self._method_on(resolved, parts[1])
            # ``SomeClass.classmethod(...)``.
            if len(parts) == 2 and parts[0][:1].isupper():
                as_class = self.resolve_class(table, parts[0])
                if as_class is not None:
                    return self._method_on(as_class, parts[1])
            # ``module.func`` / ``package.module.func``.
            canonical = self.canonical_name(info.file, dotted)
            if canonical:
                mod_parts = canonical.split(".")
                target = self.resolve_module(
                    ".".join(mod_parts[:-1])
                )
                if target is not None:
                    fn = target.functions.get(mod_parts[-1])
                    if fn is not None:
                        return fn
                    cls2 = target.classes.get(mod_parts[-1])
                    if cls2 is not None:
                        return cls2.methods.get("__init__")
        return None

    def resolve_call(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project function a call resolves to, if any."""
        return self._resolve_call_target(info, call)

    def _resolve_call_target(
        self, info: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        table = self.modules[info.file.rel_path]
        func = call.func
        if isinstance(func, ast.Name):
            cls = self.resolve_class(table, func.id)
            if (
                cls is not None
                and (
                    func.id in table.classes
                    or func.id in table.imports
                )
            ):
                return cls.methods.get("__init__")
        return self.resolve_callable_ref(info, func)

    # -- edges ----------------------------------------------------------------

    def _mark_offload_params(
        self, table: ModuleTable, info: FunctionInfo
    ) -> None:
        args = info.node.args  # type: ignore[attr-defined]
        names = [
            a.arg
            for a in list(args.posonlyargs) + list(args.args)
        ]
        if info.cls_name and names and names[0] == "self":
            names = names[1:]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        positions = {name: i for i, name in enumerate(names)}
        for node in info.body_nodes():
            if not isinstance(node, ast.Call):
                continue
            for ref in self._offloaded_refs(info, node, resolve=False):
                if (
                    isinstance(ref, ast.Name)
                    and ref.id in positions
                ):
                    info.offload_params.add(positions[ref.id])

    def _offloaded_refs(
        self, info: FunctionInfo, call: ast.Call, resolve: bool
    ) -> List[ast.AST]:
        """Callable expressions this call hands to a worker thread."""
        dotted = dotted_name(call.func) or ""
        last = dotted.split(".")[-1]
        refs: List[ast.AST] = []
        for name, index, _ in _OFFLOAD_FORMS:
            if last == name and len(call.args) > index:
                refs.append(call.args[index])
        canonical = self.canonical_call(info, call)
        if canonical in _THREAD_CTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    refs.append(kw.value)
        target = (
            self._resolve_call_target(info, call) if resolve else None
        )
        if target is not None and target.offload_params:
            # A forwarder: its flagged parameter positions map back to
            # this call's arguments.
            for position in sorted(target.offload_params):
                if position < len(call.args):
                    refs.append(call.args[position])
        return refs

    def _collect_edges(
        self, table: ModuleTable, info: FunctionInfo
    ) -> None:
        edges = self.edges.setdefault(info.key, [])
        offloaded: Set[int] = set()
        calls = [
            node
            for node in info.body_nodes()
            if isinstance(node, ast.Call)
        ]
        calls.sort(
            key=lambda c: (c.lineno, c.col_offset)
        )
        for call in calls:
            for ref in self._offloaded_refs(info, call, resolve=True):
                offloaded.add(id(ref))
                resolved = self.resolve_callable_ref(info, ref)
                if resolved is not None:
                    self.thread_entries.append(
                        ThreadEntry(
                            target=resolved.key,
                            site_path=info.file.rel_path,
                            site_line=call.lineno,
                        )
                    )
        for call in calls:
            if id(call.func) in offloaded:
                continue
            target = self._resolve_call_target(info, call)
            if target is not None and id(call.func) not in offloaded:
                edges.append(
                    CallSite(
                        caller=info.key,
                        callee=target.key,
                        line=call.lineno,
                    )
                )

    # -- queries --------------------------------------------------------------

    def _functions_of(
        self, table: ModuleTable
    ) -> Iterator[FunctionInfo]:
        for key in sorted(self.functions):
            if key[0] == table.file.rel_path:
                yield self.functions[key]

    def reachable(
        self, roots: Sequence[FuncKey]
    ) -> Dict[FuncKey, Optional[CallSite]]:
        """Multi-source BFS; value is the edge that discovered the key
        (``None`` for roots).  Deterministic: roots are sorted, edges
        kept in source order.
        """
        parents: Dict[FuncKey, Optional[CallSite]] = {}
        queue: List[FuncKey] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            for site in self.edges.get(current, ()):
                if site.callee not in parents:
                    parents[site.callee] = site
                    queue.append(site.callee)
        return parents

    def call_chain(
        self,
        parents: Dict[FuncKey, Optional[CallSite]],
        key: FuncKey,
    ) -> List[FuncKey]:
        """Root-to-*key* chain through the BFS parent map."""
        chain: List[FuncKey] = [key]
        seen = {key}
        while True:
            site = parents.get(chain[0])
            if site is None or site.caller in seen:
                return chain
            chain.insert(0, site.caller)
            seen.add(site.caller)

    def render_chain(self, chain: Sequence[FuncKey]) -> str:
        return " -> ".join(qualname for _, qualname in chain)

    def async_functions_under(
        self, *parts: str
    ) -> List[FuncKey]:
        """Async defs in files under the given path segments."""
        return [
            key
            for key, info in sorted(self.functions.items())
            if info.is_async and info.file.is_under(*parts)
        ]

    def thread_entry_keys(self) -> List[FuncKey]:
        return sorted({entry.target for entry in self.thread_entries})


def get_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on it."""
    cached = getattr(project, _CACHE_ATTR, None)
    if isinstance(cached, CallGraph):
        return cached
    graph = CallGraph(project)
    setattr(project, _CACHE_ATTR, graph)
    return graph
