"""Inline ``# reprolint:`` directives.

Two directive forms are recognised, extracted with :mod:`tokenize` so
string literals containing the marker text are never misread:

``# reprolint: disable=RL001[,RL002] -- justification``
    Suppresses the named rules.  On a code line, it applies to that
    line; on a line of its own, it applies to the *next* line (so long
    suppressions can sit above the statement they justify).  The
    ``-- justification`` tail is required by policy for RL008 and
    strongly encouraged everywhere; the CLI's ``--strict-suppressions``
    flag turns a missing justification into a finding.

``# reprolint: holds-lock``
    Placed on (or immediately above) a ``def`` line, marks the method
    as one that is only ever called with the instance lock held.
    RL003 treats the method body as locked and checks the *callers*
    instead.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*))?$"
)
_HOLDS_LOCK_RE = re.compile(r"#\s*reprolint:\s*holds-lock\b")


@dataclass(frozen=True)
class Suppression:
    line: int
    rules: FrozenSet[str]
    justification: str
    #: True when the comment had no code before it on its line, in
    #: which case it governs the next code line as well.
    standalone: bool
    #: The next non-blank, non-comment line after a standalone
    #: suppression (comment blocks may continue over several lines);
    #: equal to ``line`` for trailing comments.
    target_line: int = 0


@dataclass
class FileSuppressions:
    suppressions: List[Suppression] = field(default_factory=list)
    holds_lock_lines: Set[int] = field(default_factory=set)
    _by_line: Dict[int, List[Suppression]] = field(default_factory=dict)

    def _index(self) -> Dict[int, List[Suppression]]:
        if not self._by_line and self.suppressions:
            for sup in self.suppressions:
                self._by_line.setdefault(sup.line, []).append(sup)
                if sup.standalone and sup.target_line:
                    self._by_line.setdefault(
                        sup.target_line, []
                    ).append(sup)
        return self._by_line

    def is_suppressed(self, rule: str, line: int) -> bool:
        return any(
            rule in sup.rules for sup in self._index().get(line, ())
        )

    def unjustified(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.justification]


def scan_suppressions(text: str) -> FileSuppressions:
    result = FileSuppressions()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(text).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files already get an RL000 finding from the
        # project loader; there is nothing to suppress in them.
        return result
    lines = text.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line_no, col = tok.start
        standalone = tok.line[:col].strip() == ""
        match = _DISABLE_RE.search(tok.string)
        if match:
            rules = frozenset(
                r.strip()
                for r in match.group("rules").split(",")
                if r.strip()
            )
            result.suppressions.append(
                Suppression(
                    line=line_no,
                    rules=rules,
                    justification=(match.group("why") or "").strip(),
                    standalone=standalone,
                    target_line=(
                        _next_code_line(lines, line_no)
                        if standalone
                        else line_no
                    ),
                )
            )
        elif _HOLDS_LOCK_RE.search(tok.string):
            result.holds_lock_lines.add(line_no)
            if standalone:
                result.holds_lock_lines.add(
                    _next_code_line(lines, line_no)
                )
    return result


def _next_code_line(lines: List[str], after: int) -> int:
    """First non-blank, non-comment line after 1-based line ``after``.

    Lets a standalone directive start a multi-line comment block: the
    continuation comment lines are skipped and the directive lands on
    the statement below.
    """
    for idx in range(after, len(lines)):
        stripped = lines[idx].strip()
        if stripped and not stripped.startswith("#"):
            return idx + 1
    return after


def holds_lock_marked(
    sups: FileSuppressions, def_line: int, first_body_line: int
) -> bool:
    """True when a holds-lock marker sits in the def header region.

    The marker may be on the ``def`` line itself, on the line above
    it, or on any header line up to (but not past) the first body
    statement -- which covers multi-line signatures.
    """
    lines: Tuple[int, ...] = tuple(
        range(def_line, max(def_line + 1, first_body_line))
    )
    return any(ln in sups.holds_lock_lines for ln in lines)
