"""Entry point for ``python -m repro.lint``."""

from __future__ import annotations

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an
        # error worth a traceback. 2 mirrors a usage-level failure.
        sys.stderr.close()
        sys.exit(2)
