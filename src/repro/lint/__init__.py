"""``reprolint``: AST-based invariant checks for the repro stack.

Four PRs of growth piled up invariants that were enforced only by
docstrings and reviewer memory -- "raise typed ``ReproError``\\ s only",
"hot loops must tick the guard", "store state only under
``self._lock``", "fingerprints must be deterministic", "fault points
and ``FAULT_POINTS`` must stay in sync", "every ``REPRO_*`` knob is
documented".  This package turns each of those into a machine-checkable
rule over the source tree, in the same spirit in which the library
itself turns the paper's well-behavedness conditions (admissibility,
strong complementation) into executable analyses.

Everything is standard library: sources are parsed with :mod:`ast`,
comments with :mod:`tokenize`.  The pieces:

* :mod:`repro.lint.findings` -- the :class:`Finding` record every rule
  emits (``rule``, ``path``, ``line``, ``message``);
* :mod:`repro.lint.project` -- the parsed source tree rules run over;
* :mod:`repro.lint.registry` -- the rule registry (``RL001``..) and the
  :class:`Rule` base class;
* :mod:`repro.lint.rules` -- one module per rule;
* :mod:`repro.lint.suppress` -- ``# reprolint: disable=RL00x`` inline
  suppressions (with a ``-- justification`` tail) and the
  ``# reprolint: holds-lock`` method marker;
* :mod:`repro.lint.baseline` -- the committed grandfather file for
  findings accepted as-is;
* :mod:`repro.lint.cli` -- ``python -m repro.lint`` (text/JSON output,
  rule selection, baseline handling; exit 0 clean / 1 findings).

Run it locally with::

    PYTHONPATH=src python -m repro.lint src/repro

CI runs the same command (JSON format) as the blocking
``lint-invariants`` job.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, all_rules, get_rule, rule_ids
from repro.lint.runner import run_rules, select_rules

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "get_rule",
    "rule_ids",
    "run_rules",
    "select_rules",
]
