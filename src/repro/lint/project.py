"""The parsed source tree a lint run operates over.

A :class:`Project` owns:

* the list of parsed :class:`SourceFile` objects (AST + raw source +
  inline suppressions),
* the project *root* (common ancestor of the input paths) that
  findings are reported relative to,
* the nearest ``README.md`` above the root, which registry rules
  (RL006) read the knob table from.

Files that fail to parse produce an ``RL000 parse-error`` finding
rather than aborting the run, so one broken file cannot hide findings
in the rest of the tree.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.lint.suppress import FileSuppressions, scan_suppressions

#: Directory names never descended into when collecting sources.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build"}
)


@dataclass
class SourceFile:
    """One parsed Python source file."""

    #: Path relative to the project root, with ``/`` separators.
    rel_path: str
    #: Absolute path on disk.
    abs_path: str
    #: Raw source text.
    text: str
    #: Parsed module (``None`` when the file failed to parse).
    tree: Optional[ast.Module]
    #: Inline ``# reprolint:`` directives found in the file.
    suppressions: FileSuppressions

    @property
    def name(self) -> str:
        return os.path.basename(self.rel_path)

    def is_under(self, *parts: str) -> bool:
        """True when some path segment sequence matches ``parts``.

        ``f.is_under("kernel")`` is true for ``src/repro/kernel/x.py``
        and for a fixture tree's ``kernel/x.py`` alike -- rules use
        segment matching, not absolute prefixes, so they work on both
        the real tree and test fixtures.
        """
        segments = self.rel_path.split("/")[:-1]
        n = len(parts)
        return any(
            tuple(segments[i : i + n]) == tuple(parts)
            for i in range(len(segments) - n + 1)
        )


@dataclass
class Project:
    root: str
    files: List[SourceFile]
    #: Findings produced during loading (parse errors).
    load_findings: List[Finding] = field(default_factory=list)
    #: Absolute path of the README used for registry rules, if any.
    readme_path: Optional[str] = None

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "Project":
        if not paths:
            raise LintError("no input paths given to reprolint")
        abs_paths = [os.path.abspath(p) for p in paths]
        for p in abs_paths:
            if not os.path.exists(p):
                raise LintError(f"no such file or directory: {p}")
        root = _common_root(abs_paths)
        py_files = sorted(_collect(abs_paths))
        files: List[SourceFile] = []
        load_findings: List[Finding] = []
        for abs_path in py_files:
            rel = os.path.relpath(abs_path, root).replace(os.sep, "/")
            with open(abs_path, "r", encoding="utf-8") as fh:
                text = fh.read()
            tree: Optional[ast.Module]
            try:
                tree = ast.parse(text, filename=rel)
            except SyntaxError as exc:
                tree = None
                load_findings.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        rule="RL000",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
            files.append(
                SourceFile(
                    rel_path=rel,
                    abs_path=abs_path,
                    text=text,
                    tree=tree,
                    suppressions=scan_suppressions(text),
                )
            )
        return cls(
            root=root,
            files=files,
            load_findings=load_findings,
            readme_path=_find_readme(root),
        )

    def parsed(self) -> Iterable[SourceFile]:
        return (f for f in self.files if f.tree is not None)

    def readme_text(self) -> Optional[str]:
        if self.readme_path is None:
            return None
        with open(self.readme_path, "r", encoding="utf-8") as fh:
            return fh.read()


def _collect(paths: Iterable[str]) -> Iterable[str]:
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS
            )
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                full = os.path.join(dirpath, fname)
                if full not in seen:
                    seen.add(full)
                    yield full


def _common_root(abs_paths: Sequence[str]) -> str:
    dirs: Tuple[str, ...] = tuple(
        p if os.path.isdir(p) else os.path.dirname(p) for p in abs_paths
    )
    return os.path.commonpath(dirs)


def _find_readme(root: str) -> Optional[str]:
    """Nearest README.md at or above ``root``.

    Linting ``src/repro`` in the real repo must find the top-level
    README (the knob table lives there); a fixture tree carries its
    own README at its root.  Walking upward serves both.
    """
    current = root
    while True:
        candidate = os.path.join(current, "README.md")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent
