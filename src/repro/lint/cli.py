"""``python -m repro.lint`` command line.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, all_rules, rule_ids
from repro.lint.runner import RuleStats, run_rules, select_rules

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: AST-based invariant checks for the repro"
            " source tree"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "JSON baseline of grandfathered findings; matched"
            " findings are not reported"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the --baseline file to contain exactly the"
            " current findings, then exit 0"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RLxxx",
        help=(
            "run only this rule (repeatable; accepts comma-separated"
            " lists)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        dest="rule",
        metavar="RLxxx[,RLyyy]",
        help="alias for --rule (familiar flake8/ruff spelling)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print a per-rule timing and finding-count summary to"
            " stderr (stdout output is unchanged)"
        ),
    )
    parser.add_argument(
        "--strict-suppressions",
        action="store_true",
        help=(
            "report any '# reprolint: disable' comment that lacks a"
            " ' -- justification' tail"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _wanted_rules(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    wanted: List[str] = []
    for value in values:
        wanted.extend(v.strip() for v in value.split(",") if v.strip())
    return wanted


def _render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(
        f"reprolint: {len(findings)} finding(s)"
        if findings
        else "reprolint: clean"
    )
    return "\n".join(lines)


def _render_json(
    findings: Sequence[Finding], rules: Sequence[str]
) -> str:
    counts: dict = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "findings": [f.to_json() for f in findings],
            "counts": counts,
            "total": len(findings),
            "rules_run": list(rules),
        },
        indent=2,
        sort_keys=True,
    )


def _render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> str:
    """SARIF 2.1.0, the shape GitHub code scanning ingests.

    Only additive relative to text/JSON: those formats stay
    byte-stable; SARIF is a third renderer, not a replacement.
    """
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/reprolint"
                        ),
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.summary
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path
                                    },
                                    "region": {
                                        "startLine": max(
                                            1, finding.line
                                        )
                                    },
                                }
                            }
                        ],
                    }
                    for finding in findings
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _print_stats(stats: Sequence[RuleStats]) -> None:
    total = sum(s.elapsed_s for s in stats)
    print("reprolint --stats (rule, findings, seconds):", file=sys.stderr)
    for entry in sorted(stats, key=lambda s: s.rule):
        print(
            f"  {entry.rule}  {entry.findings:4d}"
            f"  {entry.elapsed_s:8.4f}",
            file=sys.stderr,
        )
    print(f"  total          {total:8.4f}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    opts = parser.parse_args(argv)
    if opts.list_rules:
        for rule in all_rules():
            print(f"{rule.id} {rule.name}: {rule.summary}")
        return EXIT_CLEAN
    try:
        rules = select_rules(all_rules(), _wanted_rules(opts.rule))
        if opts.rule and not rules:
            raise LintError(
                f"no matching rules among {', '.join(rule_ids())}"
            )
        project = Project.from_paths(opts.paths)
        stats: Optional[List[RuleStats]] = [] if opts.stats else None
        findings = run_rules(
            project,
            rules,
            strict_suppressions=opts.strict_suppressions,
            stats=stats,
        )
        if opts.baseline:
            baseline = Baseline.load(opts.baseline)
            if opts.update_baseline:
                baseline.write(findings)
                print(
                    f"reprolint: baseline {opts.baseline} updated with"
                    f" {len(findings)} finding(s)"
                )
                return EXIT_CLEAN
            findings = baseline.filter(findings)
        elif opts.update_baseline:
            raise LintError("--update-baseline requires --baseline=FILE")
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if stats is not None:
        _print_stats(stats)
    if opts.format == "json":
        print(_render_json(findings, [r.id for r in rules]))
    elif opts.format == "sarif":
        print(_render_sarif(findings, rules))
    else:
        print(_render_text(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN
