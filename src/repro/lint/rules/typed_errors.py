"""RL001: raise typed ``ReproError`` subclasses; no bare ``assert``.

The library's contract is "answer correctly or refuse *visibly* with a
typed error" (see :mod:`repro.errors`).  Two syntactic habits defeat
it:

* raising stdlib exceptions (``ValueError``, ``TypeError``, ...) from
  library code, which callers catching ``ReproError`` never see;
* ``assert`` used for runtime validation, which silently disappears
  under ``python -O``.

The allowed set is computed from the scanned tree itself: every class
transitively derived from ``ReproError`` (so new error types need no
linter change), plus ``NotImplementedError`` (abstract-method idiom).
``errors.py`` is exempt (it may wrap/translate anything), as are
``AttributeError`` inside ``__getattr__``/``__getattribute__`` and
``SystemExit`` inside a ``__main__.py``.  Deliberate stdlib raises
(argument validation asserted by tests, fault injection) carry inline
``# reprolint: disable=RL001 -- why`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.common import (
    dotted_name,
    enclosing_function,
    set_parents,
)

_GETATTR_METHODS = frozenset({"__getattr__", "__getattribute__"})


def _allowed_exceptions(project: Project) -> Set[str]:
    bases_of: Dict[str, Set[str]] = {}
    for source in project.parsed():
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = bases_of.setdefault(node.name, set())
            for base in node.bases:
                dotted = dotted_name(base)
                if dotted:
                    bases.add(dotted.rsplit(".", 1)[-1])
    allowed = {"ReproError", "NotImplementedError"}
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name not in allowed and bases & allowed:
                allowed.add(name)
                changed = True
    return allowed


@register
class TypedErrorsRule(Rule):
    id = "RL001"
    name = "typed-errors"
    summary = (
        "raise only ReproError subclasses outside errors.py; no bare"
        " assert statements"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        allowed = _allowed_exceptions(project)
        for source in project.parsed():
            if source.name == "errors.py":
                continue
            tree = source.tree
            if tree is None:
                continue
            set_parents(tree)
            for node in ast.walk(tree):
                if isinstance(node, ast.Assert):
                    yield self.finding(
                        source.rel_path,
                        node.lineno,
                        "bare 'assert' used for runtime validation"
                        " (vanishes under -O); raise a typed"
                        " ReproError instead",
                    )
                elif isinstance(node, ast.Raise):
                    yield from self._check_raise(source, node, allowed)

    def _check_raise(
        self, source: SourceFile, node: ast.Raise, allowed: Set[str]
    ) -> Iterable[Finding]:
        if node.exc is None:
            return  # bare re-raise inside an except block
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        dotted = dotted_name(target)
        name = dotted.rsplit(".", 1)[-1] if dotted else None
        if name is not None and name in allowed:
            return
        if name == "AttributeError":
            func = enclosing_function(node)
            if func is not None and func.name in _GETATTR_METHODS:
                return
        if name == "SystemExit" and source.name == "__main__.py":
            return
        shown = name if name is not None else "<dynamic expression>"
        yield self.finding(
            source.rel_path,
            node.lineno,
            f"raise of non-ReproError exception {shown!r}"
            " (typed errors only; see repro.errors)",
        )
