"""RL011: resources in the serving stack are released on all paths.

Scope: files under ``serving/``, ``artifactd/``, ``backends/``, and
``resilience/`` -- the long-lived tiers where a leaked socket, SQLite
connection, executor, or non-daemon thread accumulates across requests
until the process hits a descriptor limit mid-traffic.

For every tracked acquisition (``socket.socket`` /
``create_connection``, ``sqlite3.connect``, thread-pool executors,
``http.client.HTTPConnection``, HTTP servers, ``tempfile`` handles,
``os.open``, non-daemon ``threading.Thread``):

* ``with``-managed acquisitions are fine by construction;
* assignment to ``self.attr`` is accepted iff the class exposes a
  release method (``close``/``stop``/``shutdown``/``aclose``/
  ``__exit__``/``__del__``) -- ownership moved to the object's
  lifecycle;
* a local variable must reach a release (``v.close()`` and friends,
  ``os.close(v)``, or ``v`` passed to a helper whose name contains
  ``close``/``stop``/``shutdown``/``release``) or a transfer
  (``self.x = v``, ``return v``, ``yield v``, appended/registered
  into a container) on the fall-through path, **and** every call that
  can raise between the acquisition and the first release must be
  covered by a ``try`` whose ``finally`` (or an ``except`` handler)
  releases the variable.  Error-path bookkeeping inside ``except`` /
  ``finally`` blocks is not itself re-analysed.

Daemon threads are exempt (they die with the process by design);
non-daemon threads count as resources and must be joined or handed
off.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.lint.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    get_callgraph,
)
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register
from repro.lint.astutil import ancestors

_SCOPES = (
    ("serving",),
    ("artifactd",),
    ("backends",),
    ("resilience",),
)

#: Canonical constructor names that hand back an owned resource.
RESOURCE_CALLS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "sqlite3.connect",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
        "http.server.HTTPServer",
        "http.server.ThreadingHTTPServer",
        "socketserver.TCPServer",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "tempfile.TemporaryDirectory",
        "os.open",
        "threading.Thread",
        "multiprocessing.Process",
    }
)

_RELEASE_METHODS = frozenset(
    {
        "close",
        "aclose",
        "stop",
        "shutdown",
        "join",
        "release",
        "terminate",
        "cleanup",
        "server_close",
        "__exit__",
    }
)
_CLASS_RELEASE_METHODS = frozenset(
    {"close", "aclose", "stop", "shutdown", "__exit__", "__del__"}
)
_RELEASE_HELPER_WORDS = ("close", "stop", "shutdown", "release")
_TRANSFER_METHODS = frozenset(
    {"append", "add", "put", "register", "setdefault", "push"}
)


def _kw_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _in_scope(path_file: "ast.AST", source) -> bool:
    return any(source.is_under(*parts) for parts in _SCOPES)


def _is_resource_call(
    graph: CallGraph, info: FunctionInfo, call: ast.Call
) -> Optional[str]:
    canonical = graph.canonical_call(info, call)
    if canonical not in RESOURCE_CALLS:
        return None
    if canonical in (
        "threading.Thread",
        "multiprocessing.Process",
    ) and _kw_true(call, "daemon"):
        return None  # daemon threads die with the process by design
    return canonical


def _releases(node: ast.AST, var: str) -> bool:
    """True when *node* (a call) releases the variable *var*."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    # v.close() / v.stop() / ...
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _RELEASE_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id == var
    ):
        return True
    # os.close(v) / helper_close(v) / self._close(v)
    takes_var = any(
        isinstance(arg, ast.Name) and arg.id == var
        for arg in node.args
    )
    if not takes_var:
        return False
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else ""
    ).lower()
    return any(word in name for word in _RELEASE_HELPER_WORDS)


def _transfers(node: ast.AST, var: str) -> bool:
    """True when *node* hands ownership of *var* somewhere durable."""
    if isinstance(node, ast.Assign):
        if isinstance(node.value, ast.Name) and node.value.id == var:
            return any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
    if isinstance(node, (ast.Return, ast.Yield)):
        value = node.value
        if isinstance(value, ast.Name) and value.id == var:
            return True
        if isinstance(value, (ast.Tuple, ast.List)):
            return any(
                isinstance(e, ast.Name) and e.id == var
                for e in value.elts
            )
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _TRANSFER_METHODS
        ):
            return any(
                isinstance(arg, ast.Name) and arg.id == var
                for arg in node.args
            )
    return False


def _body_contains_release(body: Iterable[ast.stmt], var: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if _releases(node, var):
                return True
    return False


def _covered(node: ast.AST, var: str) -> bool:
    """A raise at *node* still releases *var* (finally/handler)."""
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if isinstance(anc, ast.Try):
            if _body_contains_release(anc.finalbody, var):
                return True
            for handler in anc.handlers:
                if _body_contains_release(handler.body, var):
                    return True
    return False


def _on_error_path(node: ast.AST) -> bool:
    """Inside an ``except`` handler or ``finally`` block."""
    child = node
    for anc in ancestors(node):
        if isinstance(anc, ast.ExceptHandler):
            return True
        if isinstance(anc, ast.Try) and any(
            child is s or _contains(s, child) for s in anc.finalbody
        ):
            return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        child = anc
    return False


def _contains(tree: ast.AST, node: ast.AST) -> bool:
    return any(candidate is node for candidate in ast.walk(tree))


class _Acquired:
    """One tracked ``v = <resource ctor>()`` site in a function."""

    def __init__(
        self, var: str, canonical: str, node: ast.Assign
    ) -> None:
        self.var = var
        self.canonical = canonical
        self.node = node


def _acquisition_sites(
    graph: CallGraph, info: FunctionInfo
) -> Iterator[Tuple[ast.AST, str, Optional[str]]]:
    """(node, canonical, var-or-None) for tracked ctor calls."""
    for node in info.body_nodes():
        if not isinstance(node, ast.Call):
            continue
        canonical = _is_resource_call(graph, info, node)
        if canonical is None:
            continue
        holder: Optional[ast.AST] = None
        for anc in ancestors(node):
            if isinstance(anc, (ast.stmt, ast.withitem)):
                holder = anc
                break
        if isinstance(holder, ast.withitem):
            continue  # with-managed: released by construction
        var: Optional[str] = None
        if (
            isinstance(holder, ast.Assign)
            and len(holder.targets) == 1
            and holder.value is node
        ):
            target = holder.targets[0]
            if isinstance(target, ast.Name):
                var = target.id
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield node, canonical, f"self.{target.attr}"
                continue
        elif isinstance(holder, ast.AnnAssign) and holder.value is node:
            if isinstance(holder.target, ast.Name):
                var = holder.target.id
        yield node, canonical, var


@register
class ResourceLifecycleRule(Rule):
    id = "RL011"
    name = "resource-lifecycle"
    summary = (
        "sockets/connections/executors/threads opened in the serving"
        " stack must be released on all paths (with/try-finally)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        for source in project.parsed():
            if not any(source.is_under(*p) for p in _SCOPES):
                continue
            table = graph.modules.get(source.rel_path)
            if table is None:
                continue
            for key in sorted(graph.functions):
                if key[0] != source.rel_path:
                    continue
                info = graph.functions[key]
                yield from self._check_function(graph, table, info)

    def _check_function(
        self, graph: CallGraph, table, info: FunctionInfo
    ) -> Iterator[Finding]:
        for node, canonical, var in _acquisition_sites(graph, info):
            if var is None:
                # Result discarded or stored in an untracked shape:
                # a leak by construction for everything but Thread
                # chaining (Thread(...).start() is untracked-daemon
                # only when daemon=True, handled above).
                yield self.finding(
                    info.file.rel_path,
                    node.lineno,
                    f"resource from {canonical}() is neither bound"
                    " nor context-managed; it can never be released",
                )
                continue
            if var.startswith("self."):
                yield from self._check_self_attr(
                    graph, table, info, node, canonical, var
                )
                continue
            yield from self._check_local(
                graph, info, node, canonical, var
            )

    def _check_self_attr(
        self,
        graph: CallGraph,
        table,
        info: FunctionInfo,
        node: ast.AST,
        canonical: str,
        var: str,
    ) -> Iterator[Finding]:
        cls: Optional[ClassInfo] = (
            table.classes.get(info.cls_name) if info.cls_name else None
        )
        if cls is not None and any(
            m in cls.methods for m in _CLASS_RELEASE_METHODS
        ):
            return
        yield self.finding(
            info.file.rel_path,
            node.lineno,
            f"resource from {canonical}() is stored on {var} but"
            f" {info.cls_name or 'the class'} has no release method"
            " (close/stop/shutdown/__exit__/__del__)",
        )

    def _check_local(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        node: ast.AST,
        canonical: str,
        var: str,
    ) -> Iterator[Finding]:
        releases: List[ast.AST] = []
        transfers: List[ast.AST] = []
        for other in info.body_nodes():
            if _releases(other, var):
                releases.append(other)
            elif _transfers(other, var):
                transfers.append(other)
        if not releases and not transfers:
            yield self.finding(
                info.file.rel_path,
                node.lineno,
                f"resource {var!r} from {canonical}() is never"
                " released or handed off in this function; use"
                " 'with', try/finally, or store it somewhere with a"
                " lifecycle",
            )
            return
        first_out = min(
            (n.lineno for n in releases + transfers),
            default=node.lineno,
        )
        # Every fallible call strictly between the acquisition and the
        # first release/transfer must be covered by a finally/handler
        # that releases the variable.
        for risky in info.body_nodes():
            if not isinstance(risky, (ast.Call, ast.Raise)):
                continue
            if risky is node or _contains(node, risky):
                continue  # argument of the acquisition call itself
            line = getattr(risky, "lineno", 0)
            if line <= node.lineno or line >= first_out:
                continue
            if _releases(risky, var) or _transfers(risky, var):
                continue
            if _on_error_path(risky):
                continue
            if _covered(risky, var):
                continue
            yield self.finding(
                info.file.rel_path,
                node.lineno,
                f"resource {var!r} from {canonical}() leaks if line"
                f" {line} raises before the release at line"
                f" {first_out}; wrap the span in try/finally",
            )
            return
