"""RL004: no nondeterminism reachable from fingerprint code.

PR 4 shipped a real bug where a pickled object's ``__hash__`` leaked
process-random state into a cache fingerprint, silently splitting the
cache across processes.  This rule bans the reachable sources of
per-process nondeterminism from fingerprint code paths:

* builtin ``id()`` and ``hash()``;
* ``time.*``, ``random.*``, ``uuid.*`` calls (and the same functions
  pulled in via ``from time import ...``);
* ``os.urandom``, ``datetime.now``/``utcnow``/``today``.

Roots are every function defined in a module named ``fingerprint.py``
plus every function named ``fingerprint`` anywhere; reachability is a
same-module closure over called names (helper functions a root calls
are checked too).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.common import dotted_name

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)
_BANNED_BUILTINS = frozenset({"id", "hash"})
_BANNED_MODULES = frozenset({"time", "random", "uuid"})
_BANNED_DOTTED = frozenset(
    {
        "os.urandom",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
    }
)


def _banned_call(node: ast.Call, tainted_imports: Set[str]) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _BANNED_BUILTINS or func.id in tainted_imports:
            return func.id
        return None
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head = dotted.split(".", 1)[0]
    if head in _BANNED_MODULES or dotted in _BANNED_DOTTED:
        return dotted
    return None


def _tainted_imports(tree: ast.Module) -> Set[str]:
    """Names bound by ``from time import time``-style imports."""
    tainted: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.module
            and node.module.split(".", 1)[0] in _BANNED_MODULES
        ):
            tainted.update(
                alias.asname or alias.name for alias in node.names
            )
    return tainted


def _called_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


@register
class FingerprintDeterminismRule(Rule):
    id = "RL004"
    name = "fingerprint-determinism"
    summary = (
        "no id()/hash()/time/random/urandom reachable from"
        " fingerprint code paths"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if source.tree is None:
                continue
            yield from self._check_module(source)

    def _check_module(self, source: SourceFile) -> Iterable[Finding]:
        tree = source.tree
        if tree is None:
            return
        funcs: Dict[str, List[ast.AST]] = {}
        for node in ast.walk(tree):
            if isinstance(node, _FUNC_DEFS):
                funcs.setdefault(node.name, []).append(node)
        is_fp_module = source.name == "fingerprint.py"
        roots: Set[str] = set()
        if is_fp_module:
            roots.update(funcs)
        if "fingerprint" in funcs:
            roots.add("fingerprint")
        if not roots and not is_fp_module:
            return
        # Same-module reachability closure over called names.
        reachable: Set[str] = set()
        frontier = sorted(roots)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for func in funcs.get(name, ()):
                for called in _called_names(func):
                    if called in funcs and called not in reachable:
                        frontier.append(called)
        tainted = _tainted_imports(tree)
        checked: List[Tuple[ast.AST, str]] = [
            (func, name)
            for name in sorted(reachable)
            for func in funcs.get(name, ())
        ]
        for func, name in checked:
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    banned = _banned_call(node, tainted)
                    if banned is not None:
                        yield self.finding(
                            source.rel_path,
                            node.lineno,
                            f"nondeterministic call {banned!r}"
                            f" reachable from fingerprint code"
                            f" (via {name!r}); fingerprints must be"
                            " stable across processes",
                        )
