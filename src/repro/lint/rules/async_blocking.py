"""RL009: nothing blocking may be reachable from serving async defs.

The serving tier's whole contract is that the event loop never blocks:
``/healthz`` answers while a cold compile runs, admission sheds load in
microseconds, and a drain completes on schedule.  One ``time.sleep``
(or socket connect, or ``Executor.shutdown(wait=True)``) anywhere in
the transitive call graph of an ``async def`` stalls every connection
at once.

The rule walks the interprocedural call graph
(:mod:`repro.lint.callgraph`) from every ``async def`` defined under a
``serving/`` path segment and flags blocking primitives in any
function reachable *on the loop*:

* canonical blocking calls -- ``time.sleep``, ``subprocess.*``,
  ``socket.create_connection`` / ``socket.socket``,
  ``urllib.request.urlopen``, ``sqlite3.connect``, file I/O
  (``open`` / ``os.open``), ``http.client.HTTPConnection``;
* un-awaited ``.acquire()`` calls (``threading.Lock``,
  ``FileLease``, ``RemoteLease`` -- all the waits look the same);
* ``.shutdown(...)`` on a ``ThreadPoolExecutor``-typed receiver
  without ``wait=False`` and ``.join()`` on a ``Thread``-typed one.

The executor off-load is exempt *structurally*: a callable passed by
value into ``run_in_executor`` / ``submit`` / ``Thread(target=...)``
-- directly or through a forwarder such as
``AsyncSession._off_loop`` -- gets no call edge, so the worker-side
code is simply not reachable from the loop.  ``with lock:`` blocks are
deliberately not flagged: brief critical sections on the loop are the
documented idiom for counter snapshots.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo, get_callgraph
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register
from repro.lint.astutil import ancestors

#: Canonically-named calls that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "urllib.request.urlopen",
        "sqlite3.connect",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "open",
        "io.open",
        "os.open",
        "http.client.HTTPConnection",
    }
)

#: Receiver types whose ``shutdown``/``join`` block until workers stop.
_EXECUTOR_TYPES = frozenset(
    {"ThreadPoolExecutor", "ProcessPoolExecutor"}
)
_THREAD_TYPES = frozenset({"Thread", "Process"})


def _is_awaited(node: ast.AST) -> bool:
    for anc in ancestors(node):
        if isinstance(anc, ast.Await):
            return True
        if isinstance(anc, ast.stmt):
            return False
    return False


def _kw_is_false(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def blocking_primitives(
    graph: CallGraph, info: FunctionInfo
) -> Iterator[Tuple[int, str]]:
    """(line, description) for each blocking primitive in *info*."""
    for node in info.body_nodes():
        if not isinstance(node, ast.Call):
            continue
        canonical = graph.canonical_call(info, node)
        if canonical in BLOCKING_CALLS:
            yield node.lineno, f"blocking call {canonical}()"
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method == "acquire" and not _is_awaited(node):
            yield node.lineno, "blocking lock/lease .acquire()"
        elif method == "shutdown":
            recv = graph.receiver_type(info, node.func.value)
            if recv in _EXECUTOR_TYPES and not _kw_is_false(
                node, "wait"
            ):
                yield (
                    node.lineno,
                    f"{recv}.shutdown() waits for worker threads",
                )
        elif method == "join":
            recv = graph.receiver_type(info, node.func.value)
            if recv in _THREAD_TYPES:
                yield node.lineno, f"{recv}.join() blocks"


@register
class AsyncBlockingRule(Rule):
    id = "RL009"
    name = "async-blocking"
    summary = (
        "no blocking primitive may be reachable from a serving"
        " async def except through the executor off-load"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        roots = graph.async_functions_under("serving")
        if not roots:
            return
        parents = graph.reachable(roots)
        seen: set = set()
        for key in sorted(parents):
            info = graph.functions[key]
            chain: Optional[str] = None
            for line, what in blocking_primitives(graph, info):
                if (info.file.rel_path, line) in seen:
                    continue
                seen.add((info.file.rel_path, line))
                if chain is None:
                    chain = graph.render_chain(
                        graph.call_chain(parents, key)
                    )
                yield self.finding(
                    info.file.rel_path,
                    line,
                    f"{what} may run on the event loop (reachable"
                    f" from serving async code via {chain}); move it"
                    " behind the executor off-load"
                    " (run_in_executor)",
                )
