"""RL006: every ``REPRO_*`` environment knob is documented.

The README carries a knob table (``| `REPRO_X` | default | meaning |``)
that operators configure the system from.  This rule keeps it honest
in both directions:

* every exact ``"REPRO_..."`` string literal in the scanned code (the
  way knobs are read: ``os.environ.get("REPRO_KERNEL")``) must have a
  README table row;
* every table row must correspond to a knob actually read in code.

The README is found by walking upward from the lint root, so linting
``src/repro`` picks up the repository README while a test fixture tree
supplies its own.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Tuple

from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register

_KNOB_LITERAL = re.compile(r"REPRO_[A-Z][A-Z0-9_]*\Z")
_README_ROW = re.compile(r"^\s*\|\s*`(REPRO_[A-Z][A-Z0-9_]*)`\s*\|")


@register
class EnvKnobRegistryRule(Rule):
    id = "RL006"
    name = "env-knob-registry"
    summary = (
        "REPRO_* environment reads and the README knob table agree"
        " in both directions"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        code_knobs: Dict[str, Tuple[str, int]] = {}
        for source in project.parsed():
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and _KNOB_LITERAL.fullmatch(node.value)
                ):
                    code_knobs.setdefault(
                        node.value, (source.rel_path, node.lineno)
                    )
        readme_text = project.readme_text()
        if readme_text is None:
            if code_knobs:
                knob, (path, line) = sorted(code_knobs.items())[0]
                yield self.finding(
                    path,
                    line,
                    f"environment knob {knob!r} read in code but no"
                    " README.md with a knob table was found",
                )
            return
        readme_rel = os.path.relpath(
            project.readme_path or "README.md", project.root
        ).replace(os.sep, "/")
        doc_knobs: Dict[str, int] = {}
        for line_no, line in enumerate(readme_text.splitlines(), 1):
            match = _README_ROW.match(line)
            if match:
                doc_knobs.setdefault(match.group(1), line_no)
        for knob in sorted(code_knobs):
            if knob not in doc_knobs:
                path, line = code_knobs[knob]
                yield self.finding(
                    path,
                    line,
                    f"environment knob {knob!r} read in code but"
                    f" undocumented in the {readme_rel} knob table",
                )
        for knob in sorted(doc_knobs):
            if knob not in code_knobs:
                yield self.finding(
                    readme_rel,
                    doc_knobs[knob],
                    f"environment knob {knob!r} documented in"
                    f" {readme_rel} but never read in the scanned"
                    " code",
                )
