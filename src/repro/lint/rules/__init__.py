"""Rule modules; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    async_blocking,
    env_knobs,
    fault_points,
    fingerprint_determinism,
    guard_discipline,
    lock_discipline,
    lock_order,
    mutable_defaults,
    resource_lifecycle,
    swallowed_exceptions,
    threadsafe_loop,
    typed_errors,
)
