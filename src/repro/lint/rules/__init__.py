"""Rule modules; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    env_knobs,
    fault_points,
    fingerprint_determinism,
    guard_discipline,
    lock_discipline,
    mutable_defaults,
    swallowed_exceptions,
    typed_errors,
)
