"""RL010: the acquired-while-holding graph must be acyclic.

A fleet deadlock needs only two workers and two locks taken in
opposite orders -- and this repo has plenty of locks to order: the
store's ``RLock``, per-backend connection mutexes, cross-process
``FileLease`` / ``RemoteLease`` files, and SQLite ``BEGIN IMMEDIATE``
write transactions (a database-wide lock in WAL mode).

The rule collects every *acquisition site*:

* ``with self._lock:`` where the attribute's inferred type is a
  ``threading`` lock (``Lock``/``RLock``/``Semaphore``/``Condition``)
  -- the lock's identity is ``Class.attr``, shared across instances;
* ``with`` / ``.acquire()`` on ``FileLease`` / ``RemoteLease``-typed
  values -- identity is the lease class (any two leases can collide
  on the same key fleet-wide, so they are modelled as one lock);
* ``conn.execute("BEGIN IMMEDIATE")`` -- identity
  ``sqlite.BEGIN_IMMEDIATE`` (one write lock per database).

While a ``with`` body (or, for bare ``.acquire()``, the rest of the
function) holds lock A, every acquisition of lock B -- directly nested
or reachable through the call graph -- adds the edge A -> B.  A cycle
in that graph is a potential deadlock and is reported once, at the
edge that closes it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import (
    CallGraph,
    FuncKey,
    FunctionInfo,
    get_callgraph,
)
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register

_THREAD_LOCK_TYPES = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}
)
_LEASE_TYPES = frozenset({"FileLease", "RemoteLease"})
_SQLITE_NODE = "sqlite.BEGIN_IMMEDIATE"


@dataclass(frozen=True)
class _Acquisition:
    """One acquisition site: which lock, where, and what it holds."""

    lock: str
    path: str
    line: int
    #: AST nodes executed while the lock is held.
    held: Tuple[ast.AST, ...]


def _lock_identity(
    graph: CallGraph, info: FunctionInfo, expr: ast.AST
) -> Optional[str]:
    """The lock-node name for an acquired expression, if lock-like."""
    recv = graph.receiver_type(info, expr)
    if recv in _THREAD_LOCK_TYPES:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and info.cls_name
        ):
            return f"{info.cls_name}.{expr.attr}"
        if isinstance(expr, ast.Name):
            return f"{info.file.name}:{expr.id}"
        return f"{info.file.name}:<lock>"
    if recv in _LEASE_TYPES:
        return recv
    return None


def _is_begin_immediate(call: ast.Call) -> bool:
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "execute"
        and call.args
    ):
        return False
    head = call.args[0]
    return (
        isinstance(head, ast.Constant)
        and isinstance(head.value, str)
        and head.value.strip().upper().startswith("BEGIN IMMEDIATE")
    )


def _walk_shallow(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk *nodes* without descending into nested function defs."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _acquisitions(
    graph: CallGraph, info: FunctionInfo
) -> List[_Acquisition]:
    found: List[_Acquisition] = []

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    lock = _lock_identity(
                        graph, info, item.context_expr
                    )
                    if lock is not None:
                        found.append(
                            _Acquisition(
                                lock=lock,
                                path=info.file.rel_path,
                                line=stmt.lineno,
                                held=tuple(stmt.body),
                            )
                        )
            for node in _walk_shallow([stmt]):
                if not isinstance(node, ast.Call):
                    continue
                if _is_begin_immediate(node):
                    found.append(
                        _Acquisition(
                            lock=_SQLITE_NODE,
                            path=info.file.rel_path,
                            line=node.lineno,
                            # The write transaction ends at commit/
                            # rollback; holding "nothing further" is
                            # the safe under-approximation for edges
                            # *out of* it, and edges *into* it come
                            # from the enclosing with-blocks.
                            held=(),
                        )
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    lock = _lock_identity(
                        graph, info, node.func.value
                    )
                    if lock is not None:
                        found.append(
                            _Acquisition(
                                lock=lock,
                                path=info.file.rel_path,
                                line=node.lineno,
                                held=(),
                            )
                        )

    body = getattr(info.node, "body", [])
    scan(
        [s for s in body if isinstance(s, ast.stmt)]
    )
    # with-statements nested inside other statements (try/if/loops).
    for outer in _walk_shallow(body):
        if isinstance(outer, (ast.With, ast.AsyncWith)):
            scan([outer])
    return found


def _dedupe(
    acquisitions: List[_Acquisition],
) -> List[_Acquisition]:
    seen: Set[Tuple[str, str, int]] = set()
    unique: List[_Acquisition] = []
    for acq in acquisitions:
        key = (acq.lock, acq.path, acq.line)
        if key not in seen:
            seen.add(key)
            unique.append(acq)
    return unique


@register
class LockOrderRule(Rule):
    id = "RL010"
    name = "lock-order"
    summary = (
        "lock/lease/transaction acquisition order must be acyclic"
        " across the call graph (deadlock freedom)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        per_function: Dict[FuncKey, List[_Acquisition]] = {}
        for key in sorted(graph.functions):
            info = graph.functions[key]
            acqs = _dedupe(_acquisitions(graph, info))
            if acqs:
                per_function[key] = acqs
        # Edges: lock -> lock, tagged with a representative site.
        edges: Dict[str, Dict[str, Tuple[str, int, str]]] = {}
        for key, acqs in sorted(per_function.items()):
            info = graph.functions[key]
            for acq in acqs:
                for inner, site in self._held_acquisitions(
                    graph, info, acq, per_function
                ):
                    if inner == acq.lock:
                        continue
                    edges.setdefault(acq.lock, {}).setdefault(
                        inner, site
                    )
        yield from self._report_cycles(edges)

    def _held_acquisitions(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        acq: _Acquisition,
        per_function: Dict[FuncKey, List[_Acquisition]],
    ) -> Iterator[Tuple[str, Tuple[str, int, str]]]:
        """Locks acquired while *acq* is held, with edge sites."""
        callees: List[FuncKey] = []
        for node in _walk_shallow(acq.held):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    inner = _lock_identity(
                        graph, info, item.context_expr
                    )
                    if inner is not None:
                        yield inner, (
                            acq.path,
                            node.lineno,
                            f"{acq.lock} held at nested acquisition",
                        )
            if isinstance(node, ast.Call):
                if _is_begin_immediate(node):
                    yield _SQLITE_NODE, (
                        acq.path,
                        node.lineno,
                        f"{acq.lock} held at BEGIN IMMEDIATE",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                ):
                    inner = _lock_identity(
                        graph, info, node.func.value
                    )
                    if inner is not None:
                        yield inner, (
                            acq.path,
                            node.lineno,
                            f"{acq.lock} held at .acquire()",
                        )
                target = graph.resolve_call(info, node)
                if target is not None:
                    callees.append(target.key)
        if not callees:
            return
        for reached in sorted(graph.reachable(callees)):
            for inner_acq in per_function.get(reached, ()):
                yield inner_acq.lock, (
                    inner_acq.path,
                    inner_acq.line,
                    f"{acq.lock} held (from {acq.path}:{acq.line})"
                    " across this acquisition",
                )

    def _report_cycles(
        self,
        edges: Dict[str, Dict[str, Tuple[str, int, str]]],
    ) -> Iterator[Finding]:
        reported: Set[Tuple[str, ...]] = set()
        for start in sorted(edges):
            cycle = self._find_cycle(edges, start)
            if cycle is None:
                continue
            canon = self._canonical(cycle)
            if canon in reported:
                continue
            reported.add(canon)
            first, second = cycle[0], cycle[1]
            path, line, _ = edges[first][second]
            chain = " -> ".join(cycle + (cycle[0],))
            yield self.finding(
                path,
                line,
                f"lock-order cycle {chain}: two workers taking these"
                " in opposite orders deadlock; impose one global"
                " acquisition order",
            )

    @staticmethod
    def _find_cycle(
        edges: Dict[str, Dict[str, Tuple[str, int, str]]],
        start: str,
    ) -> Optional[Tuple[str, ...]]:
        stack: List[str] = [start]
        on_stack: Set[str] = {start}
        visited: Set[str] = set()

        def dfs(node: str) -> Optional[Tuple[str, ...]]:
            visited.add(node)
            for nxt in sorted(edges.get(node, ())):
                if nxt in on_stack:
                    at = stack.index(nxt)
                    return tuple(stack[at:])
                if nxt in visited:
                    continue
                stack.append(nxt)
                on_stack.add(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                stack.pop()
                on_stack.discard(nxt)
            return None

        return dfs(start)

    @staticmethod
    def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]
