"""RL007: no mutable default argument values.

The classic Python trap: a ``list``/``dict``/``set`` literal (or
constructor call, or comprehension) in a ``def`` default is evaluated
once and shared across every call.  Default to ``None`` and
materialise inside the body instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque"}
)


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _defaulted_args(
    args: ast.arguments,
) -> Iterable[Tuple[str, Optional[ast.expr]]]:
    positional: List[ast.arg] = list(args.posonlyargs) + list(args.args)
    tail = positional[len(positional) - len(args.defaults) :]
    for arg, default in zip(tail, args.defaults):
        yield arg.arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        yield arg.arg, default


@register
class MutableDefaultsRule(Rule):
    id = "RL007"
    name = "no-mutable-default-args"
    summary = "function defaults must not be mutable objects"

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, _FUNC_DEFS):
                    continue
                for name, default in _defaulted_args(node.args):
                    if default is not None and _is_mutable(default):
                        yield self.finding(
                            source.rel_path,
                            default.lineno,
                            f"mutable default argument for parameter"
                            f" {name!r} (evaluated once, shared"
                            " across calls; default to None)",
                        )
