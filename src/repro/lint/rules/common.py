"""Shared AST helpers for reprolint rules.

The implementations live in :mod:`repro.lint.astutil` so that
:mod:`repro.lint.callgraph` can use them without importing this rules
package (whose ``__init__`` imports every rule module, several of
which import the call graph -- a cycle otherwise).
"""

from __future__ import annotations

from repro.lint.astutil import (  # noqa: F401
    FunctionNode,
    ancestors,
    dotted_name,
    enclosing_function,
    first_body_line,
    is_self_attr,
    set_parents,
)
