"""RL012: executor-thread code must not touch asyncio loop state.

Everything the serving tier off-loads -- compile work through
``AsyncSession._off_loop``, chaos-proxy pumps, artifactd worker
threads -- runs on plain ``threading`` threads.  From there, the only
safe ways back into the event loop are
``loop.call_soon_threadsafe(...)`` and
``asyncio.run_coroutine_threadsafe(...)``; anything else
(``call_soon``, ``create_task``, ``ensure_future``,
``get_event_loop``) mutates loop internals without the loop's wake-up
handshake and corrupts or silently drops callbacks.

Roots are the call graph's *thread entries*: every callable passed by
value into ``run_in_executor`` / ``Executor.submit`` /
``Thread(target=...)``.  The rule BFS-walks from those and flags, in
any reachable function:

* canonical calls ``asyncio.get_event_loop`` /
  ``asyncio.get_running_loop`` / ``asyncio.ensure_future`` /
  ``asyncio.create_task`` (loop state is thread-local; on a worker
  thread these either raise or, worse, spin up a second loop);
* attribute calls ``.call_soon`` / ``.call_later`` / ``.call_at`` /
  ``.create_task`` / ``.ensure_future`` / ``.stop`` /
  ``.run_until_complete`` on a receiver the graph types as an event
  loop, or on any receiver named like a loop (``loop``,
  ``self._loop``, ...) -- loop handles are routinely passed into
  workers precisely so they can schedule results back, so naming is
  signal here, not noise.

``call_soon_threadsafe`` and ``run_coroutine_threadsafe`` are exempt:
they are the documented handshake.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo, get_callgraph
from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register

#: Canonical asyncio calls that read or mutate thread-local loop state.
LOOP_STATE_CALLS = frozenset(
    {
        "asyncio.get_event_loop",
        "asyncio.get_running_loop",
        "asyncio.new_event_loop",
        "asyncio.set_event_loop",
        "asyncio.ensure_future",
        "asyncio.create_task",
    }
)

#: Methods on a loop object that are NOT safe off-thread.
_UNSAFE_LOOP_METHODS = frozenset(
    {
        "call_soon",
        "call_later",
        "call_at",
        "create_task",
        "ensure_future",
        "run_until_complete",
        "stop",
        "close",
    }
)

#: The two documented thread-to-loop handshakes.
_SAFE_METHODS = frozenset(
    {"call_soon_threadsafe", "run_coroutine_threadsafe"}
)

_LOOP_TYPE_NAMES = frozenset(
    {"AbstractEventLoop", "BaseEventLoop", "EventLoop"}
)


def _looks_like_loop(expr: ast.AST) -> bool:
    """Receiver is named like an event loop handle."""
    name: Optional[str] = None
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    if name is None:
        return False
    stripped = name.lstrip("_")
    return stripped == "loop" or stripped.endswith("_loop")


def loop_touches(
    graph: CallGraph, info: FunctionInfo
) -> Iterator[Tuple[int, str]]:
    """(line, description) for each unsafe loop touch in *info*."""
    for node in info.body_nodes():
        if not isinstance(node, ast.Call):
            continue
        canonical = graph.canonical_call(info, node)
        if canonical in LOOP_STATE_CALLS:
            yield (
                node.lineno,
                f"{canonical}() reads thread-local loop state",
            )
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _SAFE_METHODS:
            continue
        if func.attr not in _UNSAFE_LOOP_METHODS:
            continue
        recv_type = graph.receiver_type(info, func.value)
        if recv_type in _LOOP_TYPE_NAMES or _looks_like_loop(
            func.value
        ):
            yield (
                node.lineno,
                f"loop.{func.attr}() is not thread-safe",
            )


@register
class ThreadsafeLoopRule(Rule):
    id = "RL012"
    name = "threadsafe-loop"
    summary = (
        "executor-thread code may only reach the event loop via"
        " call_soon_threadsafe/run_coroutine_threadsafe"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        roots = graph.thread_entry_keys()
        if not roots:
            return
        parents = graph.reachable(roots)
        seen: set = set()
        for key in sorted(parents):
            info = graph.functions[key]
            if info.is_async:
                # A coroutine function handed to an executor is a
                # different bug (RL009's domain); its body runs on
                # the loop once awaited.
                continue
            chain: Optional[str] = None
            for line, what in loop_touches(graph, info):
                if (info.file.rel_path, line) in seen:
                    continue
                seen.add((info.file.rel_path, line))
                if chain is None:
                    chain = graph.render_chain(
                        graph.call_chain(parents, key)
                    )
                yield self.finding(
                    info.file.rel_path,
                    line,
                    f"{what} but this code runs on an executor"
                    f" thread (via {chain}); use"
                    " call_soon_threadsafe or"
                    " run_coroutine_threadsafe",
                )
