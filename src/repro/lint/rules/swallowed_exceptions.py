"""RL008: no ``except ...: pass`` without a justification.

A handler whose entire body is ``pass`` erases a failure with no trace.
The resilience layer has a small number of legitimate best-effort
sites (cache-file cleanup, lease release on teardown); each one must
say so with an inline ``# reprolint: disable=RL008 -- why`` so the
next reader knows the swallow is deliberate.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.project import Project
from repro.lint.registry import Rule, register


@register
class SwallowedExceptionsRule(Rule):
    id = "RL008"
    name = "no-swallowed-exceptions"
    summary = "no 'except ...: pass' without a disable justification"

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if all(
                    isinstance(stmt, ast.Pass) for stmt in node.body
                ):
                    yield self.finding(
                        source.rel_path,
                        node.lineno,
                        "except clause swallows the exception with a"
                        " bare 'pass' (handle it, or justify with"
                        " '# reprolint: disable=RL008 -- why')",
                    )
