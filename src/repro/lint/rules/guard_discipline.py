"""RL002: hot-path loops must reach ``guard.tick()``.

Cooperative cancellation (``REPRO_DEADLINE_MS``; DESIGN.md section 5)
only works if every unbounded loop on the derivation hot path calls
:meth:`ExecutionGuard.tick`.  Scope: every module under ``kernel/``
(except ``config.py``) and ``relational/enumeration.py``.

A loop is compliant when its own subtree contains a ``.tick(...)``
call, or when an *enclosing* loop does (the outer iteration ticks, so
the inner loop is re-checked every outer pass).  Loops that are
genuinely bounded by compile-time-small structures (schema arity, rule
lists) carry inline suppressions saying so.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register

_LOOP = (ast.For, ast.AsyncFor, ast.While)
_EXEMPT_FILES = frozenset({"config.py", "__init__.py"})


def _in_scope(source: SourceFile) -> bool:
    if source.is_under("kernel"):
        return source.name not in _EXEMPT_FILES
    return source.name == "enumeration.py" and source.is_under(
        "relational"
    )


def _contains_tick(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr == "tick"
        for sub in ast.walk(node)
    )


@register
class GuardDisciplineRule(Rule):
    id = "RL002"
    name = "guard-discipline"
    summary = (
        "loops in kernel/ and relational/enumeration.py must reach"
        " guard.tick()"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if not _in_scope(source) or source.tree is None:
                continue
            yield from self._walk(source, source.tree, ticked=False)

    def _walk(
        self, source: SourceFile, node: ast.AST, ticked: bool
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _LOOP):
                compliant = ticked or _contains_tick(child)
                if not compliant:
                    yield self.finding(
                        source.rel_path,
                        child.lineno,
                        "loop on a guarded hot path never reaches"
                        " guard.tick() (cooperative cancellation;"
                        " see repro.resilience.guard)",
                    )
                yield from self._walk(
                    source, child, ticked=compliant
                )
            else:
                yield from self._walk(source, child, ticked=ticked)
