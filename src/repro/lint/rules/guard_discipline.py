"""RL002: hot-path loops must reach ``guard.tick()``.

Cooperative cancellation (``REPRO_DEADLINE_MS``; DESIGN.md section 5)
only works if every unbounded loop on the derivation hot path calls
:meth:`ExecutionGuard.tick`.  Scope: every module under ``kernel/``
(except ``config.py``) and ``relational/enumeration.py``.

A loop is compliant when:

* its own subtree contains a ``.tick(...)`` call (per-iteration or
  amortized via :class:`~repro.kernel.bulkops.StrideTicker`), or
* an *enclosing* loop is compliant (the outer iteration ticks, so the
  inner loop is re-checked every outer pass), or
* it carries an explicit **holds-guard marker**::

      # reprolint: holds-guard -- <why the budget is already charged>

  on the loop's own line or in the comment block directly above it.
  The marker declares that the loop's work is already accounted to the
  step budget -- pre-charged in bulk (``guard.tick(n)`` before a
  word-packed pass), bounded by a stride-ticked caller, or
  compile-time-small -- and *requires* a written justification after
  ``--``.  Unlike a ``disable=RL002`` suppression it is a positive
  claim about guard accounting, shows up in this rule's semantics (and
  its tests), and is not counted against the suppression budget.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register

_LOOP = (ast.For, ast.AsyncFor, ast.While)
_EXEMPT_FILES = frozenset({"config.py", "__init__.py"})

#: The holds-guard marker: must carry a justification after ``--``.
_HOLDS_GUARD = re.compile(r"#\s*reprolint:\s*holds-guard\s*--\s*\S")
_COMMENT_OR_BLANK = re.compile(r"^\s*(#.*)?$")


def _in_scope(source: SourceFile) -> bool:
    if source.is_under("kernel"):
        return source.name not in _EXEMPT_FILES
    return source.name == "enumeration.py" and source.is_under(
        "relational"
    )


def _contains_tick(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr == "tick"
        for sub in ast.walk(node)
    )


def _holds_guard_marker(lines: List[str], loop_lineno: int) -> bool:
    """True iff the loop carries a holds-guard marker.

    Checked on the loop's own (1-indexed) line, then upward through the
    contiguous block of comment/blank lines directly above it, so a
    multi-line justification comment still attaches to the loop.
    """
    if 1 <= loop_lineno <= len(lines) and _HOLDS_GUARD.search(
        lines[loop_lineno - 1]
    ):
        return True
    lineno = loop_lineno - 1
    while 1 <= lineno <= len(lines):
        line = lines[lineno - 1]
        if not _COMMENT_OR_BLANK.match(line):
            return False
        if _HOLDS_GUARD.search(line):
            return True
        lineno -= 1
    return False


@register
class GuardDisciplineRule(Rule):
    id = "RL002"
    name = "guard-discipline"
    summary = (
        "loops in kernel/ and relational/enumeration.py must reach"
        " guard.tick()"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if not _in_scope(source) or source.tree is None:
                continue
            lines = source.text.splitlines()
            yield from self._walk(source, lines, source.tree, ticked=False)

    def _walk(
        self,
        source: SourceFile,
        lines: List[str],
        node: ast.AST,
        ticked: bool,
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _LOOP):
                compliant = (
                    ticked
                    or _contains_tick(child)
                    or _holds_guard_marker(lines, child.lineno)
                )
                if not compliant:
                    yield self.finding(
                        source.rel_path,
                        child.lineno,
                        "loop on a guarded hot path never reaches"
                        " guard.tick() and carries no holds-guard"
                        " marker (cooperative cancellation; see"
                        " repro.resilience.guard)",
                    )
                yield from self._walk(
                    source, lines, child, ticked=compliant
                )
            else:
                yield from self._walk(source, lines, child, ticked=ticked)
