"""RL003: mutate lock-guarded state only under ``with self._lock``.

Any class that takes ``with self._lock`` anywhere is treated as
lock-guarded (today: ``ArtifactStore``, ``CircuitBreaker``,
``_SingleFlight``).  Inside such a class, mutations of underscore
instance state -- subscript assignment/deletion, augmented assignment,
and calls to container mutator methods (``append``, ``pop``,
``update``, ...) on ``self._x`` -- must happen inside a
``with self._lock`` block.  ``__init__``/``__post_init__`` are exempt
(no concurrent access before construction completes), and a method
documented with ``# reprolint: holds-lock`` is treated as lock-held --
in exchange, *calls* to such a method are themselves checked.

Known blind spot, accepted for simplicity: closures defined inside a
method are not analysed (they may run after the lock is released).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.common import first_body_line, is_self_attr
from repro.lint.suppress import holds_lock_marked

_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__"})
_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _with_takes_lock(node: ast.AST) -> bool:
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    return any(
        is_self_attr(item.context_expr, "_lock")
        for item in node.items
    )


def _guarded_attr(node: ast.AST) -> Optional[str]:
    """The ``self._x`` attribute a mutation node touches, if any."""
    target: Optional[ast.AST] = None
    if isinstance(node, ast.Assign):
        for tgt in node.targets:
            if isinstance(tgt, ast.Subscript):
                target = tgt.value
    elif isinstance(node, ast.AugAssign):
        target = (
            node.target.value
            if isinstance(node.target, ast.Subscript)
            else node.target
        )
    elif isinstance(node, ast.Delete):
        for tgt in node.targets:
            if isinstance(tgt, ast.Subscript):
                target = tgt.value
    elif isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        if node.func.attr in _MUTATORS:
            target = node.func.value
    if (
        target is not None
        and is_self_attr(target)
        and isinstance(target, ast.Attribute)
        and target.attr.startswith("_")
        and target.attr != "_lock"
    ):
        return target.attr
    return None


@register
class LockDisciplineRule(Rule):
    id = "RL003"
    name = "lock-discipline"
    summary = (
        "underscore state of lock-guarded classes is mutated only"
        " inside 'with self._lock'"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for source in project.parsed():
            if source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods: List[ast.FunctionDef] = [
            stmt for stmt in cls.body if isinstance(stmt, _FUNC_DEFS)
        ]
        if not any(
            _with_takes_lock(sub)
            for m in methods
            for sub in ast.walk(m)
        ):
            return  # not a lock-guarded class
        held: Set[str] = {
            m.name
            for m in methods
            if holds_lock_marked(
                source.suppressions, m.lineno, first_body_line(m)
            )
        }
        for method in methods:
            locked_all = (
                method.name in _EXEMPT_METHODS or method.name in held
            )
            yield from self._check_stmts(
                source, cls.name, method.body, locked_all, held
            )

    def _check_stmts(
        self,
        source: SourceFile,
        cls_name: str,
        stmts: List[ast.stmt],
        locked: bool,
        held: Set[str],
    ) -> Iterable[Finding]:
        for stmt in stmts:
            if isinstance(stmt, _FUNC_DEFS):
                continue  # closures: accepted blind spot
            now_locked = locked or _with_takes_lock(stmt)
            if not now_locked:
                yield from self._check_one(
                    source, cls_name, stmt, held
                )
            for body_name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, body_name, None)
                if sub:
                    yield from self._check_stmts(
                        source, cls_name, sub, now_locked, held
                    )
            for handler in getattr(stmt, "handlers", ()):
                yield from self._check_stmts(
                    source, cls_name, handler.body, now_locked, held
                )
            for case in getattr(stmt, "cases", ()):
                yield from self._check_stmts(
                    source, cls_name, case.body, now_locked, held
                )

    def _check_one(
        self,
        source: SourceFile,
        cls_name: str,
        stmt: ast.stmt,
        held: Set[str],
    ) -> Iterable[Finding]:
        """Findings for one *unlocked* statement (header expressions
        included, nested blocks excluded -- those are re-visited with
        their own lock state by ``_check_stmts``)."""
        for node in self._own_nodes(stmt):
            attr = _guarded_attr(node)
            if attr is not None:
                yield self.finding(
                    source.rel_path,
                    node.lineno,
                    f"mutation of 'self.{attr}' outside"
                    f" 'with self._lock' in lock-guarded class"
                    f" {cls_name}",
                )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and is_self_attr(node.func)
                and node.func.attr in held
            ):
                yield self.finding(
                    source.rel_path,
                    node.lineno,
                    f"call to lock-held helper"
                    f" 'self.{node.func.attr}()' outside"
                    f" 'with self._lock' in class {cls_name}",
                )

    def _own_nodes(self, stmt: ast.stmt) -> Iterable[ast.AST]:
        """Walk ``stmt`` without descending into nested statements or
        function definitions."""
        queue: List[ast.AST] = [stmt]
        first = True
        while queue:
            node = queue.pop()
            if not first and isinstance(
                node, (ast.stmt, ast.Lambda)
            ):
                continue
            first = False
            yield node
            queue.extend(ast.iter_child_nodes(node))
