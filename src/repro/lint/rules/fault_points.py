"""RL005: fault-injection call sites and ``FAULT_POINTS`` stay in sync.

``repro.resilience.faults`` keeps the registry of injectable fault
points in a module-level ``FAULT_POINTS`` tuple, with a comment that
literally says *keep them in sync* with the call sites.  This rule
makes that comment enforceable, in both directions:

* a string literal consulted at a fault-injection call site (the
  ``fault_check``/``fault_corrupt`` helpers, or a ``check``/``corrupt``
  method on a plan object) must appear in ``FAULT_POINTS``;
* every registered point must be consulted somewhere.

The module defining ``FAULT_POINTS`` is excluded from the call-site
scan (its own helpers consult points generically).  Attribute-call
matching is restricted to receivers whose name mentions ``plan`` or
``fault`` so unrelated ``.check()`` methods are not mistaken for
fault-point consultations.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule, register
from repro.lint.rules.common import dotted_name

_NAME_CALLS = frozenset({"fault_check", "fault_corrupt"})
_ATTR_CALLS = frozenset({"check", "corrupt"})


def _registry(
    project: Project,
) -> Optional[Tuple[SourceFile, int, Tuple[str, ...]]]:
    for source in project.parsed():
        if source.tree is None:
            continue
        for node in source.tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value:
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "FAULT_POINTS"
                ):
                    value = (
                        node.value
                        if isinstance(node, (ast.Assign, ast.AnnAssign))
                        else None
                    )
                    points: List[str] = []
                    if isinstance(value, (ast.Tuple, ast.List)):
                        for elt in value.elts:
                            if isinstance(
                                elt, ast.Constant
                            ) and isinstance(elt.value, str):
                                points.append(elt.value)
                    return source, node.lineno, tuple(points)
    return None


def _first_str_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _is_consultation(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _NAME_CALLS
    if isinstance(func, ast.Attribute) and func.attr in _ATTR_CALLS:
        dotted = dotted_name(func.value)
        receiver = (
            dotted.rsplit(".", 1)[-1].lower() if dotted else ""
        )
        return "plan" in receiver or "fault" in receiver
    return False


@register
class FaultPointRegistryRule(Rule):
    id = "RL005"
    name = "fault-point-registry"
    summary = (
        "fault-injection call-site literals and FAULT_POINTS agree"
        " in both directions"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        registry = _registry(project)
        if registry is None:
            return
        reg_source, reg_line, points = registry
        used: Dict[str, Tuple[str, int]] = {}
        for source in project.parsed():
            if source is reg_source or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Call)
                    and _is_consultation(node)
                ):
                    continue
                literal = _first_str_arg(node)
                if literal is None:
                    continue
                if literal not in points:
                    yield self.finding(
                        source.rel_path,
                        node.lineno,
                        f"fault point {literal!r} consulted here but"
                        " missing from FAULT_POINTS"
                        f" ({reg_source.rel_path})",
                    )
                used.setdefault(literal, (source.rel_path, node.lineno))
        for point in points:
            if point not in used:
                yield self.finding(
                    reg_source.rel_path,
                    reg_line,
                    f"fault point {point!r} registered in"
                    " FAULT_POINTS but never consulted at any call"
                    " site",
                )
