"""The finding record emitted by every reprolint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored relative to the project root so findings are
    stable across checkouts (the baseline relies on this).  ``line`` is
    1-based.  Ordering is (path, line, rule) so reports read in file
    order.
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def baseline_key(self) -> Dict[str, str]:
        """Identity used by the baseline: deliberately line-free.

        A grandfathered finding should survive unrelated edits that
        shift it a few lines; it is matched on what it says and where
        it lives, not on exact position.
        """
        return {"rule": self.rule, "path": self.path, "message": self.message}
