"""Run a set of rules over a project and apply suppressions."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


from repro.lint.findings import Finding
from repro.lint.project import Project, SourceFile
from repro.lint.registry import Rule


@dataclass(frozen=True)
class RuleStats:
    """Per-rule accounting from one :func:`run_rules` pass."""

    rule: str
    findings: int  # raw findings before suppressions/baseline
    elapsed_s: float


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    strict_suppressions: bool = False,
    stats: Optional[List[RuleStats]] = None,
) -> List[Finding]:
    """Run ``rules`` over ``project``; return surviving findings.

    A finding is dropped when the file carries a matching
    ``# reprolint: disable=<rule>`` on the finding's line (or on a
    standalone comment line directly above it).  Parse errors from the
    project loader are always included.  With ``strict_suppressions``,
    every disable comment lacking a ``-- justification`` tail earns an
    RL000 finding of its own.  Pass a list as ``stats`` to collect one
    :class:`RuleStats` per rule (the call-graph rules are slower than
    the per-file ones; ``--stats`` makes that visible in CI).
    """
    by_path: Dict[str, SourceFile] = {
        f.rel_path: f for f in project.files
    }
    findings: List[Finding] = list(project.load_findings)
    for rule in rules:
        started = time.perf_counter()
        raw = 0
        for finding in rule.check(project):
            raw += 1
            source = by_path.get(finding.path)
            if source is not None and source.suppressions.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
        if stats is not None:
            stats.append(
                RuleStats(
                    rule=rule.id,
                    findings=raw,
                    elapsed_s=time.perf_counter() - started,
                )
            )
    if strict_suppressions:
        findings.extend(_unjustified(project.files))
    return sorted(set(findings))


def _unjustified(files: Iterable[SourceFile]) -> Iterable[Finding]:
    for source in files:
        for sup in source.suppressions.unjustified():
            yield Finding(
                path=source.rel_path,
                line=sup.line,
                rule="RL000",
                message=(
                    "suppression without justification: add"
                    " ' -- <why>' after the rule list"
                ),
            )


def select_rules(
    rules: Sequence[Rule], wanted: Optional[Sequence[str]]
) -> List[Rule]:
    if not wanted:
        return list(rules)
    wanted_set = {w.strip() for w in wanted if w.strip()}
    return [r for r in rules if r.id in wanted_set]
