"""The strong-view analysis (paper §2.3) computed on mask vectors.

Produces a :class:`~repro.core.strong.StrongViewAnalysis` identical to
the naive one in :func:`repro.core.strong.analyze_view` -- same
morphism, same verdicts, same ``gamma#``/``gamma^Theta`` tables -- but
replaces the quadratic tuple-by-tuple predicate checks with integer
arithmetic over the state-space poset's down-set masks:

* the image poset is built from instance bitmasks
  (:meth:`FinitePoset.from_masks`), not ``n^2`` ``issubset`` calls;
* monotonicity (of ``gamma'`` and of ``gamma#``) walks only the
  *comparable* pairs -- the set bits of each down-set mask -- testing
  one bit of the target's order matrix per pair;
* least preimages come from fiber masks: the least element of a fiber
  is the member whose down-set covers the whole fiber;
* downward stationarity is one mask-containment pass over ``lp``.

Two entry points share the body: :func:`analyze_view_bitset` (the PR-1
kernel) and :func:`analyze_view_bulk`, which additionally replaces the
comparable-pair walks with the word-packed pulled-selector test of
:func:`repro.kernel.bulkops.pullback_monotone` -- one mask containment
per state instead of a Python step per comparable pair.

The resulting predicate values are seeded into the
:class:`~repro.algebra.morphisms.PosetMorphism` caches so later calls
through the generic API do not silently re-run the slow paths.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.kernel.bitspace import TupleCodec
from repro.kernel.bulkops import StrideTicker, fiber_masks, pullback_monotone
from repro.algebra.morphisms import PosetMorphism
from repro.algebra.poset import FinitePoset
from repro.relational.instances import DatabaseInstance, sorted_instances
from repro.resilience.faults import fault_check

if TYPE_CHECKING:
    from repro.core.strong import StrongViewAnalysis
    from repro.relational.enumeration import StateSpace
    from repro.views.view import View


def _monotone_on_comparable_pairs(
    below_source: Sequence[int],
    below_target: Sequence[int],
    fidx: Sequence[int],
) -> bool:
    """``x <= y  =>  f(x) <= f(y)``, checked on comparable pairs only.

    Sound and complete: incomparable pairs impose no condition, so
    walking the set bits of each down-set mask covers the whole
    definition without the naive all-pairs sweep.
    """
    ticker = StrideTicker()
    for y, below_y in enumerate(below_source):
        ticker.tick()
        target_row = below_target[fidx[y]]
        probe = below_y & ~(1 << y)
        while probe:  # reprolint: holds-guard -- bounded by the row
            # popcount; the enclosing per-state loop is stride-ticked
            x = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            if not (target_row >> fidx[x]) & 1:
                ticker.flush()
                return False
    ticker.flush()
    return True


def image_poset_bitset(states: Iterable[DatabaseInstance]) -> FinitePoset:
    """The ⊥-poset of a family of instances, via bitmask encoding."""
    ordered = tuple(states)
    codec = TupleCodec.from_instances(ordered)
    return FinitePoset.from_masks(ordered, codec.encode_all(ordered))


def analyze_view_bitset(view: View, space: StateSpace) -> StrongViewAnalysis:
    """Bitset-kernel twin of :func:`repro.core.strong.analyze_view`."""
    fault_check("kernel.analysis")
    return _analyze_view_fast(view, space, bulk=False)


def analyze_view_bulk(view: View, space: StateSpace) -> StrongViewAnalysis:
    """Bulk-kernel twin: word-packed monotonicity and fiber passes."""
    fault_check("kernel.bulk")
    return _analyze_view_fast(view, space, bulk=True)


def _analyze_identity_like(
    view: View,
    space: StateSpace,
    raw_table: Tuple[DatabaseInstance, ...],
) -> StrongViewAnalysis:
    """Fast path for a view whose ``gamma'`` fixes every state.

    The image is the state set itself (``space.states`` is already in
    :func:`sorted_instances` order), so the image poset *is* the state
    poset and every derived answer is forced: ``gamma'`` and ``gamma#``
    are the identity, every state is its own least preimage, and the
    monotonicity/stationarity predicates hold trivially.  Skipping the
    re-derivation matters because the identity view participates in
    every :meth:`ComponentAlgebra.discover` call.
    """
    from repro.core.strong import StrongViewAnalysis

    states = space.states
    source = space.poset
    identity_map: Dict[Hashable, Hashable] = dict(zip(states, raw_table))
    morphism = PosetMorphism(source, source, identity_map)
    morphism._cache["monotone"] = True
    morphism._cache["admits_lp"] = True
    has_bottom = source.has_bottom()
    morphism._cache["lri"] = has_bottom
    morphism._cache["down_stat"] = True
    identity_table = {state: state for state in states}
    analysis = StrongViewAnalysis(
        view=view,
        space=space,
        morphism=morphism,
        is_monotone=True,
        preserves_bottom=has_bottom,
        admits_least_preimages=True,
        sharp_is_monotone=has_bottom,
        is_downward_stationary=True,
        sharp=dict(identity_table),
        theta=identity_table,
    )
    if analysis.is_strong:
        analysis._theta_key_cache = tuple(range(len(states)))
    return analysis


def _analyze_view_fast(
    view: View, space: StateSpace, bulk: bool
) -> StrongViewAnalysis:
    from repro.core.strong import StrongViewAnalysis

    states = space.states
    n = len(states)
    source = space.poset
    below_s = source.leq_matrix()

    raw_table = view.image_table(space)
    if raw_table == states:
        return _analyze_identity_like(view, space, raw_table)
    image_states = sorted_instances(set(raw_table))
    target = image_poset_bitset(image_states)
    below_t = target.leq_matrix()
    target_index = {state: i for i, state in enumerate(image_states)}
    fidx = [target_index[image] for image in raw_table]

    table: Dict[Hashable, Hashable] = dict(zip(states, raw_table))
    morphism = PosetMorphism(source, target, table)

    if bulk:
        is_monotone = pullback_monotone(below_s, below_t, fidx)
    else:
        is_monotone = _monotone_on_comparable_pairs(below_s, below_t, fidx)
    morphism._cache["monotone"] = is_monotone

    preserves_bottom = (
        source.has_bottom()
        and target.has_bottom()
        and table[source.bottom()] == target.bottom()
    )

    # Fibers of gamma' as masks over source state indices.
    m = len(image_states)
    fibers = fiber_masks(fidx, m)
    # Least preimage per image state: the fiber member whose up-set
    # contains the entire fiber (it is below every other member).
    # States are ordered by size, so the least element (when it exists)
    # tends to be an early set bit.
    up_s = source._up_matrix()
    sharp_idx: List[int] = [-1] * m
    admits_lp = True
    ticker = StrideTicker()
    for f in range(m):
        ticker.tick()
        fiber = fibers[f]
        probe = fiber
        least: Optional[int] = None
        while probe:  # reprolint: holds-guard -- bounded by the fiber
            # popcount; the enclosing per-fiber loop is stride-ticked
            x = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            if fiber & ~up_s[x] == 0:
                least = x
                break
        if least is None:
            admits_lp = False
            break
        sharp_idx[f] = least
    ticker.flush()
    morphism._cache["admits_lp"] = admits_lp

    sharp_table: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    theta_table: Optional[Dict[DatabaseInstance, DatabaseInstance]] = None
    theta_idx: Optional[List[int]] = None
    sharp_monotone = False
    downward_stationary = False
    if admits_lp:
        sharp_map: Dict[Hashable, Hashable] = {
            image_states[f]: states[sharp_idx[f]] for f in range(m)
        }
        sharp_table = cast(
            Dict[DatabaseInstance, DatabaseInstance], sharp_map
        )
        sharp = PosetMorphism(target, source, sharp_map)
        if bulk:
            sharp_order_ok = pullback_monotone(below_t, below_s, sharp_idx)
        else:
            sharp_order_ok = _monotone_on_comparable_pairs(
                below_t, below_s, sharp_idx
            )
        sharp._cache["monotone"] = sharp_order_ok
        # `sharp_is_monotone` mirrors the naive path's sharp.is_morphism():
        # monotone *and* bottom-preserving.
        sharp_monotone = sharp_order_ok and (
            target.has_bottom()
            and source.has_bottom()
            and sharp_map[target.bottom()] == source.bottom()
        )
        morphism._cache["lri"] = admits_lp and sharp_monotone

        lp_mask = 0
        ticker = StrideTicker()
        for f in range(m):
            ticker.tick()
            lp_mask |= 1 << sharp_idx[f]
        downward_stationary = True
        probe = lp_mask
        while probe:
            ticker.tick()
            x = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            if below_s[x] & ~lp_mask:
                downward_stationary = False
                break
        ticker.flush()
        morphism._cache["down_stat"] = downward_stationary

        theta_idx = [sharp_idx[f] for f in fidx]
        theta_table = {states[i]: states[theta_idx[i]] for i in range(n)}

    analysis = StrongViewAnalysis(
        view=view,
        space=space,
        morphism=morphism,
        is_monotone=is_monotone,
        preserves_bottom=preserves_bottom,
        admits_least_preimages=admits_lp,
        sharp_is_monotone=sharp_monotone,
        is_downward_stationary=downward_stationary,
        sharp=sharp_table,
        theta=theta_table,
    )
    if analysis.is_strong and theta_idx is not None:
        analysis._theta_key_cache = tuple(theta_idx)
    return analysis
