"""Kernel-mode selection: ``bitset`` (default) vs ``naive``.

The bitset kernel is a pure optimisation -- both modes compute the same
state spaces, posets, tables, and algebras, and the equivalence suite
enforces that.  The ``naive`` mode exists as an escape hatch (debugging,
cross-checking, benchmarking the speedup itself) and is selected with::

    REPRO_KERNEL=naive python ...

or, programmatically and temporarily, with::

    with use_kernel("naive"):
        ...
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ReproError

KERNEL_ENV_VAR = "REPRO_KERNEL"

BITSET = "bitset"
NAIVE = "naive"
_VALID_MODES = (BITSET, NAIVE)

#: Process-local override installed by :func:`use_kernel`; wins over the
#: environment variable while active.
_override: Optional[str] = None


def _validated(mode: str, origin: str) -> str:
    normalized = mode.strip().lower()
    if normalized not in _VALID_MODES:
        raise ReproError(
            f"unknown kernel mode {mode!r} (from {origin}); "
            f"expected one of {_VALID_MODES}"
        )
    return normalized


def kernel_mode() -> str:
    """The active kernel mode: ``"bitset"`` or ``"naive"``.

    Resolution order: :func:`use_kernel` override, then the
    ``REPRO_KERNEL`` environment variable, then the default ``bitset``.
    """
    if _override is not None:
        return _override
    env = os.environ.get(KERNEL_ENV_VAR)
    if env is None:
        return BITSET
    return _validated(env, f"${KERNEL_ENV_VAR}")


def bitset_enabled() -> bool:
    """True iff the bitset kernel is active."""
    return kernel_mode() == BITSET


@contextmanager
def use_kernel(mode: str) -> Iterator[str]:
    """Context manager pinning the kernel mode (reentrant)."""
    global _override
    mode = _validated(mode, "use_kernel()")
    previous = _override
    _override = mode
    try:
        yield mode
    finally:
        _override = previous
