"""Kernel-mode selection: ``bulk`` (default) vs ``bitset`` vs ``naive``.

The fast kernels are pure optimisations -- all modes compute the same
state spaces, posets, tables, and algebras, and the equivalence suite
enforces that.  Three rungs exist:

* ``bulk`` (the default) -- word-packed bulk bitwise passes
  (:mod:`repro.kernel.bulkops`): whole-table sweeps of ``&``/``|``/
  ``^``/``bit_count`` over wide Python ints;
* ``bitset`` -- per-state mask arithmetic (the PR-1 kernel);
* ``naive`` -- the original tuple-by-tuple code, kept as the reference
  implementation and the bottom rung of the degradation ladder.

Selection::

    REPRO_KERNEL=naive python ...

or, programmatically and temporarily, with::

    with use_kernel("naive"):
        ...

``REPRO_KERNEL_BULK=0`` (also ``off``/``false``/``no``) is the bulk
kill switch: it downgrades the bulk kernel to ``bitset`` everywhere --
including explicit ``REPRO_KERNEL=bulk`` / ``use_kernel("bulk")``
requests -- so an operator can disable the bulk passes without touching
code or test parametrisations.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ReproError

KERNEL_ENV_VAR = "REPRO_KERNEL"
#: Kill switch for the bulk kernel (``0``/``off``/``false``/``no``).
BULK_ENV_VAR = "REPRO_KERNEL_BULK"

BULK = "bulk"
BITSET = "bitset"
NAIVE = "naive"
_VALID_MODES = (BULK, BITSET, NAIVE)
_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

#: Process-local override installed by :func:`use_kernel`; wins over the
#: environment variable while active.
_override: Optional[str] = None


def _validated(mode: str, origin: str) -> str:
    normalized = mode.strip().lower()
    if normalized not in _VALID_MODES:
        raise ReproError(
            f"unknown kernel mode {mode!r} (from {origin}); "
            f"expected one of {_VALID_MODES}"
        )
    return normalized


def bulk_kill_switch_active() -> bool:
    """True iff ``REPRO_KERNEL_BULK`` disables the bulk kernel."""
    raw = os.environ.get(BULK_ENV_VAR)
    return raw is not None and raw.strip().lower() in _DISABLED_VALUES


def kernel_mode() -> str:
    """The active kernel mode: ``"bulk"``, ``"bitset"``, or ``"naive"``.

    Resolution order: :func:`use_kernel` override, then the
    ``REPRO_KERNEL`` environment variable, then the default ``bulk``.
    The ``REPRO_KERNEL_BULK`` kill switch downgrades a resolved ``bulk``
    to ``bitset`` regardless of where it came from.
    """
    if _override is not None:
        mode = _override
    else:
        env = os.environ.get(KERNEL_ENV_VAR)
        mode = BULK if env is None else _validated(env, f"${KERNEL_ENV_VAR}")
    if mode == BULK and bulk_kill_switch_active():
        return BITSET
    return mode


def bitset_enabled() -> bool:
    """True iff the bitset kernel (exactly) is active."""
    return kernel_mode() == BITSET


def bulk_enabled() -> bool:
    """True iff the bulk kernel is active."""
    return kernel_mode() == BULK


def fast_kernel_enabled() -> bool:
    """True iff any mask-based kernel (bulk or bitset) is active.

    Call sites that only care about "masks vs frozensets" (state-space
    enumeration, poset construction) branch on this; call sites with a
    dedicated bulk twin branch on the exact mode.
    """
    return kernel_mode() != NAIVE


@contextmanager
def use_kernel(mode: str) -> Iterator[str]:
    """Context manager pinning the kernel mode (reentrant)."""
    global _override
    mode = _validated(mode, "use_kernel()")
    previous = _override
    _override = mode
    try:
        yield mode
    finally:
        _override = previous
