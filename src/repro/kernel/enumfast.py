"""Per-relation constraints compiled to bitmask predicates.

``enumerate_instances`` filters each relation's candidate subsets
against the constraints that mention only that relation, *before* the
cross product over relations is formed.  The naive implementation
builds a probe :class:`DatabaseInstance` per subset and runs the
generic ``Constraint.holds``; this module instead compiles each
supported constraint once, against the relation's tuple universe, into
a closure over a subset bitmask:

* **typed columns** -- an allowed-rows mask; a subset is legal iff it
  contains no disallowed row (one AND);
* **functional dependency** -- per-row conflict masks (rows agreeing on
  the LHS but not the RHS); a subset is legal iff no member row meets
  its conflict mask;
* **join dependency** -- per-row "same projection" masks per JD
  component; a subset is illegal iff some universe row outside it has
  every component projection present inside it (a phantom join row);
* anything else (single-relation TGDs/EGDs, formula constraints) falls
  back to decoding the subset and running ``holds`` on a probe
  instance, exactly like the naive path.

Compilation is linear-ish in the universe; evaluation is a handful of
integer operations per candidate subset.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.constraints import (
    Constraint,
    FunctionalDependency,
    JoinDependency,
    TypedColumnsConstraint,
)
from repro.relational.instances import DatabaseInstance
from repro.relational.relations import Relation, Row
from repro.relational.schema import Schema
from repro.kernel.bulkops import StrideTicker
from repro.resilience.faults import current_plan
from repro.resilience.guard import current_guard
from repro.typealgebra.assignment import TypeAssignment

MaskPredicate = Callable[[int], bool]


def _attribute_positions(
    schema: Schema, relation: str, attributes: Sequence[str]
) -> Tuple[int, ...]:
    rel_schema = schema.relation(relation)
    return tuple(rel_schema.position(attr) for attr in attributes)


def _compile_typed_columns_mask(
    constraint: TypedColumnsConstraint,
    rows: Sequence[Row],
    assignment: TypeAssignment,
) -> int:
    """Bitmask of the universe rows satisfying the column types."""
    extensions = [assignment.extension(t) for t in constraint.column_types]
    allowed = 0
    guard = current_guard()
    for i, row in enumerate(rows):
        if guard is not None:
            guard.tick()
        if len(row) != len(extensions):
            continue
        if all(value in ext for value, ext in zip(row, extensions)):
            allowed |= 1 << i
    return allowed


def _compile_fd(
    constraint: FunctionalDependency,
    schema: Schema,
    rows: Sequence[Row],
) -> MaskPredicate:
    lhs = _attribute_positions(schema, constraint.relation, constraint.lhs)
    rhs = _attribute_positions(schema, constraint.relation, constraint.rhs)
    conflicts: List[int] = [0] * len(rows)
    by_lhs: Dict[Row, List[int]] = {}
    guard = current_guard()
    for i, row in enumerate(rows):
        if guard is not None:
            guard.tick()
        by_lhs.setdefault(tuple(row[p] for p in lhs), []).append(i)
    for group in by_lhs.values():
        if guard is not None:
            guard.tick()
        if len(group) < 2:
            continue
        for i in group:
            value = tuple(rows[i][p] for p in rhs)
            for j in group:
                if j != i and tuple(rows[j][p] for p in rhs) != value:
                    conflicts[i] |= 1 << j
    interesting = 0
    for i, conflict in enumerate(conflicts):
        if guard is not None:
            guard.tick()
        if conflict:
            interesting |= 1 << i

    def predicate(mask: int) -> bool:
        probe = mask & interesting
        # reprolint: disable=RL002 -- bounded by one candidate subset's
        # conflict rows; the enumeration loop consuming this predicate
        # ticks per candidate (legal_subset_masks)
        while probe:
            i = (probe & -probe).bit_length() - 1
            probe &= probe - 1
            if mask & conflicts[i]:
                return False
        return True

    return predicate


def _compile_jd(
    constraint: JoinDependency,
    schema: Schema,
    rows: Sequence[Row],
) -> MaskPredicate:
    rel_schema = schema.relation(constraint.relation)
    covered = {attr for comp in constraint.components for attr in comp}
    if covered != set(rel_schema.attributes):
        raise SchemaError(
            f"join dependency components must cover {rel_schema.attributes}"
        )
    positions = [
        _attribute_positions(schema, constraint.relation, comp)
        for comp in constraint.components
    ]
    # For each universe row, one mask per JD component of the universe
    # rows sharing its projection on that component.  The row is in the
    # join of a subset's projections iff each of these masks meets the
    # subset.
    same_projection: List[Tuple[int, ...]] = []
    groups: List[Dict[Row, int]] = []
    guard = current_guard()
    for pos in positions:
        grouped: Dict[Row, int] = {}
        for i, row in enumerate(rows):
            if guard is not None:
                guard.tick()
            key = tuple(row[p] for p in pos)
            grouped[key] = grouped.get(key, 0) | (1 << i)
        groups.append(grouped)
    for row in rows:
        if guard is not None:
            guard.tick()
        same_projection.append(
            tuple(
                grouped[tuple(row[p] for p in pos)]
                for pos, grouped in zip(positions, groups)
            )
        )
    row_count = len(rows)

    def predicate(mask: int) -> bool:
        if not mask:
            return True
        # reprolint: disable=RL002 -- one pass over the (fixed) tuple
        # universe per candidate subset; the enumeration loop consuming
        # this predicate ticks per candidate (legal_subset_masks)
        for i in range(row_count):
            if (mask >> i) & 1:
                continue
            needs = same_projection[i]
            phantom = True
            for need in needs:  # reprolint: disable=RL002 -- as above

                if not mask & need:
                    phantom = False
                    break
            if phantom:
                return False
        return True

    return predicate


def _compile_probe_fallback(
    constraint: Constraint,
    schema: Schema,
    relation: str,
    rows: Sequence[Row],
    assignment: TypeAssignment,
) -> MaskPredicate:
    """Generic fallback: decode the subset and run ``holds``."""
    arities = schema.arities()
    arity = arities[relation]
    other_empty = {
        other: Relation((), other_arity)
        for other, other_arity in arities.items()
        if other != relation
    }

    def predicate(mask: int) -> bool:
        subset = [rows[i] for i in range(len(rows)) if (mask >> i) & 1]
        probe = DatabaseInstance(
            {**other_empty, relation: Relation(subset, arity)}
        )
        return constraint.holds(probe, schema, assignment)

    return predicate


def compile_relation_filter(
    schema: Schema,
    assignment: TypeAssignment,
    relation: str,
    rows: Sequence[Row],
    constraints: Sequence[Constraint],
) -> Tuple[int, Tuple[MaskPredicate, ...]]:
    """Compile single-relation constraints against a tuple universe.

    Returns ``(allowed, predicates)``: *allowed* is the mask of rows any
    legal subset may draw from (typed-column filtering), *predicates*
    must all accept a subset mask for the subset to be legal.
    """
    allowed = (1 << len(rows)) - 1 if rows else 0
    predicates: List[MaskPredicate] = []
    # reprolint: disable=RL002 -- bounded by the schema's declared
    # constraint list; runs once per compile, not per state
    for constraint in constraints:
        if isinstance(constraint, TypedColumnsConstraint):
            allowed &= _compile_typed_columns_mask(
                constraint, rows, assignment
            )
        elif isinstance(constraint, FunctionalDependency):
            predicates.append(_compile_fd(constraint, schema, rows))
        elif isinstance(constraint, JoinDependency):
            predicates.append(_compile_jd(constraint, schema, rows))
        else:
            predicates.append(
                _compile_probe_fallback(
                    constraint, schema, relation, rows, assignment
                )
            )
    return allowed, tuple(predicates)


def legal_subset_masks(
    schema: Schema,
    assignment: TypeAssignment,
    relation: str,
    rows: Sequence[Row],
    constraints: Sequence[Constraint],
) -> Iterator[int]:
    """Yield the legal subset masks of one relation, in ascending order.

    Ascending mask order matches the naive path's subset enumeration,
    so both kernels produce states in the same sequence.
    """
    allowed, predicates = compile_relation_filter(
        schema, assignment, relation, rows, constraints
    )
    ticker = StrideTicker()
    plan = current_plan()
    sub = 0
    while True:
        # Guard ticks are amortized per stride; the fault check stays
        # per candidate so chaos plans keep their exact trigger counts.
        ticker.tick()
        if plan is not None:
            plan.check("enumeration.step")
        if all(predicate(sub) for predicate in predicates):
            yield sub
        if sub == allowed:
            break
        # Next submask of `allowed` in ascending numeric order.
        sub = (sub - allowed) & allowed
    ticker.flush()
