"""The mask-based state-space kernels (bulk and bitset).

Every analysis in the library -- enumeration of ``LDB(D, mu)``, the
⊥-poset of states, kernels, strongness, component discovery -- bottoms
out in set operations over enumerated database states.  This package
encodes each :class:`~repro.relational.instances.DatabaseInstance` as a
single Python ``int`` bitmask over a fixed tuple table, so subset
tests, unions, intersections, and symmetric differences become single
integer operations instead of relation-by-relation frozenset work; the
bulk kernel further packs whole *families* of masks into single wide
ints and derives tables with O(words) bitwise sweeps.

The kernel sits *underneath* the public frozenset-based API: callers
keep constructing and receiving :class:`DatabaseInstance` objects, and
the hot paths (``enumerate_instances``, ``StateSpace.poset``,
``analyze_view``, ``View.image_table``) transparently switch to mask
arithmetic.  Modules:

* :mod:`~repro.kernel.config` -- kernel-mode selection.  The
  ``REPRO_KERNEL`` environment variable (``bulk``, the default,
  ``bitset``, or ``naive``) is the escape hatch back to the simpler
  implementations; :func:`use_kernel` overrides it per test, and
  ``REPRO_KERNEL_BULK=0`` downgrades bulk to bitset everywhere.
* :mod:`~repro.kernel.bitspace` -- :class:`TupleCodec`, the
  instance <-> bitmask round trip.
* :mod:`~repro.kernel.bulkops` -- word-packed bulk primitives: the
  packed bit-matrix transpose, pulled-back monotonicity, fiber masks,
  read-set restriction keys, and the amortized ``StrideTicker`` guard
  discipline.
* :mod:`~repro.kernel.enumfast` -- per-relation constraints (FDs, JDs,
  typed columns) precompiled to mask predicates for enumeration.
* :mod:`~repro.kernel.strongfast` -- the strong-view analysis computed
  on index vectors and down-set masks (bitset) or word-packed pulled
  selectors (bulk).

An equivalence test suite (``tests/kernel/``) asserts all kernels
produce identical state spaces, kernels, endomorphism tables, and
component algebras on the paper scenarios.
"""

from repro.kernel.config import KERNEL_ENV_VAR, kernel_mode, use_kernel
from repro.kernel.bitspace import TupleCodec

__all__ = [
    "KERNEL_ENV_VAR",
    "TupleCodec",
    "kernel_mode",
    "use_kernel",
]
