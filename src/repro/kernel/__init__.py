"""The bitset state-space kernel.

Every analysis in the library -- enumeration of ``LDB(D, mu)``, the
⊥-poset of states, kernels, strongness, component discovery -- bottoms
out in set operations over enumerated database states.  This package
encodes each :class:`~repro.relational.instances.DatabaseInstance` as a
single Python ``int`` bitmask over a fixed tuple table, so subset
tests, unions, intersections, and symmetric differences become single
integer operations instead of relation-by-relation frozenset work.

The kernel sits *underneath* the public frozenset-based API: callers
keep constructing and receiving :class:`DatabaseInstance` objects, and
the hot paths (``enumerate_instances``, ``StateSpace.poset``,
``analyze_view``) transparently switch to mask arithmetic.  Modules:

* :mod:`~repro.kernel.config` -- kernel-mode selection.  The
  ``REPRO_KERNEL`` environment variable (``bitset``, the default, or
  ``naive``) is the escape hatch back to the original tuple-by-tuple
  implementations; :func:`use_kernel` overrides it per test.
* :mod:`~repro.kernel.bitspace` -- :class:`TupleCodec`, the
  instance <-> bitmask round trip.
* :mod:`~repro.kernel.enumfast` -- per-relation constraints (FDs, JDs,
  typed columns) precompiled to mask predicates for enumeration.
* :mod:`~repro.kernel.strongfast` -- the strong-view analysis computed
  on index vectors and down-set masks.

An equivalence test suite (``tests/kernel/``) asserts both kernels
produce identical state spaces, kernels, endomorphism tables, and
component algebras on the paper scenarios.
"""

from repro.kernel.config import KERNEL_ENV_VAR, kernel_mode, use_kernel
from repro.kernel.bitspace import TupleCodec

__all__ = [
    "KERNEL_ENV_VAR",
    "TupleCodec",
    "kernel_mode",
    "use_kernel",
]
