"""Integer encoding of database instances over a fixed tuple table.

A :class:`TupleCodec` fixes a finite table of ``(relation, row)`` slots
and assigns each slot one bit.  A :class:`DatabaseInstance` whose rows
all lie in the table is then a single Python ``int``, and Notational
Convention 1.2.3's relation-by-relation set operations collapse to
machine integer operations::

    a.issubset(b)              <->  enc(a) & ~enc(b) == 0
    a.union(b)                 <->  enc(a) | enc(b)
    a.intersection(b)          <->  enc(a) & enc(b)
    a.symmetric_difference(b)  <->  enc(a) ^ enc(b)

Two constructions cover the library's needs:

* :meth:`TupleCodec.from_universe` -- the full typed tuple universe of a
  schema (used by enumeration, where candidate subsets range over it);
* :meth:`TupleCodec.from_instances` -- only the rows actually observed
  in a family of states (used by :class:`StateSpace` and view-image
  posets, where ``LDB`` is often far smaller than the universe, and
  where generator-built states may contain rows outside any typed
  universe).

Bit layout is deterministic: relations in sorted name order, rows in
:func:`repro.relational.relations._sort_key` order within each
relation, so equal state families always produce equal masks.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import ReproError
from repro.relational.instances import DatabaseInstance
from repro.relational.relations import Relation, Row, _sort_key
from repro.relational.schema import Schema
from repro.resilience.faults import fault_check
from repro.resilience.guard import current_guard
from repro.typealgebra.assignment import TypeAssignment


def universe_rows(
    schema: Schema, relation: str, assignment: TypeAssignment
) -> Tuple[Row, ...]:
    """All tuples a relation could contain, per its column types."""
    rel_schema = schema.relation(relation)
    column_values = [
        assignment.sorted_extension(t)
        for t in rel_schema.effective_column_types()
    ]
    return tuple(itertools.product(*column_values))


class TupleCodec:
    """A fixed ``(relation, row) -> bit`` table with encode/decode."""

    __slots__ = ("_arities", "_bit_of", "_slots", "_names")

    def __init__(
        self,
        arities: Dict[str, int],
        rows_by_relation: Dict[str, Tuple[Row, ...]],
    ) -> None:
        self._arities: Dict[str, int] = dict(arities)
        self._names: Tuple[str, ...] = tuple(sorted(self._arities))
        self._bit_of: Dict[Tuple[str, Row], int] = {}
        slots: List[Tuple[str, Row]] = []
        guard = current_guard()
        for name in self._names:
            for row in rows_by_relation.get(name, ()):
                if guard is not None:
                    guard.tick()
                slot = (name, row)
                if slot in self._bit_of:
                    raise ReproError(f"duplicate codec slot {slot!r}")
                self._bit_of[slot] = len(slots)
                slots.append(slot)
        self._slots: Tuple[Tuple[str, Row], ...] = tuple(slots)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_universe(
        cls, schema: Schema, assignment: TypeAssignment
    ) -> "TupleCodec":
        """Codec over the full typed tuple universe of a schema."""
        return cls(
            schema.arities(),
            {
                rel.name: universe_rows(schema, rel.name, assignment)
                for rel in schema.relations
            },
        )

    @classmethod
    def from_instances(
        cls, instances: Iterable[DatabaseInstance]
    ) -> "TupleCodec":
        """Codec over exactly the rows observed in *instances*.

        All instances must share one signature (the first one seen fixes
        it); rows are deduplicated and sorted for a deterministic bit
        layout.
        """
        arities: Dict[str, int] = {}
        observed: Dict[str, Set[Row]] = {}
        first = True
        guard = current_guard()
        for instance in instances:
            if guard is not None:
                guard.tick()
            if first:
                for name, rel in instance.items():
                    arities[name] = rel.arity
                    observed[name] = set()
                first = False
            for name, rel in instance.items():
                if name not in observed:
                    raise ReproError(
                        f"instance adds unknown relation {name!r} to codec"
                    )
                observed[name].update(rel.rows)
        if first:
            raise ReproError("cannot build a codec from zero instances")
        return cls(
            arities,
            {
                name: tuple(sorted(rows, key=_sort_key))
                for name, rows in observed.items()
            },
        )

    # -- introspection --------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of bits (tuple slots)."""
        return len(self._slots)

    @property
    def slots(self) -> Tuple[Tuple[str, Row], ...]:
        """The ``(relation, row)`` slot per bit, in bit order."""
        return self._slots

    def arities(self) -> Dict[str, int]:
        """Relation name -> arity of the codec's signature."""
        return dict(self._arities)

    def bit(self, relation: str, row: Row) -> int:
        """The bit index of a slot (raises if not in the table)."""
        try:
            return self._bit_of[(relation, tuple(row))]
        except KeyError:
            raise ReproError(
                f"row {row!r} of relation {relation!r} is outside the "
                "codec's tuple table"
            ) from None

    # -- encode / decode ------------------------------------------------------

    def encode(self, instance: DatabaseInstance) -> int:
        """The bitmask of an instance (raises on out-of-table rows)."""
        mask = 0
        bit_of = self._bit_of
        # reprolint: disable=RL002 -- bounded by one instance's rows; the
        # per-family caller loop ticks (encode_all), and a guard lookup
        # here would tax the innermost hot path
        for name, rel in instance.items():
            for row in rel.rows:  # reprolint: disable=RL002 -- as above
                try:
                    mask |= 1 << bit_of[(name, row)]
                except KeyError:
                    raise ReproError(
                        f"row {row!r} of relation {name!r} is outside "
                        "the codec's tuple table"
                    ) from None
        return mask

    def encode_all(
        self, instances: Iterable[DatabaseInstance]
    ) -> Tuple[int, ...]:
        """Encode a family of instances (guard ticks amortized)."""
        from repro.kernel.bulkops import StrideTicker

        fault_check("kernel.encode")
        ticker = StrideTicker()
        masks: List[int] = []
        for instance in instances:
            ticker.tick()
            masks.append(self.encode(instance))
        ticker.flush()
        return tuple(masks)

    def decode(self, mask: int) -> DatabaseInstance:
        """The instance of a bitmask (inverse of :meth:`encode`)."""
        if mask < 0 or mask >> self.width:
            raise ReproError(
                f"mask {mask:#x} has bits outside the {self.width}-slot table"
            )
        rows: Dict[str, List[Row]] = {name: [] for name in self._names}
        # reprolint: disable=RL002 -- one bit per set slot: bounded by the
        # codec width for a single decode
        while mask:
            bit = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            name, row = self._slots[bit]
            rows[name].append(row)
        return DatabaseInstance(
            {
                name: Relation(rows[name], self._arities[name])
                for name in self._names
            }
        )

    def __repr__(self) -> str:
        return (
            f"TupleCodec({len(self._names)} relations, {self.width} slots)"
        )
