"""Word-packed bulk bitwise primitives (the ``bulk`` kernel's core).

The bitset kernel (PR 1) already encodes each state as one Python int,
but its derivations still run *per-state* Python loops over those ints.
This module packs whole families of masks into single wide integers and
replaces the inner loops with O(words) sweeps of ``&``/``|``/``^``/
``bit_count``:

* :func:`transpose_masks` -- a packed square bit-matrix transpose via
  the classic log-depth block-swap, used to derive a poset's up-matrix
  from its down-matrix in one pass instead of ``n^2`` bit probes;
* :func:`pullback_monotone` -- monotonicity of an indexed map between
  two posets decided by pulled-back down-set masks (one mask comparison
  per element, selectors memoized per distinct image), replacing the
  walk over every comparable pair;
* :func:`fiber_masks` / :func:`union_selected` -- preimage classes of a
  map as masks over source indices;
* :func:`restriction_key_mask` -- the codec-slot mask of a relation
  read set, which lets view image tables be evaluated once per distinct
  restriction instead of once per state;
* :class:`StrideTicker` -- amortized ``guard.tick`` bookkeeping: hot
  loops charge the guard once per ``REPRO_TICK_STRIDE`` iterations (256
  by default) with the stride accounted exactly in the step budget, so
  cooperative cancellation stays accurate without a per-state call.

Packing invariants (DESIGN.md "Word-packed memory layout"): bit ``i``
of every family-level mask refers to the ``i``-th element of the
deterministically ordered family (state order for state spaces, slot
order for codecs), and packed matrices are row-major with a
power-of-two row stride.  Nothing here changes what is *computed* --
only how -- so fingerprints, artifact keys, and every table are
byte-identical to the bitset and naive kernels.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.resilience.guard import ExecutionGuard, current_guard

__all__ = [
    "DEFAULT_TICK_STRIDE",
    "TICK_STRIDE_ENV_VAR",
    "UNION_CHUNK_BITS",
    "StrideTicker",
    "chunked_union_tables",
    "fiber_masks",
    "pullback_monotone",
    "restriction_key_mask",
    "tick_stride",
    "transpose_masks",
    "union_selected",
    "union_selected_chunked",
]

#: Environment knob: iterations per amortized ``guard.tick`` in kernel
#: hot loops (the stride is charged to the step budget in full).
TICK_STRIDE_ENV_VAR = "REPRO_TICK_STRIDE"
DEFAULT_TICK_STRIDE = 256


def tick_stride() -> int:
    """The amortized tick stride (``REPRO_TICK_STRIDE``, default 256).

    A malformed or non-positive value raises eagerly: a typo'd stride
    must not silently disable cooperative cancellation.
    """
    raw = os.environ.get(TICK_STRIDE_ENV_VAR)
    if raw is None or not raw.strip():
        return DEFAULT_TICK_STRIDE
    try:
        stride = int(raw)
    except ValueError:
        raise ReproError(
            f"${TICK_STRIDE_ENV_VAR} must be a positive integer, "
            f"got {raw!r}"
        ) from None
    if stride <= 0:
        raise ReproError(
            f"${TICK_STRIDE_ENV_VAR} must be a positive integer, "
            f"got {raw!r}"
        )
    return stride


class StrideTicker:
    """Amortized guard ticking for hot loops.

    Counts iterations locally and charges the installed
    :class:`~repro.resilience.guard.ExecutionGuard` one batched
    ``tick(stride)`` per stride, then :meth:`flush`\\ es the remainder,
    so ``guard.steps`` advances by *exactly* the number of iterations
    -- step budgets trip at the same totals as per-iteration ticking,
    just checked every *stride* iterations instead of every one.

    When no guard is installed every call is a cheap early return.
    """

    __slots__ = ("_guard", "_stride", "_pending")

    def __init__(
        self,
        guard: Optional[ExecutionGuard] = None,
        stride: Optional[int] = None,
    ) -> None:
        self._guard = current_guard() if guard is None else guard
        self._stride = tick_stride() if stride is None else stride
        self._pending = 0

    def tick(self) -> None:
        """Count one iteration; charge the guard once per stride."""
        if self._guard is None:
            return
        self._pending += 1
        if self._pending >= self._stride:
            pending = self._pending
            self._pending = 0
            self._guard.tick(pending)

    def flush(self) -> None:
        """Charge any remainder below a full stride (call after loops)."""
        if self._guard is not None and self._pending:
            pending = self._pending
            self._pending = 0
            self._guard.tick(pending)


# -- packed bit-matrix transpose ------------------------------------------------

#: Per-side cache of transpose levels: side -> ((shift, mask), ...).
_LEVEL_CACHE: Dict[int, Tuple[Tuple[int, int], ...]] = {}

#: Below this many rows the plain per-bit walk beats packing overhead.
_TRANSPOSE_MIN_SIDE = 64


def _transpose_levels(side: int) -> Tuple[Tuple[int, int], ...]:
    """The block-swap schedule for a ``side x side`` packed matrix.

    A packed row-major matrix with power-of-two row stride ``side``
    holds entry ``(r, c)`` at bit ``r*side + c``; transposition swaps
    row-bit ``k`` with column-bit ``k`` independently for each ``k``.
    Level ``k`` swaps every entry pair whose indices differ exactly in
    those two bits via the classic delta-exchange::

        t = (P ^ (P >> shift)) & mask ;  P ^= t ;  P ^= t << shift

    where ``shift = 2**k * (side - 1)`` and *mask* selects entries with
    column-bit ``k`` set and row-bit ``k`` clear.
    """
    levels = _LEVEL_CACHE.get(side)
    if levels is not None:
        return levels
    schedule: List[Tuple[int, int]] = []
    log = side.bit_length() - 1
    # reprolint: holds-guard -- log2(side)*side mask-construction steps,
    # computed once per side and cached for the process lifetime
    for k in range(log):
        block = 1 << k
        # Column pattern within one row: bits c < side with bit k set.
        column_pattern = 0
        for c in range(side):  # reprolint: holds-guard -- cached per side
            if (c >> k) & 1:
                column_pattern |= 1 << c
        # Rows with bit k clear, as a sum of row-base powers.
        row_bases = 0
        for r in range(side):  # reprolint: holds-guard -- cached per side
            if not (r >> k) & 1:
                row_bases |= 1 << (r * side)
        schedule.append((block * (side - 1), column_pattern * row_bases))
    levels = tuple(schedule)
    _LEVEL_CACHE[side] = levels
    return levels


def transpose_masks(rows: Sequence[int], width: int) -> List[int]:
    """Transpose a bit matrix of ``len(rows)`` rows by *width* columns.

    Returns *width* masks of ``len(rows)`` bits: bit ``i`` of output
    ``j`` equals bit ``j`` of ``rows[i]``.  For small matrices this is
    the straightforward per-bit walk; past ``_TRANSPOSE_MIN_SIDE`` the
    matrix is packed into one wide int (square, power-of-two side) and
    transposed with ``log2(side)`` whole-matrix delta-exchanges --
    O(words) big-int operations instead of O(popcount) Python steps.
    """
    n = len(rows)
    side = 1 << max(n - 1, width - 1, _TRANSPOSE_MIN_SIDE - 1).bit_length()
    if n < _TRANSPOSE_MIN_SIDE and width < _TRANSPOSE_MIN_SIDE:
        columns = [0] * width
        ticker = StrideTicker()
        for i, row in enumerate(rows):
            ticker.tick()
            probe = row
            while probe:  # reprolint: holds-guard -- bounded by the row
                # popcount; the enclosing per-row loop is stride-ticked
                low = probe & -probe
                probe ^= low
                columns[low.bit_length() - 1] |= 1 << i
        ticker.flush()
        return columns
    guard = current_guard()
    if guard is not None:
        # Pre-charge the whole pass: side*log(side) word-level sweeps.
        guard.tick(n)
    row_bytes = side // 8
    packed = int.from_bytes(
        b"".join(row.to_bytes(row_bytes, "little") for row in rows),
        "little",
    )
    # reprolint: holds-guard -- log2(side) whole-matrix delta exchanges;
    # the pass pre-charged the guard above
    for shift, mask in _transpose_levels(side):
        delta = (packed ^ (packed >> shift)) & mask
        packed ^= delta
        packed ^= delta << shift
    data = packed.to_bytes(side * row_bytes, "little")
    out_mask = (1 << n) - 1
    return [
        int.from_bytes(data[j * row_bytes : (j + 1) * row_bytes], "little")
        & out_mask
        for j in range(width)
    ]


# -- preimage classes and pulled-back orders ------------------------------------


def fiber_masks(fidx: Sequence[int], target_size: int) -> List[int]:
    """Preimage classes of an index map as masks over source indices.

    ``result[t]`` has bit ``i`` set iff ``fidx[i] == t`` -- the view's
    preimage class of target ``t``, word-packed.
    """
    selectors = [0] * target_size
    ticker = StrideTicker()
    for i, t in enumerate(fidx):
        ticker.tick()
        selectors[t] |= 1 << i
    ticker.flush()
    return selectors


def union_selected(selectors: Sequence[int], mask: int) -> int:
    """The union of ``selectors[t]`` over the set bits ``t`` of *mask*."""
    out = 0
    while mask:  # reprolint: holds-guard -- bounded by the popcount of
        # one selector mask; callers stride-tick per outer element
        low = mask & -mask
        mask ^= low
        out |= selectors[low.bit_length() - 1]
    return out


#: Chunk width of :func:`chunked_union_tables` (one table per byte).
UNION_CHUNK_BITS = 8


def chunked_union_tables(selectors: Sequence[int]) -> List[List[int]]:
    """Per-byte lookup tables for repeated :func:`union_selected` calls.

    Table ``c`` maps every byte value to the union of the selectors in
    chunk ``c`` picked by that byte's bits, built by one ``|`` per entry
    (each entry extends the entry with its lowest bit cleared).  A
    family queried once per state amortizes the ``256 * ceil(S/8)``
    precomputed entries immediately: each query collapses to one table
    OR per byte of the mask instead of one OR per set bit.
    """
    tables: List[List[int]] = []
    ticker = StrideTicker()
    for base in range(0, len(selectors), UNION_CHUNK_BITS):
        chunk = selectors[base : base + UNION_CHUNK_BITS]
        table = [0] * (1 << len(chunk))
        for value in range(1, len(table)):
            ticker.tick()
            low = value & -value
            table[value] = table[value ^ low] | chunk[low.bit_length() - 1]
        tables.append(table)
    ticker.flush()
    return tables


def union_selected_chunked(tables: Sequence[Sequence[int]], mask: int) -> int:
    """:func:`union_selected` through precomputed per-byte tables.

    *mask* must not extend past the selector family the tables were
    built from.
    """
    out = 0
    index = 0
    while mask:  # reprolint: holds-guard -- one iteration per byte of
        # the mask; callers stride-tick per outer element
        out |= tables[index][mask & 0xFF]
        mask >>= UNION_CHUNK_BITS
        index += 1
    return out


def pullback_monotone(
    below_source: Sequence[int],
    below_target: Sequence[int],
    fidx: Sequence[int],
) -> bool:
    """``x <= y  =>  f(x) <= f(y)`` decided by pulled-back down-sets.

    For each source element ``y`` the condition is one mask containment:
    ``below_source[y]`` must lie inside ``pull[f(y)]``, where
    ``pull[t] = {x : f(x) <= t}`` is the union of the preimage-class
    selectors over the down-set of ``t`` -- memoized per distinct image,
    so the whole check is O(n) mask ops plus O(m * m-popcount) selector
    unions, instead of a Python step per comparable pair.

    Equivalent to the bitset kernel's comparable-pair walk (incomparable
    pairs impose no condition; ``y`` itself is always in ``pull[f(y)]``).
    """
    selectors = fiber_masks(fidx, len(below_target))
    # Targets outside the image have empty selectors; restricting each
    # down-set to the image support shrinks the per-union bit walk from
    # O(|target|) to O(|image|).
    support = 0
    image_size = 0
    # reprolint: holds-guard -- one pass over the selector family; the
    # per-element loop below is stride-ticked
    for t, selector in enumerate(selectors):
        if selector:
            support |= 1 << t
            image_size += 1
    # One pulled mask is derived per distinct image element; when that
    # pays for the 256-entries-per-chunk precomputation, route the
    # unions through per-byte tables instead of per-bit walks.
    chunks = (len(selectors) + UNION_CHUNK_BITS - 1) // UNION_CHUNK_BITS
    tables = (
        chunked_union_tables(selectors)
        if (1 << UNION_CHUNK_BITS) * chunks < image_size * image_size // 4
        else None
    )
    pulled: Dict[int, int] = {}
    ticker = StrideTicker()
    for y, below_y in enumerate(below_source):
        ticker.tick()
        t = fidx[y]
        mask = pulled.get(t)
        if mask is None:
            if tables is not None:
                mask = union_selected_chunked(tables, below_target[t] & support)
            else:
                mask = union_selected(selectors, below_target[t] & support)
            pulled[t] = mask
        if below_y & ~mask:
            ticker.flush()
            return False
    ticker.flush()
    return True


# -- codec read-set restriction -------------------------------------------------


def restriction_key_mask(
    slots: Sequence[Tuple[str, object]], relations: Iterable[str]
) -> int:
    """The mask of codec slots belonging to the given relations.

    Restricting a state's mask to this key identifies its content on
    exactly those relations; states with equal restrictions are
    indistinguishable to any mapping whose read set lies inside them,
    so one evaluation per distinct restriction covers the whole family.
    """
    wanted = frozenset(relations)
    mask = 0
    ticker = StrideTicker()
    for bit, (name, _row) in enumerate(slots):
        ticker.tick()
        if name in wanted:
            mask |= 1 << bit
    ticker.flush()
    return mask
