"""``artifactd``: the stdlib HTTP artifact server for cross-host fleets.

The :class:`~repro.engine.store.ArtifactStore` made artifact reuse
process-wide, the local-dir and SQLite backends made it machine-wide;
this package makes it *fleet*-wide.  ``python -m repro.artifactd``
serves RPRO envelopes over plain HTTP/1.1, content-addressed by the
same ``(kind, fingerprint, kernel)`` triple every other backend keys
on, plus a lease endpoint mirroring
:class:`~repro.resilience.locks.FileLease` semantics (TTL + holder
token, last-writer-wins on expiry) so a fleet of workers on different
hosts still builds each contended artifact exactly once.

The server is deliberately dumb and deliberately strict at the edges:

* it stores and serves envelope *bytes* verbatim -- no unpickling, no
  interpretation -- so a server never needs the library version its
  clients run;
* every PUT is gated on the envelope's structural checksum
  (:func:`~repro.engine.backends.envelope.validate_envelope_structure`),
  so a connection that died mid-upload cannot poison the store with a
  torn payload;
* the envelope *version* byte is deliberately **not** checked here:
  mixed-version fleets may share one server, and version skew is the
  reading client's call (a silent miss), not the server's.

The client side is :class:`~repro.engine.backends.remote.RemoteBackend`
(``REPRO_STORE_BACKEND=remote``).
"""

from __future__ import annotations

from repro.artifactd.server import (
    ArtifactServer,
    DEFAULT_LEASE_TTL_MS,
    LeaseTable,
)

__all__ = ["ArtifactServer", "DEFAULT_LEASE_TTL_MS", "LeaseTable"]
