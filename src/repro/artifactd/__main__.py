"""``python -m repro.artifactd``: run the HTTP artifact server.

Serves RPRO envelopes until SIGTERM/SIGINT, then prints a final stats
snapshot as JSON and exits.  The first stdout line is a JSON readiness
record carrying the bound port (``--port=0`` asks the OS for a free
one), so fleet launchers and benchmarks can connect without racing::

    {"serving": true, "host": "127.0.0.1", "port": 40321, ...}

``--root=DIR`` mirrors every stored envelope to DIR so a restarted
server comes back warm; without it the store is memory-only and dies
with the process (fine for tests and benchmarks).

Exit status: 0 after a clean shutdown, 2 for bad usage.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from types import FrameType
from typing import List, Optional

from repro.artifactd.server import ArtifactServer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.artifactd",
        description="Serve content-addressed RPRO artifact envelopes"
        " over HTTP for cross-host build sharing.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="mirror envelopes to DIR so restarts keep the fleet warm"
        " (default: memory-only)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    daemon = ArtifactServer(host=args.host, port=args.port, root=args.root)
    daemon.start()

    stop_requested = threading.Event()

    def _request_stop(signum: int, frame: Optional[FrameType]) -> None:
        stop_requested.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_stop)

    print(
        json.dumps(
            {
                "serving": True,
                "host": daemon.host,
                "port": daemon.port,
                "root": daemon.root,
            }
        ),
        flush=True,
    )
    stop_requested.wait()
    stats = daemon.stats()
    daemon.stop()
    print(json.dumps({"stats": stats}), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
