"""The threaded HTTP artifact server behind ``python -m repro.artifactd``.

One :class:`ArtifactServer` owns three pieces of state, each guarded by
one lock: the envelope table (``(kind, fingerprint, kernel)`` -> enveloped
bytes, optionally mirrored to a directory so restarts keep the fleet
warm), the :class:`LeaseTable`, and the counters ``/stats`` reports.
Requests are served by :class:`http.server.ThreadingHTTPServer` -- one
daemon thread per connection, which is plenty for an artifact tier whose
operations are dict lookups and small file I/O.

Wire format (all non-artifact bodies are JSON):

====== ============================================ =======================
Method Path                                         Meaning
====== ============================================ =======================
GET    ``/artifact/<kind>/<fingerprint>/<kernel>``  envelope bytes or 404
PUT    ``/artifact/<kind>/<fingerprint>/<kernel>``  store (400 if damaged)
DELETE ``/artifact/<kind>/<fingerprint>/<kernel>``  best-effort, 204
POST   ``/lease/<kind>/<fingerprint>/<kernel>``     acquire (200) / 409
DELETE ``/lease/<kind>/<fingerprint>/<kernel>``     release (holder token)
POST   ``/sweep``                                   purge expired leases
GET    ``/stats``                                   counters snapshot
GET    ``/healthz``                                 liveness probe
====== ============================================ =======================

Lease semantics mirror :class:`~repro.resilience.locks.FileLease`:
a lease is ``(holder token, TTL)``; an expired lease is taken over by
the next acquirer (last-writer-wins -- the grant carries
``took_over: true`` so clients can count it), re-acquiring with the
same token refreshes the TTL, and releasing with a stale token is a
silent no-op (the lease already belongs to someone else).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import unquote

from repro.engine.backends.envelope import validate_envelope_structure
from repro.engine.keys import ArtifactKey

__all__ = ["ArtifactServer", "DEFAULT_LEASE_TTL_MS", "LeaseTable"]

#: Lease TTL applied when an acquire request names none.
DEFAULT_LEASE_TTL_MS = 30_000.0

#: Per-envelope size ceiling: a runaway upload must not take the whole
#: server's memory with it (413 when exceeded).
_MAX_ENVELOPE_BYTES = 64 * 1024 * 1024


class LeaseTable:
    """TTL leases keyed like artifacts, last-writer-wins on expiry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: Dict[Tuple[str, str, str], Tuple[str, float]] = {}

    def grant(
        self, key: Tuple[str, str, str], holder: str, ttl_ms: float
    ) -> Dict[str, object]:
        """Try to grant *key* to *holder* for *ttl_ms* milliseconds.

        Returns the JSON-ready verdict: ``granted`` plus ``took_over``
        on success, or the current holder and its remaining TTL on
        conflict.  A holder re-acquiring its own live lease refreshes
        the TTL (the remote client retries acquisition after transport
        hiccups, and a refresh must not read as contention).
        """
        now = time.monotonic()
        with self._lock:
            current = self._leases.get(key)
            took_over = False
            if current is not None:
                current_holder, expires_at = current
                if current_holder != holder and expires_at > now:
                    return {
                        "granted": False,
                        "holder": current_holder,
                        "expires_in_ms": round((expires_at - now) * 1e3, 3),
                    }
                took_over = current_holder != holder
            self._leases[key] = (holder, now + ttl_ms / 1e3)
            return {
                "granted": True,
                "holder": holder,
                "took_over": took_over,
                "ttl_ms": ttl_ms,
            }

    def release(self, key: Tuple[str, str, str], holder: str) -> bool:
        """Release *key* if *holder* still owns it; stale tokens no-op."""
        with self._lock:
            current = self._leases.get(key)
            if current is None or current[0] != holder:
                return False
            del self._leases[key]
            return True

    def sweep(self) -> int:
        """Purge expired leases eagerly; returns the count."""
        now = time.monotonic()
        with self._lock:
            expired = [
                key
                for key, (_, expires_at) in self._leases.items()
                if expires_at <= now
            ]
            for key in expired:
                del self._leases[key]
            return len(expired)

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)


class _ArtifactdHTTPServer(ThreadingHTTPServer):
    """The socket server; :class:`ArtifactServer` holds the state."""

    daemon_threads = True
    #: Back-reference set by :class:`ArtifactServer` before serving.
    artifactd: "ArtifactServer"

    def handle_error(
        self, request: object, client_address: object
    ) -> None:
        """Swallow peer-side disconnects; they are the client's business.

        A client (or chaos proxy) that resets mid-response produces a
        ``BrokenPipeError``/``ConnectionResetError`` in the handler
        thread -- expected wire weather, not a server bug, and the
        default traceback spray would drown real errors.
        """
        exc = sys.exception()
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Route one request against the owning :class:`ArtifactServer`."""

    protocol_version = "HTTP/1.1"
    server: _ArtifactdHTTPServer

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr chatter; counters are the log."""

    def _send_json(self, status: int, body: Dict[str, object]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_empty(self) -> None:
        # A 204 must carry no body: stray bytes after it would desync a
        # kept-alive connection.
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _send_bytes(self, blob: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> Optional[bytes]:
        raw_length = self.headers.get("Content-Length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            self._send_json(
                400,
                {
                    "error": "bad-request",
                    "message": f"bad Content-Length {raw_length!r}",
                },
            )
            return None
        if length > _MAX_ENVELOPE_BYTES:
            self._send_json(
                413,
                {
                    "error": "too-large",
                    "message": f"envelope of {length} bytes exceeds the"
                    f" {_MAX_ENVELOPE_BYTES}-byte ceiling",
                },
            )
            return None
        return self.rfile.read(length) if length > 0 else b""

    def _artifact_key(self, path: str) -> Optional[Tuple[str, str, str]]:
        """The ``(kind, fingerprint, kernel)`` of an artifact/lease path."""
        parts = [unquote(part) for part in path.split("/") if part]
        if len(parts) != 4 or not all(parts[1:]):
            self._send_json(
                400,
                {
                    "error": "bad-request",
                    "message": "expected"
                    " /{artifact|lease}/<kind>/<fingerprint>/<kernel>",
                },
            )
            return None
        return (parts[1], parts[2], parts[3])

    def _not_found(self) -> None:
        self._send_json(
            404,
            {
                "error": "not-found",
                "message": f"no route {self.command} {self.path}",
            },
        )

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        daemon = self.server.artifactd
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._send_json(200, daemon.health())
            return
        if path == "/stats":
            self._send_json(200, daemon.stats())
            return
        if path.startswith("/artifact/"):
            key = self._artifact_key(path)
            if key is None:
                return
            blob = daemon.get_artifact(key)
            if blob is None:
                self._send_json(
                    404, {"error": "not-found", "message": "no such artifact"}
                )
            else:
                self._send_bytes(blob)
            return
        self._not_found()

    def do_PUT(self) -> None:  # noqa: N802 -- http.server API
        daemon = self.server.artifactd
        path = self.path.partition("?")[0]
        if path.startswith("/artifact/"):
            key = self._artifact_key(path)
            if key is None:
                return
            blob = self._read_body()
            if blob is None:
                return
            if daemon.put_artifact(key, blob):
                self._send_empty()
            else:
                self._send_json(
                    400,
                    {
                        "error": "damaged-envelope",
                        "message": "payload failed the RPRO structural"
                        " check (magic/length/checksum); not stored",
                    },
                )
            return
        self._not_found()

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        daemon = self.server.artifactd
        path = self.path.partition("?")[0]
        if path == "/sweep":
            self._send_json(200, {"reclaimed": daemon.sweep()})
            return
        if path.startswith("/lease/"):
            key = self._artifact_key(path)
            if key is None:
                return
            body = self._read_body()
            if body is None:
                return
            try:
                fields = json.loads(body) if body else {}
            except ValueError:
                fields = None
            holder = (
                fields.get("holder") if isinstance(fields, dict) else None
            )
            if not isinstance(holder, str) or not holder:
                self._send_json(
                    400,
                    {
                        "error": "bad-request",
                        "message": "lease acquire needs a JSON body with"
                        ' a non-empty "holder" token',
                    },
                )
                return
            raw_ttl = (
                fields.get("ttl_ms", DEFAULT_LEASE_TTL_MS)
                if isinstance(fields, dict)
                else DEFAULT_LEASE_TTL_MS
            )
            ttl_ms = (
                float(raw_ttl)
                if isinstance(raw_ttl, (int, float)) and raw_ttl > 0
                else DEFAULT_LEASE_TTL_MS
            )
            verdict = daemon.lease(key, holder, ttl_ms)
            self._send_json(200 if verdict["granted"] else 409, verdict)
            return
        self._not_found()

    def do_DELETE(self) -> None:  # noqa: N802 -- http.server API
        daemon = self.server.artifactd
        path, _, query = self.path.partition("?")
        if path.startswith("/artifact/"):
            key = self._artifact_key(path)
            if key is None:
                return
            daemon.delete_artifact(key)
            self._send_empty()
            return
        if path.startswith("/lease/"):
            key = self._artifact_key(path)
            if key is None:
                return
            holder = ""
            for pair in query.split("&"):
                name, _, value = pair.partition("=")
                if name == "holder":
                    holder = unquote(value)
            daemon.release_lease(key, holder)
            self._send_empty()
            return
        self._not_found()


class ArtifactServer:
    """State + lifecycle of one artifact daemon (see module docs)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        root: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        #: Optional persistence directory: envelopes survive restarts.
        self.root = root
        self.leases = LeaseTable()
        self._lock = threading.Lock()
        self._artifacts: Dict[Tuple[str, str, str], bytes] = {}
        self._httpd: Optional[_ArtifactdHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        # -- counters (guarded by self._lock) --
        self._counters: Dict[str, int] = {
            "gets": 0,
            "get_hits": 0,
            "get_misses": 0,
            "puts": 0,
            "puts_rejected": 0,
            "deletes": 0,
            "lease_grants": 0,
            "lease_conflicts": 0,
            "lease_takeovers": 0,
            "lease_releases": 0,
            "swept_leases": 0,
            "corrupt_purged": 0,
        }

    # -- storage ---------------------------------------------------------------

    def get_artifact(self, key: Tuple[str, str, str]) -> Optional[bytes]:
        with self._lock:
            self._counters["gets"] += 1
            blob = self._artifacts.get(key)
        if blob is None and self.root is not None:
            blob = self._load_from_root(key)
        with self._lock:
            if blob is None:
                self._counters["get_misses"] += 1
            else:
                self._counters["get_hits"] += 1
        return blob

    def put_artifact(self, key: Tuple[str, str, str], blob: bytes) -> bool:
        """Store *blob* under *key* iff it is a structurally sound
        envelope; last-writer-wins.  Returns whether it was stored."""
        if not validate_envelope_structure(blob):
            with self._lock:
                self._counters["puts_rejected"] += 1
            return False
        with self._lock:
            self._artifacts[key] = blob
            self._counters["puts"] += 1
        if self.root is not None:
            self._save_to_root(key, blob)
        return True

    def delete_artifact(self, key: Tuple[str, str, str]) -> None:
        with self._lock:
            self._artifacts.pop(key, None)
            self._counters["deletes"] += 1
        if self.root is not None:
            try:
                self._root_path(key).unlink(missing_ok=True)
            # reprolint: disable=RL008 -- mirror-file cleanup is best-effort; a stale file is re-validated on load
            except OSError:
                pass

    def _root_path(self, key: Tuple[str, str, str]) -> Path:
        kind, fingerprint, kernel = key
        return Path(str(self.root)) / ArtifactKey(
            kind, fingerprint, kernel
        ).filename()

    def _load_from_root(
        self, key: Tuple[str, str, str]
    ) -> Optional[bytes]:
        """Fault in one envelope from the mirror directory, validated.

        A damaged mirror file (torn write from a crashed predecessor)
        is purged and counted -- corruption is paid for once, exactly
        like the file backends do it.
        """
        try:
            blob = self._root_path(key).read_bytes()
        except OSError:
            return None
        if not validate_envelope_structure(blob):
            with self._lock:
                self._counters["corrupt_purged"] += 1
            try:
                self._root_path(key).unlink(missing_ok=True)
            # reprolint: disable=RL008 -- purging a damaged mirror file is best-effort; it is already treated as absent
            except OSError:
                pass
            return None
        with self._lock:
            self._artifacts.setdefault(key, blob)
        return blob

    def _save_to_root(self, key: Tuple[str, str, str], blob: bytes) -> None:
        path = self._root_path(key)
        tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            tmp.replace(path)
        except OSError:
            # The mirror is an optimisation (warm restarts); the
            # in-memory table already holds the envelope.
            try:
                tmp.unlink(missing_ok=True)
            # reprolint: disable=RL008 -- temp-file cleanup after a failed mirror write; the memory table is authoritative
            except OSError:
                pass

    # -- leases ----------------------------------------------------------------

    def lease(
        self, key: Tuple[str, str, str], holder: str, ttl_ms: float
    ) -> Dict[str, object]:
        verdict = self.leases.grant(key, holder, ttl_ms)
        with self._lock:
            if verdict["granted"]:
                self._counters["lease_grants"] += 1
                if verdict.get("took_over"):
                    self._counters["lease_takeovers"] += 1
            else:
                self._counters["lease_conflicts"] += 1
        return verdict

    def release_lease(self, key: Tuple[str, str, str], holder: str) -> None:
        released = self.leases.release(key, holder)
        with self._lock:
            if released:
                self._counters["lease_releases"] += 1

    def sweep(self) -> int:
        reclaimed = self.leases.sweep()
        with self._lock:
            self._counters["swept_leases"] += reclaimed
        return reclaimed

    # -- introspection ---------------------------------------------------------

    def health(self) -> Dict[str, object]:
        with self._lock:
            artifacts = len(self._artifacts)
        return {
            "ok": True,
            "artifacts": artifacts,
            "leases": len(self.leases),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            artifacts = len(self._artifacts)
            stored_bytes = sum(len(blob) for blob in self._artifacts.values())
        return {
            "artifacts": artifacts,
            "stored_bytes": stored_bytes,
            "leases": len(self.leases),
            "root": self.root,
            "counters": counters,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Bind the listener (resolving ``--port=0``) and serve in a
        daemon thread; :meth:`stop` shuts it down."""
        self._started_at = time.monotonic()
        httpd = _ArtifactdHTTPServer((self.host, self.port), _Handler)
        httpd.artifactd = self
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="artifactd",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ArtifactServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
