"""Experiment harness: every paper example/theorem as a runnable check.

The paper (PODS 1984 theory) has no numbered tables or figures; its
evaluation is its worked examples and theorems.  Each becomes an
experiment here (E1-E12), returning an
:class:`~repro.harness.experiments.ExperimentResult` with the paper's
claim, the measured outcome, and a pass flag.  Benchmarks wrap these to
time the interesting parts; ``python -m repro.harness`` prints the full
report that ``EXPERIMENTS.md`` records.
"""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.harness.reporting import format_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "run_all",
    "run_experiment",
]
