"""Run every experiment and print the report: ``python -m repro.harness``.

``python -m repro.harness --markdown`` emits the per-experiment record
in the format used by ``EXPERIMENTS.md``.  ``--stats`` appends the
engine's artifact-cache counters: all requested experiments run through
one shared :class:`~repro.engine.engine.Engine`, so recurring universes
(the small ABCD chain of E8-E11, the two-unary universe of E7/E10/E12)
surface as cache hits rather than repeated enumerations.

``--deadline=MS`` bounds every derivation's wall-clock time (the
``REPRO_DEADLINE_MS`` environment variable supplies the same default);
an experiment whose derivations exceed it is reported as a deadline
failure instead of hanging the run.
"""

from __future__ import annotations

import sys
import time

from repro.engine.engine import Engine
from repro.errors import DeadlineExceededError
from repro.harness.experiments import ALL_EXPERIMENTS, run_experiment


def _markdown(results) -> str:
    lines = []
    for result, elapsed in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"### {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {result.paper_claim}.")
        lines.append("")
        lines.append(f"**Measured** ({status}, {elapsed:.2f}s):")
        lines.append("")
        for key, value in result.observations:
            lines.append(f"- {key}: `{value}`")
        lines.append("")
    return "\n".join(lines)


def _stats_report(engine: Engine) -> str:
    lines = ["engine artifact cache:"]
    for kind, counters in engine.stats().items():
        line = (
            f"  {kind}: {counters['hits']} hits, {counters['misses']} misses,"
            f" {counters['builds']} builds"
            f" ({counters['build_seconds']:.3f}s building)"
        )
        resilience = [
            f"{counters[name]} {label}"
            for name, label in (
                ("degradations", "degradations"),
                ("deadline_hits", "deadline hits"),
                ("corrupt_entries", "corrupt entries"),
                ("io_retries", "I/O retries"),
            )
            if counters[name]
        ]
        if resilience:
            line += f" [{', '.join(resilience)}]"
        lines.append(line)
    return "\n".join(lines)


def _deadline_ms(argv: list[str]) -> float | None:
    for arg in argv:
        if arg.startswith("--deadline="):
            return float(arg.split("=", 1)[1])
    return None


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default)."""
    markdown = "--markdown" in argv
    show_stats = "--stats" in argv
    deadline_ms = _deadline_ms(argv)
    requested = [a for a in argv if not a.startswith("--")] or list(
        ALL_EXPERIMENTS
    )
    unknown = [a for a in requested if a.upper() not in ALL_EXPERIMENTS]
    if unknown:
        known = ", ".join(ALL_EXPERIMENTS)
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known experiments: {known}")
        return 2
    engine = Engine(deadline_ms=deadline_ms)
    failures = 0
    results = []
    for experiment_id in requested:
        start = time.perf_counter()
        try:
            result = run_experiment(experiment_id.upper(), engine=engine)
        except DeadlineExceededError as exc:
            elapsed = time.perf_counter() - start
            print(f"{experiment_id.upper()}: DEADLINE EXCEEDED -- {exc}")
            print(f"  elapsed: {elapsed:.2f}s")
            print()
            failures += 1
            continue
        elapsed = time.perf_counter() - start
        results.append((result, elapsed))
        if not markdown:
            print(result.summary())
            print(f"  elapsed: {elapsed:.2f}s")
            print()
        if not result.passed:
            failures += 1
    if markdown:
        print(_markdown(results))
        if show_stats:
            print(_stats_report(engine))
        return 1 if failures else 0
    if show_stats:
        print(_stats_report(engine))
        print()
    if failures:
        print(f"{failures} experiment(s) FAILED")
        return 1
    print(f"all {len(requested)} experiments passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
