"""Run every experiment and print the report: ``python -m repro.harness``.

``python -m repro.harness --markdown`` emits the per-experiment record
in the format used by ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS


def _markdown(results) -> str:
    lines = []
    for result, elapsed in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"### {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {result.paper_claim}.")
        lines.append("")
        lines.append(f"**Measured** ({status}, {elapsed:.2f}s):")
        lines.append("")
        for key, value in result.observations:
            lines.append(f"- {key}: `{value}`")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default)."""
    markdown = "--markdown" in argv
    requested = [a for a in argv if not a.startswith("--")] or list(
        ALL_EXPERIMENTS
    )
    failures = 0
    results = []
    for experiment_id in requested:
        func = ALL_EXPERIMENTS[experiment_id.upper()]
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        results.append((result, elapsed))
        if not markdown:
            print(result.summary())
            print(f"  elapsed: {elapsed:.2f}s")
            print()
        if not result.passed:
            failures += 1
    if markdown:
        print(_markdown(results))
        return 1 if failures else 0
    if failures:
        print(f"{failures} experiment(s) FAILED")
        return 1
    print(f"all {len(requested)} experiments passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
