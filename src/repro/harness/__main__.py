"""Run every experiment and print the report: ``python -m repro.harness``.

``python -m repro.harness --markdown`` emits the per-experiment record
in the format used by ``EXPERIMENTS.md``.  ``--stats`` appends the
engine's artifact-cache counters: all requested experiments run through
one shared :class:`~repro.engine.engine.Engine`, so recurring universes
(the small ABCD chain of E8-E11, the two-unary universe of E7/E10/E12)
surface as cache hits rather than repeated enumerations.

``--deadline=MS`` bounds every derivation's wall-clock time (the
``REPRO_DEADLINE_MS`` environment variable supplies the same default);
an experiment whose derivations exceed it is reported as a deadline
failure instead of hanging the run.

``--workers=N`` services the experiments from N threads sharing the
one engine -- a live demonstration of the concurrency layer: repeated
universes coalesce into single builds (the ``coalesced`` counter in
``--stats``) instead of racing, and the report order stays
deterministic regardless of completion order.

``--backend=local|sqlite`` with ``--store-url=PATH`` selects the
artifact persistence backend (the ``REPRO_STORE_BACKEND`` /
``REPRO_STORE_URL`` environment variables spell the same thing);
re-running with a warm store turns every enumeration into a backend
hit, visible in ``--stats``.

``--serve`` hands the invocation to the serving tier (``python -m
repro.serving``): an async HTTP update server with admission control
and graceful SIGTERM drain, forwarding ``--host/--port/--max-inflight/
--queue-depth/--drain-ms/--deadline-ms/--store/--warm-url``.
``--load-gen --port=N`` drives a running server with the threaded load
generator (``--clients``, ``--duration`` seconds, optional
``--deadline`` ms per request) and prints the JSON
:class:`~repro.serving.client.LoadReport`.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.backends import create_backend
from repro.engine.engine import Engine
from repro.errors import BackendConfigError, DeadlineExceededError
from repro.harness.experiments import ALL_EXPERIMENTS, run_experiment


def _markdown(results) -> str:
    lines = []
    for result, elapsed in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"### {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {result.paper_claim}.")
        lines.append("")
        lines.append(f"**Measured** ({status}, {elapsed:.2f}s):")
        lines.append("")
        for key, value in result.observations:
            lines.append(f"- {key}: `{value}`")
        lines.append("")
    return "\n".join(lines)


def _stats_report(engine: Engine) -> str:
    snapshot = engine.stats()
    artifacts = snapshot["artifacts"]
    memory = artifacts["memory"]
    backend = artifacts["backend"]
    leases = artifacts["leases"]
    lines = ["engine artifact cache:"]
    for kind, counters in memory.items():
        line = (
            f"  {kind}: {counters['hits']} hits, {counters['misses']} misses,"
            f" {counters['builds']} builds"
            f" ({counters['build_seconds']:.3f}s building)"
        )
        tier = dict(backend["kinds"].get(kind, {}))
        tier.update(leases.get(kind, {}))
        resilience = [
            f"{source[name]} {label}"
            for source, name, label in (
                (counters, "degradations", "degradations"),
                (counters, "deadline_hits", "deadline hits"),
                (tier, "disk_hits", "backend hits"),
                (tier, "corrupt_entries", "corrupt entries"),
                (tier, "io_retries", "I/O retries"),
                (counters, "coalesced_builds", "coalesced"),
                (tier, "lease_waits", "lease waits"),
                (tier, "lease_takeovers", "lease takeovers"),
                (tier, "lease_timeouts", "lease timeouts"),
            )
            if source.get(name)
        ]
        if resilience:
            line += f" [{', '.join(resilience)}]"
        lines.append(line)
    if backend["name"] != "none":
        location = backend.get("root") or backend.get("url") or ""
        line = f"  backend: {backend['name']}"
        if location:
            line += f" at {location}"
        if backend.get("sweep_reclaimed"):
            line += f" ({backend['sweep_reclaimed']} temp file(s) swept)"
        if backend.get("open_failures"):
            line += " [DEGRADED: open failed; running memory-only]"
        lines.append(line)
    elif backend.get("open_failures"):
        lines.append(
            "  backend: unavailable (open failed; running memory-only)"
        )
    breaker = snapshot["breaker"]
    if breaker["entries"]:
        lines.append(
            f"circuit breaker ({breaker['mode']}, "
            f"threshold {breaker['threshold']}): "
            f"{breaker['open']} open circuit(s)"
        )
        for label, entry in breaker["entries"].items():
            lines.append(
                f"  {label}: {entry['state']}, "
                f"{entry['failures']} failure(s), {entry['trips']} trip(s)"
            )
    return "\n".join(lines)


def _flag_value(argv: list[str], name: str) -> str | None:
    prefix = f"--{name}="
    for arg in argv:
        if arg.startswith(prefix):
            return arg.split("=", 1)[1]
    return None


def _deadline_ms(argv: list[str]) -> float | None:
    raw = _flag_value(argv, "deadline")
    return None if raw is None else float(raw)


def _workers(argv: list[str]) -> int:
    raw = _flag_value(argv, "workers")
    return 1 if raw is None else max(1, int(raw))


def _serve(argv: list[str]) -> int:
    """Delegate to ``python -m repro.serving`` with forwarded flags."""
    from repro.serving.__main__ import main as serve_main

    passthrough = []
    for name in (
        "host",
        "port",
        "max-inflight",
        "queue-depth",
        "drain-ms",
        "deadline-ms",
        "store",
        "warm-url",
    ):
        value = _flag_value(argv, name)
        if value is not None:
            passthrough.append(f"--{name}={value}")
    return serve_main(passthrough)


def _load_gen(argv: list[str]) -> int:
    """Drive a running update server and print the load report."""
    import json

    from repro.serving.client import run_load
    from repro.serving.service import chain_service

    port_raw = _flag_value(argv, "port")
    if port_raw is None:
        print("--load-gen requires --port=<running server's port>")
        return 2
    deadline_ms = _deadline_ms(argv)
    report = run_load(
        _flag_value(argv, "host") or "127.0.0.1",
        int(port_raw),
        chain_service().sample_requests,
        clients=int(_flag_value(argv, "clients") or "4"),
        duration_s=float(_flag_value(argv, "duration") or "3.0"),
        deadline_ms=deadline_ms,
    )
    print(json.dumps(report.as_dict(), indent=2))
    return 0 if report.other_errors == 0 else 1


def _run_one(experiment_id: str, engine: Engine):
    """One experiment through the shared engine: ``(result, elapsed,
    error)`` where exactly one of *result*/*error* is set."""
    start = time.perf_counter()
    try:
        result = run_experiment(experiment_id.upper(), engine=engine)
    except DeadlineExceededError as exc:
        return None, time.perf_counter() - start, str(exc)
    return result, time.perf_counter() - start, None


def main(argv: list[str]) -> int:
    """Run the requested experiments (all by default)."""
    if "--serve" in argv:
        return _serve(argv)
    if "--load-gen" in argv:
        return _load_gen(argv)
    markdown = "--markdown" in argv
    show_stats = "--stats" in argv
    deadline_ms = _deadline_ms(argv)
    workers = _workers(argv)
    requested = [a for a in argv if not a.startswith("--")] or list(
        ALL_EXPERIMENTS
    )
    unknown = [a for a in requested if a.upper() not in ALL_EXPERIMENTS]
    if unknown:
        known = ", ".join(ALL_EXPERIMENTS)
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known experiments: {known}")
        return 2
    backend_name = _flag_value(argv, "backend")
    try:
        backend = (
            create_backend(backend_name, _flag_value(argv, "store-url") or "")
            if backend_name is not None
            else None
        )
    except BackendConfigError as exc:
        print(f"backend configuration error: {exc}")
        return 2
    engine = Engine(deadline_ms=deadline_ms, backend=backend)
    if workers == 1:
        outcomes = [_run_one(eid, engine) for eid in requested]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_one, eid, engine) for eid in requested
            ]
            outcomes = [future.result() for future in futures]
    failures = 0
    results = []
    for experiment_id, (result, elapsed, error) in zip(requested, outcomes):
        if error is not None:
            print(f"{experiment_id.upper()}: DEADLINE EXCEEDED -- {error}")
            print(f"  elapsed: {elapsed:.2f}s")
            print()
            failures += 1
            continue
        results.append((result, elapsed))
        if not markdown:
            print(result.summary())
            print(f"  elapsed: {elapsed:.2f}s")
            print()
        if not result.passed:
            failures += 1
    if markdown:
        print(_markdown(results))
        if show_stats:
            print(_stats_report(engine))
        return 1 if failures else 0
    if show_stats:
        print(_stats_report(engine))
        print()
    if failures:
        print(f"{failures} experiment(s) FAILED")
        return 1
    print(f"all {len(requested)} experiments passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
